#!/usr/bin/env python
"""Centre-wide TGI: extending the metric past the machine-room wall.

The paper's Section VI proposes extending TGI "to give a center-wide view
of the energy efficiency by including components such as cooling
infrastructure".  This example computes TGI for Fire vs SystemG at three
boundaries:

1. **IT boundary** — wall-plug power, as in the paper;
2. **facility boundary, shared facility** — both systems behind the same
   PUE; the factor cancels in REE, so TGI is unchanged (the metric is
   robust to common overheads);
3. **facility boundary, different facilities** — Fire in a modern
   free-cooled room (PUE 1.2), SystemG in a legacy machine room (PUE 2.0);
   now the facility gap shows up in TGI, which is exactly the visibility
   the extension is meant to buy.

Run:  python examples/center_wide_tgi.py
"""

from repro.core import ReferenceSet, TGICalculator, tgi_from_components
from repro.experiments import PAPER_CONFIG, SharedContext
from repro.power import FixedPUECooling


def facility_reference(suite_result, cooling, name):
    return ReferenceSet(
        {
            r.benchmark: r.performance / cooling.facility_watts(r.power_w)
            for r in suite_result
        },
        system_name=name,
    )


def facility_ree(suite_result, cooling, reference):
    return {
        r.benchmark: reference.relative(
            r.benchmark, r.performance / cooling.facility_watts(r.power_w)
        )
        for r in suite_result
    }


def main() -> None:
    context = SharedContext(PAPER_CONFIG)
    fire_result = context.sweep.suites[-1]  # Fire at 128 cores
    ref_result = context.reference_suite_result

    # 1. IT boundary (the paper's configuration)
    it_tgi = TGICalculator(context.reference).compute(fire_result)
    print(f"IT-boundary TGI (paper's setup):            {it_tgi.value:.4f}")

    # 2. shared facility: PUE 1.8 on both sides
    shared = FixedPUECooling(pue=1.8)
    ref_shared = facility_reference(ref_result, shared, "SystemG@1.8")
    ree_shared = facility_ree(fire_result, shared, ref_shared)
    weights = it_tgi.weights
    tgi_shared = tgi_from_components(ree_shared, weights)
    print(f"Centre-wide TGI, shared facility (PUE 1.8): {tgi_shared:.4f}  "
          "(identical: common PUE cancels in Eq. 3)")

    # 3. different facilities
    fire_room = FixedPUECooling(pue=1.2)
    sysg_room = FixedPUECooling(pue=2.0)
    ref_legacy = facility_reference(ref_result, sysg_room, "SystemG@2.0")
    ree_split = facility_ree(fire_result, fire_room, ref_legacy)
    tgi_split = tgi_from_components(ree_split, weights)
    print(f"Centre-wide TGI, Fire@1.2 vs SystemG@2.0:   {tgi_split:.4f}  "
          f"({tgi_split / it_tgi.value:.2f}x the IT-boundary value)")
    print(
        "\nThe facility split multiplies every REE by PUE_ref/PUE_sut = "
        f"{2.0 / 1.2:.3f}, so centre-wide TGI credits the better-cooled "
        "site — information the IT-boundary metric cannot see."
    )


if __name__ == "__main__":
    main()
