#!/usr/bin/env python
"""Green500-style ranking of heterogeneous systems by TGI.

This is the use case TGI was designed for: one number per system, computed
from a suite that stresses CPU, memory, and disk, normalized to a common
reference so GFLOPS/W and MB/s/W become comparable.  The example ranks four
machines spanning three hardware generations (FB-DIMM Harpertown, Magny-
Cours, Fermi GPU, modern EPYC), under several weighting policies — showing
how the choice of weights moves borderline systems.

Run:  python examples/rank_clusters.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    CustomWeights,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
    rank_systems,
)
from repro.core import ArithmeticMeanWeights, format_ranking


def main() -> None:
    # Small configs keep the simulation quick; each system runs the same
    # suite at its own full size (scale normalization is REE's job).
    systems = [
        presets.system_g(num_nodes=8),
        presets.fire(),
        presets.gpu_cluster(num_nodes=4),
        presets.modern_cluster(num_nodes=4),
    ]
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=20, intensity=0.4),
            IOzoneBenchmark(target_seconds=20),
        ]
    )

    results = []
    for cluster in systems:
        executor = ClusterExecutor(cluster, rng=42)
        print(f"measuring {cluster.name} ({cluster.total_cores} cores)...")
        results.append((cluster.name, suite.run(executor, cluster.total_cores)))

    # SystemG is the reference, as in the paper.
    reference = ReferenceSet.from_suite_result(results[0][1], system_name="SystemG-8")

    weightings = {
        "equal weights (Eq. 6)": ArithmeticMeanWeights(),
        "compute-centric (HPL 0.8)": CustomWeights(
            {"HPL": 0.8, "STREAM": 0.1, "IOzone": 0.1}
        ),
        "data-centric (STREAM+IOzone 0.9)": CustomWeights(
            {"HPL": 0.1, "STREAM": 0.45, "IOzone": 0.45}
        ),
    }
    for label, weighting in weightings.items():
        calculator = TGICalculator(reference, weighting=weighting)
        print(f"\n--- {label} ---")
        print(format_ranking(rank_systems(results, calculator)))


if __name__ == "__main__":
    main()
