#!/usr/bin/env python
"""Where do the joules go?  Component-level energy attribution.

The paper's motivation cites the DARPA exascale study: energy spent on
non-computational work (data movement, I/O, idle overhead) is overtaking
the processing elements.  The simulator keeps the full component power
model behind its wall-plug numbers, so every run can be decomposed into
base/CPU/DRAM/disk/NIC/PSU-loss joules — the view a wall-plug meter alone
can never give.

This example decomposes each suite member's energy on Fire at full scale
and reports how much of the *suite's* total energy never touched a CPU's
execution units.

Run:  python examples/energy_breakdown.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    StreamBenchmark,
    presets,
)
from repro.analysis import render_table
from repro.viz import ascii_sparkline

COMPONENTS = ("cpu", "memory", "storage", "nic", "base", "psu_loss")


def main() -> None:
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 36288), rounds=4),
            StreamBenchmark(target_seconds=45, intensity=0.4),
            IOzoneBenchmark(target_seconds=45),
        ]
    )
    result = suite.run(executor, 128)

    rows = []
    totals = {c: 0.0 for c in COMPONENTS}
    for r in result:
        breakdown = r.record.energy_breakdown
        total = sum(breakdown.values())
        rows.append(
            [r.benchmark]
            + [f"{100 * breakdown.get(c, 0.0) / total:5.1f} %" for c in COMPONENTS]
            + [f"{total / 1e3:.0f} kJ"]
        )
        for c in COMPONENTS:
            totals[c] += breakdown.get(c, 0.0)
    print(
        render_table(
            ["Benchmark"] + list(COMPONENTS) + ["total"],
            rows,
            title="Energy attribution per suite member (Fire, 128 cores)",
        )
    )

    grand_total = sum(totals.values())
    print("\nSuite-wide attribution:")
    for c in COMPONENTS:
        share = totals[c] / grand_total
        bar = ascii_sparkline([0, 1], width=2)[-1] * max(1, round(40 * share))
        print(f"  {c:9s} {100 * share:5.1f} %  {bar}")

    non_cpu = 1.0 - totals["cpu"] / grand_total
    print(
        f"\n{100 * non_cpu:.0f} % of the suite's energy never went through a "
        "CPU's execution pipeline (DRAM, disk, NIC, board overhead, and PSU "
        "loss) — the exascale-study trend the paper's introduction cites, "
        "visible in this testbed's own numbers."
    )


if __name__ == "__main__":
    main()
