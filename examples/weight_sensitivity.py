#!/usr/bin/env python
"""Weight-space sensitivity: how much can weights move TGI?

The paper's Section VI asks for a thorough investigation of weights.  This
example measures Fire against SystemG once, then:

* sweeps the full weight simplex and reports the attainable TGI range
  (by linearity, the REE extremes);
* shows which benchmark dominates TGI in each region of the simplex;
* contrasts the measurement-driven weights (time / energy / power,
  Eqs. 10-12) with the arithmetic mean at full scale.

Run:  python examples/weight_sensitivity.py
"""

from collections import Counter

from repro.analysis import WeightSensitivity, dominant_benchmark, render_table
from repro.core import (
    ArithmeticMeanWeights,
    EnergyWeights,
    PowerWeights,
    TGICalculator,
    TimeWeights,
)
from repro.experiments import PAPER_CONFIG, SharedContext


def main() -> None:
    context = SharedContext(PAPER_CONFIG)
    full_scale = context.sweep.suites[-1]  # 128 cores
    reference = context.reference

    am = TGICalculator(reference).compute(full_scale)
    print("REE at 128 cores (Fire vs SystemG):")
    for name, value in sorted(am.ree.items()):
        print(f"  {name:8s} {value:.3f}")

    # --- attainable range over all valid weightings --------------------
    sensitivity = WeightSensitivity(ree=am.ree, steps=20)
    lo, hi = sensitivity.tgi_range()
    w_lo, w_hi = sensitivity.extremes()
    print(f"\nTGI range over the weight simplex: [{lo:.3f}, {hi:.3f}]")
    print(f"  minimized by weighting {dominant_benchmark(w_lo)} alone")
    print(f"  maximized by weighting {dominant_benchmark(w_hi)} alone")

    # --- who dominates where -------------------------------------------
    counts = Counter(dominant_benchmark(w) for w, _ in sensitivity.grid())
    total = sum(counts.values())
    print("\nDominant benchmark over a uniform simplex grid:")
    for name, count in counts.most_common():
        print(f"  {name:8s} {100 * count / total:5.1f} % of weightings")

    # --- measurement-driven weights ------------------------------------
    rows = []
    for scheme in (ArithmeticMeanWeights(), TimeWeights(), EnergyWeights(), PowerWeights()):
        tgi = TGICalculator(reference, weighting=scheme).compute(full_scale)
        rows.append(
            [scheme.name, f"{tgi.value:.4f}"]
            + [f"{tgi.weights[b]:.3f}" for b in ("HPL", "STREAM", "IOzone")]
        )
    print()
    print(
        render_table(
            ["Weighting", "TGI", "W(HPL)", "W(STREAM)", "W(IOzone)"],
            rows,
            title="TGI at 128 cores under the paper's weighting schemes",
        )
    )
    print(
        "\nNote how energy/power weights shift mass onto HPL (the most "
        "power- and energy-hungry benchmark) — the mechanism behind the "
        "paper's Table II observation that those weightings track HPL."
    )


if __name__ == "__main__":
    main()
