#!/usr/bin/env python
"""Quickstart: measure one system's TGI against a reference.

Walks the paper's Section II algorithm end to end on simulated hardware:

1. run the benchmark suite (HPL / STREAM / IOzone) on the reference system
   (SystemG) behind a simulated Watts Up? PRO meter;
2. run the same suite on the system under test (Fire);
3. compute per-benchmark energy efficiency (Eq. 2), relative efficiency
   (Eq. 3), weights (Eq. 6), and TGI (Eq. 4);
4. print the full breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
)
from repro.core import format_suite_result, format_tgi_result


def main() -> None:
    suite = BenchmarkSuite(
        [
            # strong-scaled HPL (the paper's Figure 2 configuration)
            HPLBenchmark(sizing=("fixed", 36288), rounds=4),
            StreamBenchmark(target_seconds=45, intensity=0.4),
            IOzoneBenchmark(target_seconds=45),
        ]
    )
    # The reference numbers are capability numbers: HPL sized from memory,
    # as published full-machine results are.
    reference_suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("memory", 0.8), rounds=4),
            StreamBenchmark(target_seconds=45, intensity=0.4),
            IOzoneBenchmark(target_seconds=45),
        ]
    )

    # --- 1. the reference system -------------------------------------
    system_g = presets.system_g()
    reference_executor = ClusterExecutor(system_g, rng=1)
    print(f"Running the suite on the reference: {system_g}")
    reference_result = reference_suite.run(reference_executor, system_g.total_cores)
    print(format_suite_result(reference_result, title="Reference measurements"))
    reference = ReferenceSet.from_suite_result(reference_result, system_name="SystemG")

    # --- 2. the system under test ------------------------------------
    fire = presets.fire()
    fire_executor = ClusterExecutor(fire, rng=7)
    print(f"\nRunning the suite on the system under test: {fire}")
    fire_result = suite.run(fire_executor, fire.total_cores)
    print(format_suite_result(fire_result, title="System-under-test measurements"))

    # --- 3. + 4. TGI ---------------------------------------------------
    tgi = TGICalculator(reference).compute(fire_result)
    print()
    print(format_tgi_result(tgi))
    print(
        f"\nInterpretation: Fire delivers {tgi.value:.2f}x the system-wide "
        f"energy efficiency of SystemG under equal weights; its weakest "
        f"subsystem relative to the reference is {tgi.least_efficient_benchmark}."
    )


if __name__ == "__main__":
    main()
