#!/usr/bin/env python
"""TGI on a GPU-accelerated system (the paper's Section VI question).

"The suitability of TGI to various kind of platforms, such as GPU based
system, is of particular interest."  This example measures a Fermi-era GPU
cluster and its CPU-only twin against the SystemG reference and shows what
TGI does — and what it hides:

* under equal weights the GPU system's huge HPL advantage is diluted by
  its unchanged STREAM/IOzone efficiency;
* the per-benchmark REE vector reveals the asymmetry the single number
  averages away — the exact tension the paper acknowledges between
  rankability and a vector-valued truth.

Run:  python examples/gpu_system_tgi.py
"""

import dataclasses

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
)
from repro.cluster import ClusterSpec
from repro.core import format_tgi_result


def main() -> None:
    gpu = presets.gpu_cluster(num_nodes=4)
    cpu_twin = ClusterSpec(
        name="CPU-only twin",
        node=dataclasses.replace(gpu.node, accelerators=()),
        num_nodes=gpu.num_nodes,
    )
    reference_system = presets.system_g(num_nodes=8)

    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=20),
            IOzoneBenchmark(target_seconds=20),
        ]
    )

    ref_result = suite.run(
        ClusterExecutor(reference_system, rng=1), reference_system.total_cores
    )
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG-8")
    calculator = TGICalculator(reference)

    for cluster in (cpu_twin, gpu):
        executor = ClusterExecutor(cluster, rng=3)
        result = suite.run(executor, cluster.total_cores)
        tgi = calculator.compute(result)
        hpl = result["HPL"]
        print(f"\n=== {cluster.name} ===")
        print(
            f"HPL: {hpl.performance / 1e9:.0f} GFLOPS at {hpl.power_w:.0f} W "
            f"({hpl.energy_efficiency / 1e6:.0f} MFLOPS/W)"
        )
        print(format_tgi_result(tgi))

    print(
        "\nReading: the GPUs multiply HPL's REE but leave STREAM's and "
        "IOzone's nearly unchanged, so equal-weight TGI moves far less than "
        "the marketing GFLOPS/W number would suggest. For GPU platforms the "
        "REE vector (or task-matched weights) carries the real story — the "
        "nuance the paper flags as future work."
    )


if __name__ == "__main__":
    main()
