#!/usr/bin/env python
"""A simulated Green500-style list: FLOPS/W ranking vs TGI ranking.

The paper's core criticism of the Green500 is that FLOPS/W sees only the
CPU subsystem.  Here we generate a fleet of plausible 2011-era machines,
measure the full suite on each, and build two lists:

* the classic list, ranked by HPL MFLOPS/W;
* the TGI list, ranked against a common reference with equal weights.

The two lists disagree — machines with strong compute but weak disks or
starved memory channels fall when the whole system is scored — and the
example reports exactly who moved and why.

Run:  python examples/green500_style_list.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
)
from repro.analysis import ParetoPoint, dominated_by, render_table, spearman
from repro.cluster import generate_fleet

FLEET_SIZE = 10


def main() -> None:
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=15),
            IOzoneBenchmark(target_seconds=15),
        ]
    )

    print(f"generating and measuring a fleet of {FLEET_SIZE} machines (era 2011)...")
    fleet = generate_fleet(FLEET_SIZE, era="2011", seed=20110615)
    measurements = []
    for i, cluster in enumerate(fleet):
        executor = ClusterExecutor(cluster, rng=100 + i)
        measurements.append((cluster, suite.run(executor, cluster.total_cores)))

    reference_system = presets.system_g(num_nodes=16)
    ref_result = suite.run(ClusterExecutor(reference_system, rng=1), reference_system.total_cores)
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG-16")
    calculator = TGICalculator(reference)

    scored = []
    for cluster, result in measurements:
        flops_per_watt = result["HPL"].energy_efficiency
        tgi = calculator.compute(result)
        scored.append((cluster.name, flops_per_watt, tgi))

    by_flops = sorted(scored, key=lambda s: s[1], reverse=True)
    by_tgi = sorted(scored, key=lambda s: s[2].value, reverse=True)
    flops_rank = {name: i + 1 for i, (name, _, _) in enumerate(by_flops)}

    rows = []
    for i, (name, fpw, tgi) in enumerate(by_tgi):
        move = flops_rank[name] - (i + 1)
        arrow = f"{'+' if move > 0 else ''}{move}" if move else "="
        rows.append(
            [
                i + 1,
                name,
                f"{tgi.value:.3f}",
                f"{fpw / 1e6:.0f}",
                flops_rank[name],
                arrow,
                tgi.least_efficient_benchmark,
            ]
        )
    print()
    print(
        render_table(
            ["TGI rank", "System", "TGI", "MFLOPS/W", "FLOPS/W rank", "moved", "weakest"],
            rows,
            title="Green500-style list, rescored with TGI",
            align_right_from=2,
        )
    )

    rho = spearman(
        [flops_rank[name] for name, _, _ in by_tgi],
        list(range(1, len(by_tgi) + 1)),
    )
    print(
        f"\nSpearman rank agreement between the two lists: {rho:.2f} — "
        "systems with unbalanced subsystems move several places when the "
        "whole system is scored, which is precisely TGI's pitch."
    )

    # --- the two-objective view neither list shows ----------------------
    points = [
        ParetoPoint(
            name=cluster.name,
            performance=result["HPL"].performance,
            power_w=result["HPL"].power_w,
        )
        for cluster, result in measurements
    ]
    dom = dominated_by(points)
    frontier = [name for name, dominators in dom.items() if not dominators]
    print(
        f"\nPareto frontier in raw (HPL performance, power) space: "
        f"{', '.join(sorted(frontier))}"
    )
    off_frontier_leader = next(
        (name for name, _, _ in by_tgi if dom[name]), None
    )
    if off_frontier_leader:
        print(
            f"note: {off_frontier_leader} ranks highly on TGI while being "
            f"Pareto-dominated by {', '.join(dom[off_frontier_leader])} — "
            "single numbers always hide part of the trade space."
        )


if __name__ == "__main__":
    main()
