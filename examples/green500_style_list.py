#!/usr/bin/env python
"""A simulated Green500-style list: FLOPS/W ranking vs TGI ranking.

The paper's core criticism of the Green500 is that FLOPS/W sees only the
CPU subsystem.  Here we generate a fleet of plausible machines, score the
full suite on each, and build two lists:

* the classic list, ranked by HPL MFLOPS/W;
* the TGI list, ranked against a common reference with configurable
  weights (equal by default).

The two lists disagree — machines with strong compute but weak disks or
starved memory channels fall when the whole system is scored — and the
example reports exactly who moved and why.

The fleet is ranked through :class:`repro.fleet.FleetRankingPipeline`.  By
default every system takes the batched analytic path (one vectorized pass
over the whole fleet — thousands of systems rank in seconds); pass
``--full-sim`` to push each machine through the campaign executors
instead (one simulated, metered job per system — the pre-batched
behaviour of this example, noise included).

Knobs (flags override the environment):

* ``--fleet-size`` / ``REPRO_FLEET_SIZE`` — number of machines (default 10)
* ``--era`` / ``REPRO_FLEET_ERA`` — era template (default 2011)
* ``--weights`` / ``REPRO_FLEET_WEIGHTS`` — e.g. ``HPL=2,STREAM=1,IOzone=1``
* ``--full-sim``, ``REPRO_WORKERS``, ``REPRO_CAMPAIGN_CACHE`` — simulation
  leg: force it, set its pool width, cache its job results

Run:  python examples/green500_style_list.py
"""

import argparse
import dataclasses
import os

from repro.analysis import ParetoPoint, dominated_by, render_table
from repro.experiments import PAPER_CONFIG
from repro.fleet import (
    FleetRankingPipeline,
    generated_fleet_members,
    parse_weight_spec,
)

#: The quick suite this example measures everywhere (small HPL, short runs).
LIST_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=20160,
    hpl_rounds=2,
    stream_target_seconds=15,
    iozone_target_seconds=15,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fleet-size",
        type=int,
        default=int(os.environ.get("REPRO_FLEET_SIZE", "10")),
        help="number of generated machines (env REPRO_FLEET_SIZE)",
    )
    parser.add_argument(
        "--era",
        choices=("2008", "2011", "2015", "2021"),
        default=os.environ.get("REPRO_FLEET_ERA", "2011"),
        help="era template (env REPRO_FLEET_ERA)",
    )
    parser.add_argument(
        "--weights",
        default=os.environ.get("REPRO_FLEET_WEIGHTS"),
        metavar="SPEC",
        help='TGI weights, e.g. "HPL=2,STREAM=1,IOzone=1" '
        "(normalized; env REPRO_FLEET_WEIGHTS; default equal)",
    )
    parser.add_argument(
        "--fleet-seed", type=int, default=20110615, help="fleet generation seed"
    )
    parser.add_argument(
        "--full-sim",
        action="store_true",
        help="score through the campaign executors (simulated meter) "
        "instead of the batched analytic path",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    weights = parse_weight_spec(args.weights) if args.weights else None
    pipeline = FleetRankingPipeline(
        config=LIST_CONFIG,
        weights=weights,
        full_sim=args.full_sim,
        workers=int(os.environ.get("REPRO_WORKERS", "4")),
        cache_dir=os.environ.get("REPRO_CAMPAIGN_CACHE"),
    )
    members = generated_fleet_members(
        args.fleet_size, era=args.era, fleet_seed=args.fleet_seed
    )
    mode = (
        "the campaign executors" if args.full_sim else "the batched analytic path"
    )
    print(
        f"scoring a fleet of {args.fleet_size} machines (era {args.era}) "
        f"through {mode}..."
    )
    ranking = pipeline.rank(members, label="green500-style-list")
    stats = ranking.stats
    print(
        f"ranking done in {stats['wall_s']:.2f} s "
        f"({stats['batched']} batched, {stats['simulated']} simulated, "
        f"{stats['cache_hits']} cache hits)"
    )

    rows = []
    for row in ranking:
        move = row.moved
        arrow = f"{'+' if move > 0 else ''}{move}" if move else "="
        rows.append(
            [
                row.tgi_rank,
                row.name,
                f"{row.tgi:.3f}",
                f"{row.flops_per_watt / 1e6:.0f}",
                row.flops_rank,
                arrow,
                row.weakest,
            ]
        )
    print()
    print(
        render_table(
            ["TGI rank", "System", "TGI", "MFLOPS/W", "FLOPS/W rank", "moved", "weakest"],
            rows,
            title="Green500-style list, rescored with TGI",
            align_right_from=2,
        )
    )

    rho = ranking.diagnostics.spearman_rho
    if rho is not None:
        print(
            f"\nSpearman rank agreement between the two lists: {rho:.2f} — "
            "systems with unbalanced subsystems move several places when the "
            "whole system is scored, which is precisely TGI's pitch."
        )
    for note in ranking.diagnostics.notes:
        print(f"note: {note}")

    # --- the two-objective view neither list shows ----------------------
    points = [
        ParetoPoint(
            name=row.name,
            performance=row.performances["HPL"],
            power_w=row.powers_w["HPL"],
        )
        for row in ranking
    ]
    dom = dominated_by(points)
    frontier = [name for name, dominators in dom.items() if not dominators]
    print(
        f"\nPareto frontier in raw (HPL performance, power) space: "
        f"{', '.join(sorted(frontier))}"
    )
    off_frontier_leader = next((row.name for row in ranking if dom[row.name]), None)
    if off_frontier_leader:
        print(
            f"note: {off_frontier_leader} ranks highly on TGI while being "
            f"Pareto-dominated by {', '.join(dom[off_frontier_leader])} — "
            "single numbers always hide part of the trade space."
        )


if __name__ == "__main__":
    main()
