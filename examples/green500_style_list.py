#!/usr/bin/env python
"""A simulated Green500-style list: FLOPS/W ranking vs TGI ranking.

The paper's core criticism of the Green500 is that FLOPS/W sees only the
CPU subsystem.  Here we generate a fleet of plausible 2011-era machines,
measure the full suite on each, and build two lists:

* the classic list, ranked by HPL MFLOPS/W;
* the TGI list, ranked against a common reference with equal weights.

The two lists disagree — machines with strong compute but weak disks or
starved memory channels fall when the whole system is scored — and the
example reports exactly who moved and why.

The fleet is measured through :class:`repro.campaign.CampaignRunner`: one
job per machine plus the reference run, fanned out over a process pool.
Set ``REPRO_WORKERS`` to change the pool width (default 4, 1 = serial)
and ``REPRO_CAMPAIGN_CACHE`` to a directory to make reruns near-instant
cache hits.

Run:  python examples/green500_style_list.py
"""

import dataclasses
import os

from repro import ReferenceSet, TGICalculator
from repro.analysis import ParetoPoint, dominated_by, render_table, spearman
from repro.campaign import (
    CampaignJob,
    CampaignRunner,
    ClusterRef,
    ResultCache,
    fleet_jobs,
)
from repro.experiments import PAPER_CONFIG

FLEET_SIZE = 10

#: The quick suite this example measures everywhere (small HPL, short runs).
LIST_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=20160,
    hpl_rounds=2,
    stream_target_seconds=15,
    iozone_target_seconds=15,
)


def build_jobs():
    """One full-machine job per fleet member, plus the shared reference."""
    jobs = fleet_jobs(FLEET_SIZE, era="2011", fleet_seed=20110615, config=LIST_CONFIG)
    jobs.append(
        CampaignJob(
            job_id="reference",
            cluster=ClusterRef(kind="preset", name="system_g", num_nodes=16),
            seed=1,
            config=LIST_CONFIG,
        )
    )
    return jobs


def main() -> None:
    workers = int(os.environ.get("REPRO_WORKERS", "4"))
    cache_dir = os.environ.get("REPRO_CAMPAIGN_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = CampaignRunner(workers=workers, cache=cache)

    jobs = build_jobs()
    print(
        f"measuring a fleet of {FLEET_SIZE} machines (era 2011) "
        f"through the campaign executor (workers={workers})..."
    )
    campaign = runner.run(jobs, label="green500-style-list")
    stats = campaign.manifest["cache_run"]
    print(
        f"campaign done in {campaign.manifest['total_wall_s']:.2f} s "
        f"({stats['hits']}/{stats['jobs']} cache hits)"
    )

    reference = ReferenceSet.from_suite_result(
        campaign.suite("reference"), system_name="SystemG-16"
    )
    calculator = TGICalculator(reference)

    measurements = [
        (outcome.payload["cluster_name"], campaign.suite(outcome.job.job_id))
        for outcome in campaign
        if outcome.job.job_id != "reference"
    ]
    scored = []
    for name, result in measurements:
        flops_per_watt = result["HPL"].energy_efficiency
        tgi = calculator.compute(result)
        scored.append((name, flops_per_watt, tgi))

    by_flops = sorted(scored, key=lambda s: s[1], reverse=True)
    by_tgi = sorted(scored, key=lambda s: s[2].value, reverse=True)
    flops_rank = {name: i + 1 for i, (name, _, _) in enumerate(by_flops)}

    rows = []
    for i, (name, fpw, tgi) in enumerate(by_tgi):
        move = flops_rank[name] - (i + 1)
        arrow = f"{'+' if move > 0 else ''}{move}" if move else "="
        rows.append(
            [
                i + 1,
                name,
                f"{tgi.value:.3f}",
                f"{fpw / 1e6:.0f}",
                flops_rank[name],
                arrow,
                tgi.least_efficient_benchmark,
            ]
        )
    print()
    print(
        render_table(
            ["TGI rank", "System", "TGI", "MFLOPS/W", "FLOPS/W rank", "moved", "weakest"],
            rows,
            title="Green500-style list, rescored with TGI",
            align_right_from=2,
        )
    )

    rho = spearman(
        [flops_rank[name] for name, _, _ in by_tgi],
        list(range(1, len(by_tgi) + 1)),
    )
    print(
        f"\nSpearman rank agreement between the two lists: {rho:.2f} — "
        "systems with unbalanced subsystems move several places when the "
        "whole system is scored, which is precisely TGI's pitch."
    )

    # --- the two-objective view neither list shows ----------------------
    points = [
        ParetoPoint(
            name=name,
            performance=result["HPL"].performance,
            power_w=result["HPL"].power_w,
        )
        for name, result in measurements
    ]
    dom = dominated_by(points)
    frontier = [name for name, dominators in dom.items() if not dominators]
    print(
        f"\nPareto frontier in raw (HPL performance, power) space: "
        f"{', '.join(sorted(frontier))}"
    )
    off_frontier_leader = next(
        (name for name, _, _ in by_tgi if dom[name]), None
    )
    if off_frontier_leader:
        print(
            f"note: {off_frontier_leader} ranks highly on TGI while being "
            f"Pareto-dominated by {', '.join(dom[off_frontier_leader])} — "
            "single numbers always hide part of the trade space."
        )


if __name__ == "__main__":
    main()
