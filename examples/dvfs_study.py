#!/usr/bin/env python
"""DVFS study: does downclocking make Fire greener under TGI?

Uses the DVFS extension to derive Fire variants at lower operating points
(classic ``P_dyn ~ f V^2`` scaling), reruns the suite on each, and compares
TGI.  The interesting structure:

* HPL slows ~linearly with clock while CPU power falls superlinearly, so
  HPL's EE *improves* at lower points;
* STREAM and IOzone barely slow (memory/disk bound) while the whole
  cluster's power drops, so their EE improves too — but less, because most
  of their power was never in the CPUs;
* the wall-plug idle floor is untouched, damping everything.

Run:  python examples/dvfs_study.py
"""

import dataclasses

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
)
from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.power import DVFSModel, DVFSOperatingPoint


def fire_at(point: DVFSOperatingPoint, ladder: DVFSModel) -> ClusterSpec:
    fire = presets.fire()
    cpu = ladder.scale_cpu(fire.node.cpu, point)
    node = dataclasses.replace(fire.node, cpu=cpu)
    return ClusterSpec(
        name=f"Fire@{point.frequency_hz / 1e9:.1f}GHz", node=node, num_nodes=8
    )


def main() -> None:
    points = (
        DVFSOperatingPoint(frequency_hz=2.3e9, voltage_v=1.20),
        DVFSOperatingPoint(frequency_hz=1.9e9, voltage_v=1.10),
        DVFSOperatingPoint(frequency_hz=1.5e9, voltage_v=1.00),
        DVFSOperatingPoint(frequency_hz=1.1e9, voltage_v=0.90),
    )
    ladder = DVFSModel(nominal=points[0], points=points)

    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=20, intensity=0.4),
            IOzoneBenchmark(target_seconds=20),
        ]
    )

    # Reference: nominal-clock Fire (so nominal scores TGI = 1 and the
    # table reads directly as "gain from downclocking").
    nominal = fire_at(points[0], ladder)
    ref_result = suite.run(ClusterExecutor(nominal, rng=7), nominal.total_cores)
    reference = ReferenceSet.from_suite_result(ref_result, system_name=nominal.name)
    calculator = TGICalculator(reference)

    rows = []
    for point in points:
        cluster = fire_at(point, ladder)
        result = suite.run(ClusterExecutor(cluster, rng=7), cluster.total_cores)
        tgi = calculator.compute(result)
        hpl = result["HPL"]
        rows.append(
            [
                f"{point.frequency_hz / 1e9:.1f} GHz / {point.voltage_v:.2f} V",
                f"{hpl.performance / 1e9:.0f}",
                f"{hpl.power_w:.0f}",
                f"{hpl.energy_efficiency / 1e6:.1f}",
                f"{tgi.value:.4f}",
            ]
        )
    print(
        render_table(
            ["Operating point", "HPL GFLOPS", "HPL power (W)", "MFLOPS/W", "TGI vs nominal"],
            rows,
            title="Fire under DVFS (reference = nominal clock)",
        )
    )
    print(
        "\nReading: each step down the ladder trades HPL throughput for "
        "efficiency; TGI > 1 below nominal says the *system-wide* metric "
        "rewards the trade on this machine — until the idle floor dominates."
    )


if __name__ == "__main__":
    main()
