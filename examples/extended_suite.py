#!/usr/bin/env python
"""Five-benchmark TGI: the suite is open-ended by design.

Section IV-A: "TGI is neither limited by the metrics used in each
benchmark nor by the number of benchmarks."  This example extends the
paper's three-benchmark suite with two more HPCC-style members —
RandomAccess (memory *latency*, GUPS) and an effective-bandwidth network
test — and recomputes TGI for Fire vs SystemG.

The punchline: Fire's GigE fabric, invisible to the original suite, shows
up immediately — the network benchmark's REE is the worst of the five,
displacing HPL as the weakest subsystem and moving the single number.

Run:  python examples/extended_suite.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
)
from repro.benchmarks import EffectiveBandwidthBenchmark, RandomAccessBenchmark
from repro.core import format_tgi_result
from repro.viz import ascii_sparkline


def build_suites():
    base = [
        HPLBenchmark(sizing=("fixed", 36288), rounds=4),
        StreamBenchmark(target_seconds=45, intensity=0.4),
        IOzoneBenchmark(target_seconds=45),
    ]
    extended = base + [
        RandomAccessBenchmark(target_seconds=45),
        EffectiveBandwidthBenchmark(target_seconds=45),
    ]
    return BenchmarkSuite(base), BenchmarkSuite(extended)


def main() -> None:
    base_suite, extended_suite = build_suites()

    system_g = presets.system_g()
    ref_exec = ClusterExecutor(system_g, rng=1)
    print("measuring the reference (SystemG) with all five benchmarks...")
    ref_result = extended_suite.run(ref_exec, system_g.total_cores)
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG")

    fire = presets.fire()
    fire_exec = ClusterExecutor(fire, rng=7)
    print("measuring the system under test (Fire)...")
    fire_result = extended_suite.run(fire_exec, fire.total_cores)

    # Three-benchmark TGI (the paper's suite) from the same measurements.
    three = TGICalculator(reference).compute(
        type(fire_result)(
            cores=fire_result.cores,
            results=tuple(r for r in fire_result.results if r.benchmark in
                          ("HPL", "STREAM", "IOzone")),
        )
    )
    five = TGICalculator(reference).compute(fire_result)

    print("\n--- paper suite (3 benchmarks) ---")
    print(format_tgi_result(three))
    print("\n--- extended suite (5 benchmarks) ---")
    print(format_tgi_result(five))

    print("\nREE fingerprint (sorted):")
    for name, value in sorted(five.ree.items(), key=lambda kv: kv[1]):
        bar = ascii_sparkline([0, value], width=max(2, int(20 * value / max(five.ree.values()))))
        print(f"  {name:13s} {value:6.3f}  {bar[-1] * max(1, int(20 * value / max(five.ree.values())))}")

    print(
        f"\nweakest subsystem: {three.least_efficient_benchmark} (3-benchmark) "
        f"-> {five.least_efficient_benchmark} (5-benchmark)\n"
        f"TGI moved {three.value:.3f} -> {five.value:.3f}: the added network "
        "probe exposes Fire's GigE fabric, which the paper's suite never "
        "touches directly."
    )


if __name__ == "__main__":
    main()
