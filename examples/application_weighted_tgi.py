#!/usr/bin/env python
"""Procurement with application-weighted TGI: pick the right machine.

Section II's first advantage of TGI: weights can encode "the specific
needs of the user, e.g., assigning a higher weighting factor for the
memory benchmark if we are evaluating a supercomputer to execute a
memory-intensive application."

This example measures the five-benchmark suite on three candidate systems
and ranks them for four different application profiles (CFD, genomics,
checkpoint-heavy simulation, dense linear algebra).  The winner changes
with the workload — the whole argument for weighted TGI over plain
FLOPS/W.

Run:  python examples/application_weighted_tgi.py
"""

from repro import (
    BenchmarkSuite,
    ClusterExecutor,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    StreamBenchmark,
    TGICalculator,
    presets,
    rank_systems,
)
from repro.analysis import render_table
from repro.benchmarks import EffectiveBandwidthBenchmark, RandomAccessBenchmark
from repro.core import (
    CFD_PROFILE,
    CHECKPOINT_HEAVY_PROFILE,
    DENSE_LINALG_PROFILE,
    GENOMICS_PROFILE,
    ArithmeticMeanWeights,
    WorkloadWeights,
)


def main() -> None:
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=15, intensity=0.4),
            IOzoneBenchmark(target_seconds=15),
            RandomAccessBenchmark(target_seconds=15),
            EffectiveBandwidthBenchmark(target_seconds=15),
        ]
    )

    # An equal-budget question: a 2x M2050 node costs roughly two plain
    # nodes, so the candidates are 2 GPU nodes vs 4 identical CPU-only
    # nodes.  Twice the nodes means twice the memory channels, disks, and
    # links — crossed strengths, so the workload decides.
    import dataclasses

    from repro.cluster import ClusterSpec

    reference_system = presets.system_g(num_nodes=8)
    gpu_box = presets.gpu_cluster(num_nodes=2)
    cpu_box = ClusterSpec(
        name="CPUx4",
        node=dataclasses.replace(gpu_box.node, accelerators=(), name="CPU-only node"),
        num_nodes=4,
    )
    candidates = [cpu_box, gpu_box]

    print("measuring reference and candidates (five benchmarks each)...")
    ref_result = suite.run(
        ClusterExecutor(reference_system, rng=1), reference_system.total_cores
    )
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG-8")
    measurements = [
        (c.name, suite.run(ClusterExecutor(c, rng=11), c.total_cores))
        for c in candidates
    ]

    profiles = [
        None,  # equal weights baseline
        CFD_PROFILE,
        GENOMICS_PROFILE,
        CHECKPOINT_HEAVY_PROFILE,
        DENSE_LINALG_PROFILE,
    ]
    rows = []
    for profile in profiles:
        if profile is None:
            weighting = ArithmeticMeanWeights()
            label = "equal weights"
        else:
            weighting = WorkloadWeights(profile)
            label = profile.name
        ranking = rank_systems(measurements, TGICalculator(reference, weighting=weighting))
        rows.append(
            [label]
            + [f"{entry.system_name} ({entry.value:.2f})" for entry in ranking]
        )
    print()
    print(
        render_table(
            ["Application profile", "greener", "runner-up"],
            rows,
            title="Which machine is greenest *for this workload*?",
            align_right_from=99,
        )
    )
    print(
        "\nReading: the winner depends on the workload — the GPU box takes "
        "dense linear algebra while the plain cluster wins where the cards "
        "would idle. A single unweighted number hides exactly this."
    )


if __name__ == "__main__":
    main()
