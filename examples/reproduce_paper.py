#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Equivalent to ``tgi run all``; prints Figures 2-6 as series tables plus
Tables I and II, all from the calibrated simulated campaign.

Run:  python examples/reproduce_paper.py
"""

from repro.experiments import EXPERIMENTS, SharedContext


def main() -> None:
    context = SharedContext()
    for exp_id, entry in EXPERIMENTS.items():
        print(f"=== {exp_id}: {entry.description} ===")
        result = entry.run(context)
        print(result.format())
        print()


if __name__ == "__main__":
    main()
