#!/usr/bin/env python
"""How much measurement error does 1 Hz wall-plug metering inject?

The paper's entire methodology rests on a Watts Up? PRO ES sampling the
whole system at 1 Hz.  The simulator keeps both the exact piecewise power
truth and the meter's log, so we can quantify what the instrument costs:

* per-run energy error across the calibrated campaign;
* the effect of the instrument's gain error on *absolute* EE vs its
  non-effect on *rankings* (both systems measured by the same class of
  meter see the same relative picture, one reason REE is the right
  normalization);
* error as a function of sampling rate.

Run:  python examples/meter_fidelity.py
"""

import numpy as np

from repro.analysis import render_table
from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import presets
from repro.power.meter import MeterSpec, WallPlugMeter
from repro.sim import ClusterExecutor


def main() -> None:
    fire = presets.fire()
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=4),
            StreamBenchmark(target_seconds=45),
            IOzoneBenchmark(target_seconds=45),
        ]
    )

    # --- per-run error with the paper's instrument ---------------------
    executor = ClusterExecutor(fire, rng=7)
    result = suite.run(executor, 128)
    rows = []
    for r in result:
        err = r.record.measurement_error_fraction
        rows.append([r.benchmark, f"{r.record.true_energy_j / 1e3:.1f}",
                     f"{r.record.measured_energy_j / 1e3:.1f}", f"{100 * err:+.2f} %"])
    print(render_table(
        ["Benchmark", "True energy (kJ)", "Metered (kJ)", "Error"],
        rows,
        title="Watts Up? PRO model at 1 Hz, Fire at 128 cores",
    ))

    # --- sampling-rate sweep -------------------------------------------
    print("\nEnergy error vs sampling interval (HPL run):")
    built = suite.benchmarks[0].build(executor, 128)
    record = executor.execute(built.placement, built.programs)
    truth = record.truth
    for interval in (0.1, 1.0, 5.0, 15.0, 60.0):
        spec = MeterSpec(
            name=f"{interval}s meter",
            sample_interval_s=interval,
            gain_error_fraction=0.0,
            noise_counts=0.0,
        )
        trace = WallPlugMeter(spec, rng=0).measure(truth)
        measured = trace.mean_power() * record.makespan_s
        err = (measured - truth.energy()) / truth.energy()
        print(f"  dt = {interval:5.1f} s -> {100 * err:+6.3f} %  ({len(trace)} samples)")

    # --- gain error and rankings ----------------------------------------
    print("\nInstrument gain error vs relative comparisons:")
    gains = []
    for seed in range(6):
        meter = WallPlugMeter(rng=seed)
        gains.append(meter.realized_gain)
    print(f"  six instruments' realized gains: {np.round(gains, 4).tolist()}")
    print(
        "  a +1.5 % gain scales every run's power identically, so EE shifts\n"
        "  by -1.5 % absolutely but REE (system/system) is unaffected when\n"
        "  each system keeps its own instrument across the whole suite."
    )


if __name__ == "__main__":
    main()
