"""Ablation: the idle-power floor behind the paper's headline result.

EXPERIMENTS.md argues that IOzone's rising EE curve — and hence TGI's
"follows the least-efficient subsystem" behaviour — is driven by the
whole-cluster idle power being amortized over more active nodes.  This
bench tests that causal claim directly: rebuild Fire with its idle floor
scaled down (component idle watts and node base watts shrunk) and watch
IOzone's EE swing collapse toward flat.

If this ablation ever stops showing the collapse, the mechanism story in
the docs is wrong and must be revisited.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import relative_range
from repro.benchmarks import IOzoneBenchmark
from repro.cluster import ClusterSpec, presets
from repro.perfwatch import MetricSpec, scenario
from repro.power.meter import PERFECT_METER, WallPlugMeter
from repro.sim import ClusterExecutor


def fire_with_idle_scale(scale: float) -> ClusterSpec:
    """Fire with every idle/base wattage multiplied by ``scale``."""
    fire = presets.fire()
    node = fire.node
    cpu = dataclasses.replace(node.cpu, idle_watts=node.cpu.idle_watts * scale)
    mem = dataclasses.replace(node.memory, dimm_idle_watts=node.memory.dimm_idle_watts * scale)
    sto = dataclasses.replace(node.storage, idle_watts=node.storage.idle_watts * scale)
    nic = dataclasses.replace(node.nic, idle_watts=node.nic.idle_watts * scale)
    new_node = dataclasses.replace(
        node, cpu=cpu, memory=mem, storage=sto, nic=nic,
        base_watts=node.base_watts * scale,
    )
    return ClusterSpec(name=f"Fire-idle{scale}", node=new_node, num_nodes=8)


def iozone_ee_swing(idle_scale: float) -> float:
    cluster = fire_with_idle_scale(idle_scale)
    executor = ClusterExecutor(
        cluster, meter=WallPlugMeter(PERFECT_METER, rng=0)
    )
    bench = IOzoneBenchmark(target_seconds=20)
    ee = np.array([bench.run(executor, k).energy_efficiency for k in range(1, 9)])
    return relative_range(ee)


@scenario(
    "ablation.idle_floor",
    description="IOzone EE swing vs idle-floor scale (the amortization mechanism)",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "swing_collapse_ratio",
            direction="lower",
            help="EE swing at 2% idle floor over swing at full floor",
        ),
    ),
)
def idle_floor_scenario():
    full = iozone_ee_swing(1.0)
    floorless = iozone_ee_swing(0.02)
    return {"swing_collapse_ratio": floorless / full}


def test_idle_floor_drives_iozone_ee_swing(benchmark):
    swings = {}

    def sweep():
        for scale in (1.0, 0.5, 0.1, 0.02):
            swings[scale] = iozone_ee_swing(scale)
        return swings

    result = benchmark(sweep)
    print("\nidle-floor scale -> IOzone EE relative swing over 1..8 nodes:")
    for scale, swing in result.items():
        print(f"  {scale:5.2f} -> {swing:.3f}")
    # the swing shrinks monotonically as the floor is removed ...
    ordered = [result[s] for s in (1.0, 0.5, 0.1, 0.02)]
    assert ordered == sorted(ordered, reverse=True)
    # ... losing well over half of it at a near-zero floor (a residual
    # remains: the 7 *other* nodes' tiny idle draw still amortizes)
    assert result[0.02] < 0.45 * result[1.0]


def test_active_node_metering_removes_the_rest(benchmark):
    """Combining a near-zero idle floor with active-node metering removes
    the amortization mechanism entirely: IOzone EE goes flat."""
    cluster = fire_with_idle_scale(0.02)
    executor = ClusterExecutor(
        cluster,
        meter=WallPlugMeter(PERFECT_METER, rng=0),
        metering="active-nodes",
    )
    bench = IOzoneBenchmark(target_seconds=20)

    def curve():
        return np.array(
            [bench.run(executor, k).energy_efficiency for k in range(1, 9)]
        )

    ee = benchmark(curve)
    print(f"\nIOzone EE, no floor + active-node metering: swing {relative_range(ee):.4f}")
    assert relative_range(ee) < 0.01
