"""Real host-kernel benchmarks (genuine measurements, not simulation).

These are the library's honest, runs-on-your-laptop analogues of the suite:
LU solve (HPL), Triad (STREAM), buffered file write (IOzone).  They exist
so the analytic models can be sanity-checked against reality and so
pytest-benchmark has something physical to time.  The perf-watch
scenarios record the same three kernels into history, with the physical
rates (GFLOPS, GB/s, MB/s) as higher-is-better derived metrics.
"""

import tempfile

from repro.kernels import file_write_bandwidth, lu_solve_gflops, triad_bandwidth
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario


@scenario(
    "kernels.lu_solve",
    description="LU solve n=800 on the host (the HPL analogue)",
    params={"n": 800, "rng": 0},
    metrics=(
        MetricSpec("gflops", unit="GFLOPS", direction=HIGHER_IS_BETTER),
    ),
)
def lu_solve_scenario(n, rng):
    result = lu_solve_gflops(n, rng=rng)
    return {"gflops": result.gflops}


@scenario(
    "kernels.triad",
    description="STREAM Triad over 2M doubles on the host",
    params={"elements": 2_000_000, "iterations": 5},
    metrics=(
        MetricSpec("bandwidth_gbps", unit="GB/s", direction=HIGHER_IS_BETTER),
    ),
)
def triad_scenario(elements, iterations):
    result = triad_bandwidth(elements, iterations=iterations)
    return {"bandwidth_gbps": result.bandwidth / 1e9}


@scenario(
    "kernels.file_write",
    description="buffered 8 MiB file write on the host (the IOzone analogue)",
    params={"total_bytes": 8 * 1024 * 1024, "record_bytes": 1024 * 1024},
    metrics=(
        MetricSpec("bandwidth_mbps", unit="MB/s", direction=HIGHER_IS_BETTER),
    ),
)
def file_write_scenario(total_bytes, record_bytes):
    with tempfile.TemporaryDirectory() as directory:
        result = file_write_bandwidth(
            total_bytes, record_bytes=record_bytes, fsync=False, directory=directory
        )
    return {"bandwidth_mbps": result.bandwidth / 1e6}


def test_lu_solve_kernel(benchmark):
    result = benchmark(lu_solve_gflops, 800, rng=0)
    print(f"\nLU solve n=800: {result.gflops:.2f} GFLOPS, residual {result.residual:.2e}")
    assert result.residual < 16.0
    assert result.gflops > 0.1


def test_triad_kernel(benchmark):
    result = benchmark(triad_bandwidth, 2_000_000, iterations=5)
    print(f"\nTriad 2M doubles: {result.bandwidth / 1e9:.2f} GB/s")
    assert result.bandwidth > 1e8


def test_file_write_kernel(benchmark, tmp_path):
    result = benchmark(
        file_write_bandwidth,
        8 * 1024 * 1024,
        record_bytes=1024 * 1024,
        fsync=False,
        directory=str(tmp_path),
    )
    print(f"\nbuffered write 8 MiB: {result.bandwidth / 1e6:.0f} MB/s")
    assert result.bandwidth > 1e6


def test_page_cache_inflation_is_real(benchmark, tmp_path):
    """The effect the IOzone model's cache window encodes, observed live:
    an unsynced small write reports (much) higher bandwidth than an fsynced
    one on any system with a page cache and a real disk; on tmpfs-backed
    temp dirs they converge, so only a weak inequality is asserted."""

    def both():
        cached = file_write_bandwidth(
            4 * 1024 * 1024, fsync=False, directory=str(tmp_path)
        )
        synced = file_write_bandwidth(
            4 * 1024 * 1024, fsync=True, directory=str(tmp_path)
        )
        return cached, synced

    cached, synced = benchmark(both)
    print(
        f"\n4 MiB write: buffered {cached.bandwidth / 1e6:.0f} MB/s, "
        f"fsync {synced.bandwidth / 1e6:.0f} MB/s"
    )
    assert cached.bandwidth >= 0.5 * synced.bandwidth
