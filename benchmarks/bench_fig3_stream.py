"""Figure 3 bench: regenerate the STREAM energy-efficiency curve."""

import numpy as np

from repro.experiments.curves import run_fig3_stream


def test_fig3_stream(benchmark, context):
    result = benchmark(run_fig3_stream, context)
    print()
    print(result.format())
    ee = np.array(result.efficiency)
    # rises steeply while bandwidth still scales ...
    assert (np.diff(ee)[:-1] > 0).all()
    # ... and saturates (rather than collapsing) once the channels fill
    assert ee[-1] > 0.9 * ee.max()
