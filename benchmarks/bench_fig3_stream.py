"""Figure 3 bench: regenerate the STREAM energy-efficiency curve."""

import numpy as np

from repro.experiments.curves import run_fig3_stream
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "fig3.stream_curve",
    description="regenerate the Figure 3 STREAM energy-efficiency curve",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "saturated_efficiency",
            unit="MB/s/W",
            direction=HIGHER_IS_BETTER,
            help="full-scale point of the regenerated curve",
        ),
    ),
)
def fig3_scenario(context):
    result = run_fig3_stream(context)
    return {"saturated_efficiency": result.efficiency[-1]}


def test_fig3_stream(benchmark, context):
    result = benchmark(run_fig3_stream, context)
    print()
    print(result.format())
    ee = np.array(result.efficiency)
    # rises steeply while bandwidth still scales ...
    assert (np.diff(ee)[:-1] > 0).all()
    # ... and saturates (rather than collapsing) once the channels fill
    assert ee[-1] > 0.9 * ee.max()
