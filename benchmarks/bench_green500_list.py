"""Fleet-scale bench: a simulated Green500-style list, rescored with TGI.

Exercises the cluster generator + full pipeline at list scale and asserts
the paper's pitch quantitatively: rescoring a FLOPS/W list with TGI moves
systems (rank agreement < 1), because FLOPS/W is blind to memory and I/O.
Also contrasts arithmetic vs geometric TGI orderings.
"""

import pytest

from repro.analysis import spearman
from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import generate_fleet, presets
from repro.core import GeometricTGICalculator, ReferenceSet, TGICalculator
from repro.perfwatch import MetricSpec, scenario
from repro.sim import ClusterExecutor

FLEET_SIZE = 6


def _fleet_scores():
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 13440), rounds=2),
            StreamBenchmark(target_seconds=10),
            IOzoneBenchmark(target_seconds=10),
        ]
    )
    fleet = generate_fleet(FLEET_SIZE, era="2011", seed=20110615)
    reference_system = presets.system_g(num_nodes=16)
    ref_result = suite.run(
        ClusterExecutor(reference_system, rng=1), reference_system.total_cores
    )
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG-16")
    measurements = []
    for i, cluster in enumerate(fleet):
        executor = ClusterExecutor(cluster, rng=100 + i)
        measurements.append((cluster.name, suite.run(executor, cluster.total_cores)))
    return reference, measurements


@pytest.fixture(scope="module")
def fleet_scores():
    return _fleet_scores()


@scenario(
    "green500.rescoring",
    description="measure + TGI-rescore a 6-system Green500-style fleet",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "rank_agreement_rho",
            direction="higher",
            help="Spearman rho between the FLOPS/W and TGI orderings",
        ),
    ),
)
def green500_scenario():
    reference, measurements = _fleet_scores()
    calculator = TGICalculator(reference)
    rows = [
        (name, result["HPL"].energy_efficiency, calculator.compute(result).value)
        for name, result in measurements
    ]
    by_flops = sorted(rows, key=lambda r: r[1], reverse=True)
    by_tgi = sorted(rows, key=lambda r: r[2], reverse=True)
    flops_rank = {name: i for i, (name, _, _) in enumerate(by_flops)}
    tgi_rank = {name: i for i, (name, _, _) in enumerate(by_tgi)}
    names = [name for name, _, _ in rows]
    rho = spearman([flops_rank[n] for n in names], [tgi_rank[n] for n in names])
    return {"rank_agreement_rho": float(rho)}


def test_green500_vs_tgi_list(benchmark, fleet_scores):
    reference, measurements = fleet_scores
    calculator = TGICalculator(reference)

    def score():
        rows = []
        for name, result in measurements:
            rows.append(
                (
                    name,
                    result["HPL"].energy_efficiency,
                    calculator.compute(result).value,
                )
            )
        return rows

    rows = benchmark(score)
    by_flops = sorted(rows, key=lambda r: r[1], reverse=True)
    by_tgi = sorted(rows, key=lambda r: r[2], reverse=True)
    flops_rank = {name: i for i, (name, _, _) in enumerate(by_flops)}
    tgi_rank = {name: i for i, (name, _, _) in enumerate(by_tgi)}
    names = [name for name, _, _ in rows]
    rho = spearman([flops_rank[n] for n in names], [tgi_rank[n] for n in names])
    print(f"\nFLOPS/W vs TGI rank agreement over {FLEET_SIZE} systems: rho = {rho:.2f}")
    # correlated (both reward efficiency) but NOT identical
    assert 0.0 < rho < 1.0


def test_geometric_tgi_orders_similarly_here(benchmark, fleet_scores):
    """On this fleet the AM and GM orderings agree (no pathological REE
    spreads); the *guarantee* difference is what matters and is tested in
    test_core_alternatives.py."""
    reference, measurements = fleet_scores
    am = TGICalculator(reference)
    gm = GeometricTGICalculator(reference)

    def score():
        return [
            (name, am.compute(result).value, gm.compute_value(result))
            for name, result in measurements
        ]

    rows = benchmark(score)
    am_order = [n for n, a, _ in sorted(rows, key=lambda r: r[1], reverse=True)]
    gm_order = [n for n, _, g in sorted(rows, key=lambda r: r[2], reverse=True)]
    rho = spearman(
        [am_order.index(n) for n in am_order],
        [gm_order.index(n) for n in am_order],
    )
    print(f"\nAM vs GM TGI rank agreement: rho = {rho:.2f}")
    for name, a, g in rows:
        assert g <= a + 1e-12  # AM-GM inequality per system
    assert rho > 0.5