"""Figure 4 bench: regenerate the IOzone energy-efficiency curve."""

from repro.analysis import CurveShape
from repro.experiments.curves import run_fig4_iozone


def test_fig4_iozone(benchmark, context):
    result = benchmark(run_fig4_iozone, context)
    print()
    print(result.format())
    assert result.shape is CurveShape.RISING
    assert result.x == (1, 2, 3, 4, 5, 6, 7, 8)
    # aggregate write EE grows several-fold from 1 to 8 nodes as the
    # cluster's idle floor is amortized
    assert result.efficiency[-1] > 4 * result.efficiency[0]
