"""Figure 4 bench: regenerate the IOzone energy-efficiency curve."""

from repro.analysis import CurveShape
from repro.experiments.curves import run_fig4_iozone
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "fig4.iozone_curve",
    description="regenerate the Figure 4 IOzone energy-efficiency curve",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "ee_swing_ratio",
            direction=HIGHER_IS_BETTER,
            help="full-scale EE over single-node EE (the amortization swing)",
        ),
    ),
)
def fig4_scenario(context):
    result = run_fig4_iozone(context)
    return {"ee_swing_ratio": result.efficiency[-1] / result.efficiency[0]}


def test_fig4_iozone(benchmark, context):
    result = benchmark(run_fig4_iozone, context)
    print()
    print(result.format())
    assert result.shape is CurveShape.RISING
    assert result.x == (1, 2, 3, 4, 5, 6, 7, 8)
    # aggregate write EE grows several-fold from 1 to 8 nodes as the
    # cluster's idle floor is amortized
    assert result.efficiency[-1] > 4 * result.efficiency[0]
