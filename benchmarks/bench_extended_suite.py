"""Extended-suite benches: the HPCC-style extra members at full scale.

Regenerates the five-benchmark REE fingerprint (examples/extended_suite.py)
and asserts its headline: adding a network probe exposes Fire's GigE
fabric, displacing HPL as the weakest subsystem.
"""

import pytest

from repro.benchmarks import (
    BenchmarkSuite,
    EffectiveBandwidthBenchmark,
    HPLBenchmark,
    IOzoneBenchmark,
    RandomAccessBenchmark,
    StreamBenchmark,
)
from repro.cluster import presets
from repro.core import ReferenceSet, TGICalculator
from repro.perfwatch import MetricSpec, scenario
from repro.sim import ClusterExecutor


def _extended_results():
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=20, intensity=0.4),
            IOzoneBenchmark(target_seconds=20),
            RandomAccessBenchmark(target_seconds=20),
            EffectiveBandwidthBenchmark(target_seconds=20),
        ]
    )
    sysg = presets.system_g()
    ref = suite.run(ClusterExecutor(sysg, rng=1), sysg.total_cores)
    fire = presets.fire()
    sut = suite.run(ClusterExecutor(fire, rng=7), fire.total_cores)
    return ref, sut


@pytest.fixture(scope="module")
def extended_results():
    return _extended_results()


@scenario(
    "extended.five_benchmark_tgi",
    description="five-benchmark HPCC-style suite on SystemG + Fire, TGI computed",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "tgi_value",
            direction="higher",
            help="Fire's five-benchmark TGI against the SystemG reference",
        ),
    ),
)
def extended_scenario():
    ref_result, fire_result = _extended_results()
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG")
    tgi = TGICalculator(reference).compute(fire_result)
    return {"tgi_value": tgi.value}


def test_five_benchmark_tgi(benchmark, extended_results):
    ref_result, fire_result = extended_results
    reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG")
    calculator = TGICalculator(reference)
    tgi = benchmark(calculator.compute, fire_result)
    print()
    from repro.core import format_tgi_result

    print(format_tgi_result(tgi))
    # the network probe exposes the GigE fabric as the weakest subsystem
    assert tgi.least_efficient_benchmark == "b_eff"
    assert tgi.ree["b_eff"] < 0.2
    # and GUPS is network-throttled on Fire too
    assert tgi.ree["RandomAccess"] < 0.3


def test_gups_network_cliff(benchmark, extended_results):
    """Single-node vs multi-node GUPS on Fire: the classic cliff."""
    from repro.perfmodels import RandomAccessModel

    fire = presets.fire()
    model = RandomAccessModel(cluster=fire)

    def both():
        local = model.predict(16, ranks_per_node=16)  # one node
        dist = model.predict(128)  # eight nodes over GigE
        return local, dist

    local, dist = benchmark(both)
    print(
        f"\nGUPS: single node {local.gups:.4f}, 8 nodes over GigE {dist.gups:.4f} "
        f"({dist.gups / local.gups:.2f}x)"
    )
    assert not local.network_limited
    assert dist.network_limited
    assert dist.updates_per_second < local.updates_per_second
