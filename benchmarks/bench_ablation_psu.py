"""Ablation: the PSU efficiency curve's contribution to wall power.

Compares the default load-dependent PSU curve against a lossless supply
across the Fire suite and reports how much of the measured wall power is
conversion loss — and how the loss *fraction* moves with load, which is
why an idle-heavy cluster measurement cannot simply subtract a constant.
"""

import pytest

from repro.cluster import presets
from repro.perfwatch import MetricSpec, scenario
from repro.power import NodePowerModel, NodeUtilization
from repro.power.psu import IDEAL_PSU


@pytest.fixture(scope="module")
def fire_node():
    return presets.fire().node


UTILIZATION_POINTS = {
    "idle": NodeUtilization.idle(),
    "iozone": NodeUtilization(cpu_active_fraction=1 / 16, cpu_intensity=0.15, storage=1.0),
    "stream": NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=0.4, memory=1.0),
    "hpl": NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=1.0, memory=0.6),
}


def compute_losses(fire_node):
    lossy = NodePowerModel(node=fire_node)
    lossless = NodePowerModel(node=fire_node, psu=IDEAL_PSU)
    out = {}
    for name, util in UTILIZATION_POINTS.items():
        wall = lossy.wall_power(util)
        dc = lossless.wall_power(util)
        out[name] = (wall, dc, (wall - dc) / wall)
    return out


@scenario(
    "ablation.psu",
    description="PSU conversion-loss fraction across the Fire utilization points",
    tier="quick",
    metrics=(
        MetricSpec(
            "hpl_loss_fraction",
            direction="lower",
            help="fraction of HPL wall power lost in the supply",
        ),
        MetricSpec(
            "idle_loss_fraction",
            direction="lower",
            help="fraction of idle wall power lost in the supply",
        ),
    ),
)
def psu_scenario():
    losses = compute_losses(presets.fire().node)
    return {
        "hpl_loss_fraction": losses["hpl"][2],
        "idle_loss_fraction": losses["idle"][2],
    }


def test_psu_loss_ablation(benchmark, fire_node):
    losses = benchmark(compute_losses, fire_node)
    print("\nworkload  wall(W)  dc(W)  loss-fraction")
    for name, (wall, dc, frac) in losses.items():
        print(f"  {name:8s} {wall:7.1f} {dc:6.1f}  {100 * frac:5.1f} %")
    # conversion loss is material (> 8 %) everywhere ...
    assert all(frac > 0.08 for _, _, frac in losses.values())
    # ... and worst at idle, where the supply runs at light load
    assert losses["idle"][2] > losses["hpl"][2]


def test_psu_effect_on_ee_ratio(benchmark, fire_node):
    """The PSU curve compresses EE differences between workloads: the
    idle-heavy run pays a larger conversion penalty."""

    def ee_ratio(model):
        hpl = model.wall_power(UTILIZATION_POINTS["hpl"])
        io = model.wall_power(UTILIZATION_POINTS["iozone"])
        return hpl / io

    lossy_ratio = benchmark(ee_ratio, NodePowerModel(node=fire_node))
    lossless_ratio = ee_ratio(NodePowerModel(node=fire_node, psu=IDEAL_PSU))
    print(f"\nHPL/IOzone power ratio: with PSU {lossy_ratio:.3f}, lossless {lossless_ratio:.3f}")
    assert lossy_ratio < lossless_ratio
