"""Ablation: the metering boundary (the paper's Figure 1 choice).

The paper places the power meter between the outlet and the *whole*
system.  A common lab shortcut meters only the nodes a run uses.  This
bench quantifies how much that choice matters: with active-node metering,
IOzone's energy-efficiency curve — rising steeply under whole-system
metering as the idle floor is amortized — goes **flat**, and with it the
"TGI follows the least-efficient subsystem" story of Figure 5.

In other words: Figure 1 is not plumbing, it is load-bearing methodology.
"""

import numpy as np
import pytest

from repro.analysis import CurveShape, characterize_curve, relative_range
from repro.benchmarks import IOzoneBenchmark
from repro.cluster import presets
from repro.perfwatch import MetricSpec, scenario
from repro.power.meter import PERFECT_METER, WallPlugMeter
from repro.sim import ClusterExecutor


def iozone_ee_curve(metering: str):
    fire = presets.fire()
    executor = ClusterExecutor(
        fire,
        meter=WallPlugMeter(PERFECT_METER, rng=0),
        metering=metering,
    )
    bench = IOzoneBenchmark(target_seconds=30)
    return np.array(
        [bench.run(executor, nodes).energy_efficiency for nodes in range(1, 9)]
    )


@scenario(
    "ablation.metering_boundary",
    description="IOzone EE curves under whole-system vs active-node metering",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "system_metering_swing",
            direction="higher",
            help="relative EE range under whole-system metering (Figure 1 choice)",
        ),
    ),
)
def metering_scenario():
    system = iozone_ee_curve("system")
    return {"system_metering_swing": float(relative_range(system))}


def test_metering_boundary_ablation(benchmark):
    active = benchmark(iozone_ee_curve, "active-nodes")
    system = iozone_ee_curve("system")
    print("\nIOzone EE (MB/s/W) vs nodes:")
    print(f"  whole-system meter: {np.round(system / 1e6, 3).tolist()}")
    print(f"  active-nodes meter: {np.round(active / 1e6, 3).tolist()}")
    # whole-system metering: strongly rising (idle floor amortized)
    assert characterize_curve(system) is CurveShape.RISING
    assert relative_range(system) > 1.0
    # active-node metering: per-node efficiency, essentially flat
    assert relative_range(active) < 0.05
    # the shortcut also flatters the small configurations enormously
    assert active[0] > 5 * system[0]


def test_metering_boundary_changes_power_not_performance(benchmark):
    """Only the measured power moves; reported performance is identical."""
    fire = presets.fire()
    bench = IOzoneBenchmark(target_seconds=30)

    def run(metering):
        executor = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering=metering
        )
        return bench.run(executor, 2)

    active = benchmark(run, "active-nodes")
    system = run("system")
    assert active.performance == system.performance
    assert active.power_w < system.power_w
