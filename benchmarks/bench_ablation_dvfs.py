"""Ablation: TGI under DVFS (the energy-efficiency knob study).

Derives downclocked Fire variants with the classic ``P_dyn ~ f V^2``
scaling and measures how the suite's efficiencies and TGI respond —
quantifying the throughput-for-efficiency trade the metric rewards.
"""

import dataclasses

import pytest

from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import ClusterSpec, presets
from repro.core import ReferenceSet, TGICalculator
from repro.perfwatch import MetricSpec, scenario
from repro.power import DVFSModel, DVFSOperatingPoint
from repro.sim import ClusterExecutor

POINTS = (
    DVFSOperatingPoint(frequency_hz=2.3e9, voltage_v=1.20),
    DVFSOperatingPoint(frequency_hz=1.5e9, voltage_v=1.00),
)
LADDER = DVFSModel(nominal=POINTS[0], points=POINTS)


def fire_at(point):
    fire = presets.fire()
    node = dataclasses.replace(
        fire.node, cpu=LADDER.scale_cpu(fire.node.cpu, point)
    )
    return ClusterSpec(name=f"Fire@{point.frequency_hz / 1e9:.1f}", node=node, num_nodes=8)


def measure(point):
    cluster = fire_at(point)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=2),
            StreamBenchmark(target_seconds=15, intensity=0.4),
            IOzoneBenchmark(target_seconds=15),
        ]
    )
    return suite.run(ClusterExecutor(cluster, rng=7), cluster.total_cores)


@scenario(
    "ablation.dvfs",
    description="suite + TGI of downclocked Fire vs nominal (DVFS trade)",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "tgi_downclocked",
            direction="higher",
            help="TGI of the 1.5 GHz point against the nominal reference",
        ),
    ),
)
def dvfs_scenario():
    nominal = measure(POINTS[0])
    low = measure(POINTS[1])
    reference = ReferenceSet.from_suite_result(nominal, system_name="nominal")
    return {"tgi_downclocked": TGICalculator(reference).compute(low).value}


def test_dvfs_tgi_ablation(benchmark):
    nominal = measure(POINTS[0])
    low = benchmark(measure, POINTS[1])
    reference = ReferenceSet.from_suite_result(nominal, system_name="nominal")
    tgi_low = TGICalculator(reference).compute(low)
    print(f"\nTGI of downclocked Fire vs nominal: {tgi_low.value:.4f}")
    # downclocking trades HPL throughput ...
    assert low["HPL"].performance < nominal["HPL"].performance
    # ... for better HPL efficiency (superlinear power savings)
    assert low["HPL"].energy_efficiency > nominal["HPL"].energy_efficiency
    # and the system-wide metric credits the trade on this machine
    assert tgi_low.value > 1.0


def test_dvfs_memory_bound_work_barely_slows(benchmark):
    """STREAM's bandwidth is DRAM-, not clock-, limited: the reported
    aggregate rate is identical across operating points while power drops."""
    nominal = measure(POINTS[0])
    low = benchmark(measure, POINTS[1])
    assert low["STREAM"].performance == pytest.approx(
        nominal["STREAM"].performance, rel=1e-6
    )
    assert low["STREAM"].power_w < nominal["STREAM"].power_w
