"""Table II bench: regenerate the PCC table — the paper's headline result.

Paper (Section IV-B): PCC between arithmetic-mean TGI and the EE of
IOzone / STREAM / HPL is .99 / .96 / .58; time weights behave like the
arithmetic mean; energy and power weights correlate higher with HPL.
"""

from repro.experiments.tables import run_table2_pcc
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "table2.pcc",
    description="regenerate Table II (TGI-vs-EE Pearson coefficients)",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "pcc_iozone_am",
            direction=HIGHER_IS_BETTER,
            help="headline PCC: arithmetic-mean TGI vs IOzone EE",
        ),
    ),
)
def table2_scenario(context):
    result = run_table2_pcc(context)
    return {"pcc_iozone_am": result.pcc("IOzone", "arithmetic-mean")}


def test_table2_pcc(benchmark, context):
    result = benchmark(run_table2_pcc, context)
    print()
    print(result.format())
    am = {b: result.pcc(b, "arithmetic-mean") for b in ("IOzone", "STREAM", "HPL")}
    # headline ordering
    assert am["IOzone"] > 0.95
    assert am["STREAM"] > 0.9
    assert abs(am["HPL"] - 0.58) < 0.08
    # time ~ arithmetic mean
    for b in ("IOzone", "STREAM", "HPL"):
        assert abs(result.pcc(b, "time") - am[b]) < 0.08
    # energy/power weights pull TGI toward HPL (the undesired property)
    assert result.pcc("HPL", "energy") > am["HPL"]
    assert result.pcc("HPL", "power") > am["HPL"]
