"""Ablation: what the measurement instrument contributes to the numbers.

Sweeps the meter's sampling interval, gain error, and quantization against
a fixed ground-truth power curve (an HPL run on Fire) and reports the
energy error each effect introduces.  The paper's 1 Hz Watts Up? PRO sits
comfortably below 1 % on minute-scale runs — this bench demonstrates why
the methodology is sound, and where it would stop being sound (minute-scale
sampling of minute-scale runs).
"""

import pytest

from repro.benchmarks import HPLBenchmark
from repro.cluster import presets
from repro.perfwatch import MetricSpec, scenario
from repro.power.meter import MeterSpec, WallPlugMeter
from repro.sim import ClusterExecutor


def _truth_record():
    """Ground-truth power curve of one HPL run at 128 ranks."""
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    bench = HPLBenchmark(sizing=("fixed", 20160), rounds=4, comm_volume_factor=2.0)
    built = bench.build(executor, 128)
    record = executor.execute(built.placement, built.programs)
    return record


@pytest.fixture(scope="module")
def truth():
    return _truth_record()


@scenario(
    "ablation.meter",
    description="meter sampling-interval sweep against a ground-truth HPL power curve",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "energy_error_1hz",
            direction="lower",
            help="|energy error| fraction of the paper's 1 Hz instrument",
        ),
    ),
)
def meter_scenario():
    truth_record = _truth_record()
    spec = MeterSpec(
        name="dt=1.0", sample_interval_s=1.0,
        gain_error_fraction=0.0, noise_counts=0.0,
    )
    energy = measure_energy(truth_record, spec)
    error = abs(energy - truth_record.true_energy_j) / truth_record.true_energy_j
    return {"energy_error_1hz": error}


def test_meter_scenario_matches_paper_bound():
    """The registry citizen repeats the 1 Hz soundness claim end to end."""
    assert meter_scenario()["energy_error_1hz"] < 0.01


def measure_energy(truth_record, spec, seed=0):
    trace = WallPlugMeter(spec, rng=seed).measure(truth_record.truth)
    return trace.mean_power() * truth_record.makespan_s


def test_sampling_rate_ablation(benchmark, truth):
    errors = {}

    def sweep():
        for dt in (0.1, 1.0, 10.0, 60.0):
            spec = MeterSpec(
                name=f"dt={dt}", sample_interval_s=dt,
                gain_error_fraction=0.0, noise_counts=0.0,
            )
            energy = measure_energy(truth, spec)
            errors[dt] = abs(energy - truth.true_energy_j) / truth.true_energy_j
        return errors

    result = benchmark(sweep)
    print("\nsampling-interval -> |energy error|:")
    for dt, err in result.items():
        print(f"  {dt:6.1f} s  {100 * err:.4f} %")
    # the paper's 1 Hz instrument is comfortably accurate on this run
    assert result[1.0] < 0.01
    # and finer sampling can only help
    assert result[0.1] <= result[1.0] + 1e-6


def test_gain_error_ablation(benchmark, truth):
    def sweep():
        spreads = []
        for seed in range(8):
            spec = MeterSpec(name="pro", gain_error_fraction=0.015, noise_counts=0.0)
            energy = measure_energy(truth, spec, seed=seed)
            spreads.append((energy - truth.true_energy_j) / truth.true_energy_j)
        return spreads

    spreads = benchmark(sweep)
    print(f"\nper-instrument energy bias across 8 meters: "
          f"{[f'{100 * s:+.2f}%' for s in spreads]}")
    # every instrument stays within its datasheet gain spec
    assert all(abs(s) <= 0.016 for s in spreads)


def test_quantization_ablation(benchmark, truth):
    def sweep():
        out = {}
        for resolution in (0.1, 10.0, 100.0):
            spec = MeterSpec(
                name=f"res={resolution}", gain_error_fraction=0.0,
                noise_counts=0.0, resolution_watts=resolution,
            )
            energy = measure_energy(truth, spec)
            out[resolution] = abs(energy - truth.true_energy_j) / truth.true_energy_j
        return out

    result = benchmark(sweep)
    print("\ndisplay resolution -> |energy error|:")
    for res, err in result.items():
        print(f"  {res:6.1f} W  {100 * err:.4f} %")
    # 0.1 W counts on a ~2 kW signal are invisible next to the sampling
    # error floor (~0.1 % on this run); even 100 W quantization stays small
    assert result[0.1] < 5e-3
    assert result[100.0] < 5e-2
