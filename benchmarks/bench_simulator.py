"""Simulator-cost benchmarks: what a campaign costs to run.

Times the substrate itself — one full suite run at a scale point, one
engine execution at 1024 ranks, one metered power-folding pass, and the
campaign executor's three regimes (serial, process pool, warm cache) — so
regressions in the simulation core and the campaign layer are caught by
the benchmark suite.
"""

import dataclasses
import os
import time

import pytest

from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.campaign import CampaignRunner, ResultCache, fleet_jobs
from repro.cluster import presets
from repro.experiments import PAPER_CONFIG
from repro.perfwatch import MetricSpec, scenario
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    SimulationEngine,
    barrier,
    breadth_first_placement,
    compute_phase,
)


@scenario(
    "sim.suite_run",
    description="one full three-benchmark suite run on Fire at 128 ranks",
)
def suite_run_scenario():
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=4),
            StreamBenchmark(target_seconds=45),
            IOzoneBenchmark(target_seconds=45),
        ]
    )
    suite.run(executor, 128)


@scenario(
    "sim.engine_1024_ranks",
    description="discrete-event engine: 1024 ranks, compute + barrier phases",
)
def engine_scenario():
    programs = [
        RankProgram(
            rank=r,
            phases=[compute_phase(10.0 + (r % 7) * 0.1), barrier(), compute_phase(5.0)],
        )
        for r in range(1024)
    ]
    engine = SimulationEngine(programs)
    engine.makespan(engine.run())


# --- engine (struct-of-arrays sweep) --------------------------------------
#
# Program construction happens in setup (untimed); the timed region is one
# vectorized engine execution.  Staggered per-rank durations keep every
# barrier column honest (distinct arrival times, real wait synthesis).


def _engine_programs(num_ranks):
    return [
        RankProgram(
            rank=r,
            phases=[
                compute_phase(10.0 + (r % 7) * 0.1),
                barrier(),
                compute_phase(5.0 + (r % 32) * 0.01),
                barrier(),
                compute_phase(2.0 + (r % 5) * 0.05),
            ],
        )
        for r in range(num_ranks)
    ]


_ENGINE_METRICS = (
    MetricSpec(
        "intervals",
        unit="intervals",
        direction="higher",
        help="intervals emitted by the engine run (work accomplished)",
    ),
)


@scenario(
    "sim.engine_16384",
    description="vectorized sweep engine: 16384 ranks, three barrier segments",
    setup=lambda: _engine_programs(16384),
    metrics=_ENGINE_METRICS,
)
def engine_16384_scenario(programs):
    arrays = SimulationEngine(programs).run_arrays()
    return {"intervals": float(len(arrays))}


@scenario(
    "sim.engine_102400",
    description="vectorized sweep engine: a Top500-class 102400-rank run",
    setup=lambda: _engine_programs(102400),
    tier="full",
    repeats=2,
    metrics=_ENGINE_METRICS,
)
def engine_102400_scenario(programs):
    arrays = SimulationEngine(programs).run_arrays()
    return {"intervals": float(len(arrays))}


@scenario(
    "sim.power_folding",
    description="fold 128 ranks' activity into a metered cluster power curve",
)
def power_folding_scenario():
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    placement = breadth_first_placement(fire, 128)
    programs = [
        RankProgram(
            rank=r,
            phases=[compute_phase(30.0), barrier(), compute_phase(10.0 + (r % 16))],
        )
        for r in range(128)
    ]
    executor.execute(placement, programs)


# --- power integration (sweep-line pipeline) ------------------------------
#
# The engine run happens in setup (untimed); the timed region is exactly
# the integration phase the sweep-line rewrite targets.  Per-rank staggered
# durations make nearly every interval endpoint a distinct global cut, so
# the scenario exercises the integrator at its real segment density.


def _integration_state(num_nodes):
    cluster = presets.fire(num_nodes)
    num_ranks = num_nodes * cluster.node.cores
    executor = ClusterExecutor(cluster, rng=7)
    placement = breadth_first_placement(cluster, num_ranks)
    programs = [
        RankProgram(
            rank=r,
            phases=[
                compute_phase(10.0 + r * 0.001),
                barrier(),
                compute_phase(5.0 + (r % 32) * 0.01),
            ],
        )
        for r in range(num_ranks)
    ]
    engine = SimulationEngine(programs)
    intervals = engine.run()
    makespan = engine.makespan(intervals)
    return executor, placement, intervals, makespan


_SEGMENT_METRICS = (
    MetricSpec(
        "segments_out",
        unit="segments",
        direction="lower",
        help="compacted truth-curve segments produced by the integrator",
    ),
)


@scenario(
    "sim.power_integration_1024",
    description="sweep-line power integration: 1024 ranks on 64 Fire nodes",
    setup=lambda: _integration_state(64),
    metrics=_SEGMENT_METRICS,
)
def power_integration_1024_scenario(state):
    executor, placement, intervals, makespan = state
    _, _, stats = executor.integrate_power(placement, intervals, makespan)
    return {"segments_out": float(stats["segments_out"])}


@scenario(
    "sim.power_integration_4096",
    description="sweep-line power integration: 4096 ranks on 256 Fire nodes",
    setup=lambda: _integration_state(256),
    tier="full",
    repeats=2,
    metrics=_SEGMENT_METRICS,
)
def power_integration_4096_scenario(state):
    executor, placement, intervals, makespan = state
    _, _, stats = executor.integrate_power(placement, intervals, makespan)
    return {"segments_out": float(stats["segments_out"])}


@scenario(
    "sim.campaign_serial_50",
    description="the 50-config fleet campaign through the serial executor",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "jobs_per_s",
            unit="jobs/s",
            direction="higher",
            help="campaign throughput (jobs over executor wall time)",
        ),
    ),
)
def campaign_serial_scenario():
    import time as _time

    jobs = _campaign_jobs()
    t0 = _time.perf_counter()
    result = CampaignRunner(workers=1).run(jobs)
    wall = _time.perf_counter() - t0
    assert len(result) == _CAMPAIGN_SIZE
    return {"jobs_per_s": _CAMPAIGN_SIZE / wall}


def test_suite_run_cost(benchmark):
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=4),
            StreamBenchmark(target_seconds=45),
            IOzoneBenchmark(target_seconds=45),
        ]
    )
    result = benchmark(suite.run, executor, 128)
    assert len(result) == 3


def test_engine_scales_to_thousand_ranks(benchmark):
    def run():
        programs = [
            RankProgram(
                rank=r,
                phases=[compute_phase(10.0 + (r % 7) * 0.1), barrier(), compute_phase(5.0)],
            )
            for r in range(1024)
        ]
        engine = SimulationEngine(programs)
        return engine.makespan(engine.run())

    makespan = benchmark(run)
    assert makespan == pytest.approx(10.6 + 5.0)


def test_power_folding_cost(benchmark):
    """Folding 128 ranks' intervals into a metered cluster power curve."""
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    placement = breadth_first_placement(fire, 128)
    programs = [
        RankProgram(
            rank=r,
            phases=[compute_phase(30.0), barrier(), compute_phase(10.0 + (r % 16))],
        )
        for r in range(128)
    ]
    record = benchmark(executor.execute, placement, programs)
    assert record.makespan_s == pytest.approx(30.0 + 25.0)


# --- campaign executor ----------------------------------------------------

#: A cheap per-job suite so 50-job campaigns stay benchmark-sized.
_CAMPAIGN_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=8960,
    hpl_rounds=2,
    stream_target_seconds=10,
    iozone_target_seconds=10,
)

#: The acceptance-scale campaign: >= 50 independent experiment configs.
_CAMPAIGN_SIZE = 50


def _campaign_jobs():
    return fleet_jobs(_CAMPAIGN_SIZE, era="2011", config=_CAMPAIGN_CONFIG)


def test_campaign_serial_cost(benchmark):
    """Baseline: the 50-config campaign through the serial path."""
    runner = CampaignRunner(workers=1)
    result = benchmark.pedantic(runner.run, args=(_campaign_jobs(),), rounds=1, iterations=1)
    assert len(result) == _CAMPAIGN_SIZE


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs more than one CPU",
)
def test_campaign_parallel_beats_serial():
    """Acceptance: workers=4 beats the serial path on the same 50 configs."""
    jobs = _campaign_jobs()
    t0 = time.perf_counter()
    serial = CampaignRunner(workers=1).run(jobs)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = CampaignRunner(workers=4).run(jobs)
    parallel_s = time.perf_counter() - t0
    assert parallel_s < serial_s, (parallel_s, serial_s)
    # and the pool changed nothing but the wall time
    assert [o.payload for o in parallel] == [o.payload for o in serial]


def test_power_integration_vectorized_beats_reference():
    """Acceptance: the sweep-line path is >= 5x the scalar oracle at 1024 ranks."""
    executor, placement, intervals, makespan = _integration_state(64)
    reference = ClusterExecutor(executor.cluster, rng=7, integration="reference")

    t0 = time.perf_counter()
    truth_vec, breakdown_vec, _ = executor.integrate_power(placement, intervals, makespan)
    vec_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    truth_ref, breakdown_ref, _ = reference.integrate_power(placement, intervals, makespan)
    ref_s = time.perf_counter() - t0

    # same physics ...
    assert truth_vec.energy() == pytest.approx(truth_ref.energy(), rel=1e-9)
    for component, joules in breakdown_ref.items():
        assert breakdown_vec[component] == pytest.approx(joules, rel=1e-9, abs=1e-9)
    # ... much faster
    assert ref_s / vec_s >= 5.0, f"speedup only {ref_s / vec_s:.1f}x ({ref_s:.2f}s vs {vec_s:.2f}s)"


def test_engine_vectorized_beats_reference():
    """Acceptance: the sweep engine is >= 3x the event-heap oracle at 8192
    ranks while emitting the identical schedule."""
    programs = _engine_programs(8192)
    vectorized = SimulationEngine(programs, engine="vectorized")
    reference = SimulationEngine(programs, engine="reference")
    vectorized.run_arrays()  # warm numpy allocators outside the timed region

    t0 = time.perf_counter()
    arrays = vectorized.run_arrays()
    vec_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref_intervals = reference.run()
    ref_s = time.perf_counter() - t0

    # same schedule ...
    assert len(arrays) == sum(len(per_rank) for per_rank in ref_intervals)
    assert arrays.makespan == pytest.approx(
        reference.makespan(ref_intervals), rel=1e-9, abs=1e-9
    )
    # ... much faster
    assert ref_s / vec_s >= 3.0, f"speedup only {ref_s / vec_s:.1f}x ({ref_s:.2f}s vs {vec_s:.2f}s)"


@pytest.mark.slow
def test_engine_102400_under_10s():
    """Acceptance: a Top500-class 102400-rank simulation completes in
    under 10 s end-to-end (program compilation included)."""
    t0 = time.perf_counter()
    programs = _engine_programs(102400)
    arrays = SimulationEngine(programs).run_arrays()
    wall = time.perf_counter() - t0
    assert len(arrays) > 3 * 102400  # three phases + waits per rank
    assert arrays.makespan == pytest.approx(18.11)
    assert wall < 10.0, f"102400-rank simulation took {wall:.1f}s"


def test_campaign_warm_cache_cost(benchmark, tmp_path):
    """A warm-cache rerun costs file reads, not simulation."""
    jobs = _campaign_jobs()
    CampaignRunner(workers=1, cache=ResultCache(tmp_path)).run(jobs)

    def rerun():
        return CampaignRunner(workers=1, cache=ResultCache(tmp_path)).run(jobs)

    result = benchmark(rerun)
    assert result.manifest["cache_run"]["hit_rate"] >= 0.9
