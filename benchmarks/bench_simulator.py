"""Simulator-cost benchmarks: what a campaign costs to run.

Times the substrate itself — one full suite run at a scale point, one
engine execution at 1024 ranks, one metered power-folding pass — so
regressions in the simulation core are caught by the benchmark suite.
"""

import pytest

from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import presets
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    SimulationEngine,
    barrier,
    breadth_first_placement,
    compute_phase,
)


def test_suite_run_cost(benchmark):
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 20160), rounds=4),
            StreamBenchmark(target_seconds=45),
            IOzoneBenchmark(target_seconds=45),
        ]
    )
    result = benchmark(suite.run, executor, 128)
    assert len(result) == 3


def test_engine_scales_to_thousand_ranks(benchmark):
    def run():
        programs = [
            RankProgram(
                rank=r,
                phases=[compute_phase(10.0 + (r % 7) * 0.1), barrier(), compute_phase(5.0)],
            )
            for r in range(1024)
        ]
        engine = SimulationEngine(programs)
        return engine.makespan(engine.run())

    makespan = benchmark(run)
    assert makespan == pytest.approx(10.6 + 5.0)


def test_power_folding_cost(benchmark):
    """Folding 128 ranks' intervals into a metered cluster power curve."""
    fire = presets.fire()
    executor = ClusterExecutor(fire, rng=7)
    placement = breadth_first_placement(fire, 128)
    programs = [
        RankProgram(
            rank=r,
            phases=[compute_phase(30.0), barrier(), compute_phase(10.0 + (r % 16))],
        )
        for r in range(128)
    ]
    record = benchmark(executor.execute, placement, programs)
    assert record.makespan_s == pytest.approx(30.0 + 25.0)
