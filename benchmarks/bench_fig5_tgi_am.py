"""Figure 5 bench: regenerate the arithmetic-mean TGI curve."""

from repro.analysis import pearson
from repro.experiments.tgi_curves import run_fig5_tgi_am


def test_fig5_tgi_arithmetic_mean(benchmark, context):
    result = benchmark(run_fig5_tgi_am, context)
    print()
    print(result.format())
    values = result.series.values
    # TGI rises with scale ...
    assert values[-1] > values[0]
    # ... and follows IOzone's trend (the paper's goodness argument)
    iozone = context.sweep.efficiency_series("IOzone")
    assert pearson(values, iozone) > 0.95
