"""Figure 5 bench: regenerate the arithmetic-mean TGI curve."""

from repro.analysis import pearson
from repro.experiments.tgi_curves import run_fig5_tgi_am
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "fig5.tgi_am_curve",
    description="regenerate the Figure 5 arithmetic-mean TGI curve",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "tgi_full_scale",
            direction=HIGHER_IS_BETTER,
            help="TGI at the largest scale point",
        ),
    ),
)
def fig5_scenario(context):
    result = run_fig5_tgi_am(context)
    return {"tgi_full_scale": float(result.series.values[-1])}


def test_fig5_tgi_arithmetic_mean(benchmark, context):
    result = benchmark(run_fig5_tgi_am, context)
    print()
    print(result.format())
    values = result.series.values
    # TGI rises with scale ...
    assert values[-1] > values[0]
    # ... and follows IOzone's trend (the paper's goodness argument)
    iozone = context.sweep.efficiency_series("IOzone")
    assert pearson(values, iozone) > 0.95
