"""Shared fixtures for the benchmark harness.

The per-figure benches share one calibrated campaign (reference run +
Fire sweep) via a session fixture, so pytest-benchmark timings measure the
artifact-regeneration step itself, not repeated campaign setup — and each
bench prints the paper-style table it regenerates, making
``pytest benchmarks/ --benchmark-only -s`` a full reproduction run.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_CONFIG, SharedContext


@pytest.fixture(scope="session")
def context():
    """The calibrated campaign behind every figure/table."""
    ctx = SharedContext(PAPER_CONFIG)
    _ = ctx.reference
    _ = ctx.sweep
    return ctx
