"""Shared fixtures for the benchmark harness.

The per-figure benches share one calibrated campaign (reference run +
Fire sweep) via a session fixture, so pytest-benchmark timings measure the
artifact-regeneration step itself, not repeated campaign setup — and each
bench prints the paper-style table it regenerates, making
``pytest benchmarks/ --benchmark-only -s`` a full reproduction run.
"""

from __future__ import annotations

import pytest

from repro.perfwatch import shared_context


@pytest.fixture(scope="session")
def context():
    """The calibrated campaign behind every figure/table.

    Shared with the perf-watch scenario registry (same process-wide
    cache), so a pytest run and a ``tgi bench run`` in one process build
    the campaign exactly once.
    """
    return shared_context()
