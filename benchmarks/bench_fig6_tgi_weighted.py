"""Figure 6 bench: regenerate the weighted-mean TGI curves."""

import numpy as np

from repro.experiments.tgi_curves import run_fig6_tgi_weighted


def test_fig6_tgi_weighted_means(benchmark, context):
    result = benchmark(run_fig6_tgi_weighted, context)
    print()
    print(result.format())
    series = result.series_by_weighting
    assert set(series) == {"arithmetic-mean", "time", "energy", "power"}
    # the weightings genuinely disagree ...
    assert not np.allclose(series["arithmetic-mean"].values, series["energy"].values)
    # ... yet every variant is a convex combination of the same REEs, so all
    # stay within the same envelope at each point
    for i in range(len(result.cores)):
        ree = series["arithmetic-mean"].results[i].ree
        lo, hi = min(ree.values()), max(ree.values())
        for name in series:
            assert lo - 1e-9 <= series[name].values[i] <= hi + 1e-9
