"""Figure 6 bench: regenerate the weighted-mean TGI curves."""

import numpy as np

from repro.experiments.tgi_curves import run_fig6_tgi_weighted
from repro.perfwatch import MetricSpec, scenario, shared_context


@scenario(
    "fig6.tgi_weighted_curves",
    description="regenerate the Figure 6 weighted-mean TGI curves",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "weighting_spread",
            direction="lower",
            help="max spread between weighting variants at full scale",
        ),
    ),
)
def fig6_scenario(context):
    result = run_fig6_tgi_weighted(context)
    finals = [series.values[-1] for series in result.series_by_weighting.values()]
    return {"weighting_spread": float(max(finals) - min(finals))}


def test_fig6_tgi_weighted_means(benchmark, context):
    result = benchmark(run_fig6_tgi_weighted, context)
    print()
    print(result.format())
    series = result.series_by_weighting
    assert set(series) == {"arithmetic-mean", "time", "energy", "power"}
    # the weightings genuinely disagree ...
    assert not np.allclose(series["arithmetic-mean"].values, series["energy"].values)
    # ... yet every variant is a convex combination of the same REEs, so all
    # stay within the same envelope at each point
    for i in range(len(result.cores)):
        ree = series["arithmetic-mean"].results[i].ree
        lo, hi = min(ree.values()), max(ree.values())
        for name in series:
            assert lo - 1e-9 <= series[name].values[i] <= hi + 1e-9
