"""Top500-scale fleet ranking: the batched engine vs the per-job campaign.

Pins the perf claim behind ``repro.fleet``: ranking a Green500-sized list
through the vectorized cross-system path must beat running one simulator
campaign job per system by at least an order of magnitude, while producing
the same list (equivalence itself is pinned by ``tests/test_fleet_*.py``;
here we pin the *speed*).

Two perfwatch scenarios feed the regression gate:

- ``fleet.rank_1000`` — a full 1,000-system rank through both legs, with
  the honest serial-campaign baseline timed alongside the batched path.
- ``fleet.rank_5000`` — the batched leg alone at 5x list scale, tracking
  raw throughput (systems ranked per second).
"""

import dataclasses
import time

from repro.campaign import CampaignRunner, fleet_jobs
from repro.experiments import PAPER_CONFIG
from repro.fleet import FleetRankingPipeline, generated_fleet_members
from repro.perfwatch import MetricSpec, scenario

#: Cheap per-benchmark settings so the campaign baseline stays bench-sized
#: while every job still runs the full simulator + metering stack.
QUICK = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2.0,
    iozone_target_seconds=2.0,
)

_ERA = "2011"
_FLEET_SEED = 20110615


def _batched_rank(count):
    members = generated_fleet_members(count, era=_ERA, fleet_seed=_FLEET_SEED)
    pipeline = FleetRankingPipeline(config=QUICK)
    t0 = time.perf_counter()
    ranking = pipeline.rank(members)
    wall = time.perf_counter() - t0
    assert len(ranking) == count
    assert ranking.stats["batched"] == count
    return ranking, wall


def _campaign_rank(count):
    jobs = fleet_jobs(count, era=_ERA, fleet_seed=_FLEET_SEED, config=QUICK)
    t0 = time.perf_counter()
    result = CampaignRunner(workers=1).run(jobs)
    wall = time.perf_counter() - t0
    assert len(result) == count
    return result, wall


@scenario(
    "fleet.rank_1000",
    description="rank a 1,000-system fleet: batched engine vs serial campaign",
    tier="full",
    repeats=1,
    metrics=(
        MetricSpec(
            "batched_wall_s",
            unit="s",
            direction="lower",
            help="wall time to rank 1,000 systems through the batched path",
        ),
        MetricSpec(
            "campaign_wall_s",
            unit="s",
            direction="lower",
            help="wall time for the per-job serial campaign over the same fleet",
        ),
        MetricSpec(
            "speedup",
            unit="x",
            direction="higher",
            help="campaign wall over batched wall (the issue's >=10x claim)",
        ),
    ),
)
def fleet_rank_1000_scenario():
    _, batched_wall = _batched_rank(1000)
    _, campaign_wall = _campaign_rank(1000)
    return {
        "batched_wall_s": batched_wall,
        "campaign_wall_s": campaign_wall,
        "speedup": campaign_wall / batched_wall,
    }


@scenario(
    "fleet.rank_5000",
    description="batched-only rank of a 5,000-system fleet",
    tier="full",
    repeats=2,
    metrics=(
        MetricSpec(
            "batched_wall_s",
            unit="s",
            direction="lower",
            help="wall time to rank 5,000 systems through the batched path",
        ),
        MetricSpec(
            "systems_per_s",
            unit="sys/s",
            direction="higher",
            help="batched ranking throughput at 5x Top500 list scale",
        ),
    ),
)
def fleet_rank_5000_scenario():
    _, wall = _batched_rank(5000)
    return {"batched_wall_s": wall, "systems_per_s": 5000 / wall}


def test_batched_rank_is_order_of_magnitude_faster():
    """The acceptance floor, sized to stay test-suite friendly: 200 systems
    through both legs, batched must win by >=10x (it wins by far more)."""
    count = 200
    ranking, batched_wall = _batched_rank(count)
    _, campaign_wall = _campaign_rank(count)
    assert ranking.rows[0].tgi_rank == 1
    assert campaign_wall / batched_wall >= 10.0


def test_batched_rank_throughput_scales(benchmark):
    """Timing handle for the batched leg alone at list scale."""
    ranking = benchmark(lambda: _batched_rank(500)[0])
    assert len(ranking) == 500
