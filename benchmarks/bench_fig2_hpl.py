"""Figure 2 bench: regenerate the HPL energy-efficiency curve.

Prints the MFLOPS/W-vs-processes series the paper plots and asserts its
qualitative shape (rise, peak, rolloff); the benchmark measures the cost of
regenerating the artifact from the shared campaign.
"""

from repro.analysis import CurveShape
from repro.experiments.curves import run_fig2_hpl
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "fig2.hpl_curve",
    description="regenerate the Figure 2 HPL energy-efficiency curve",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "peak_mflops_per_w",
            unit="MFLOPS/W",
            direction=HIGHER_IS_BETTER,
            help="peak of the regenerated efficiency curve",
        ),
    ),
)
def fig2_scenario(context):
    result = run_fig2_hpl(context)
    return {"peak_mflops_per_w": max(result.efficiency)}


def test_fig2_hpl(benchmark, context):
    result = benchmark(run_fig2_hpl, context)
    print()
    print(result.format())
    assert result.shape is CurveShape.PEAKED
    assert result.x == (16, 32, 48, 64, 80, 96, 112, 128)
    # era-plausible MFLOPS/W band for a 2010 Opteron cluster
    assert all(20 < v < 500 for v in result.efficiency)
