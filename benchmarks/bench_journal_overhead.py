"""Journal overhead bench: the flight recorder must not slow the flight.

Two claims pinned here:

1. With no writer attached, the ambient ``jrnl.emit`` call sites the
   campaign leaves behind are a single global ``None`` check — nanoseconds.
2. With the recorder armed, the cost is (events the campaign emits) x
   (measured per-emit cost: validate + serialize + one ``O_APPEND``
   ``os.write``), and that product stays **< 2%** of the campaign's wall
   time.  Measured as a product, not a diff, for the same reason the
   telemetry bench does it: on deliberately tiny jobs a wall-clock diff
   is noise, while the product is a stable upper bound.

The campaign is 50 genuinely executed single-point jobs on a one-node
Fire preset with a small HPL — the same denominator the telemetry
overhead bench uses, so the two budgets are comparable.
"""

import dataclasses
import tempfile
import time
from pathlib import Path

from repro import journal as jrnl
from repro.campaign import CampaignRunner
from repro.campaign.jobs import CampaignJob, ClusterRef
from repro.experiments import PAPER_CONFIG
from repro.perfwatch import MetricSpec, scenario

JOB_COUNT = 50
REPEATS = 3

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


def _jobs():
    return [
        CampaignJob(
            job_id=f"journal-{i:02d}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=1),
            core_counts=(8,),
            seed=i,
            config=QUICK_CONFIG,
        )
        for i in range(JOB_COUNT)
    ]


def _campaign_seconds() -> float:
    """Best-of-REPEATS wall time of the unjournaled campaign (serial)."""
    best = float("inf")
    for _ in range(REPEATS):
        runner = CampaignRunner(workers=1)
        jobs = _jobs()
        t0 = time.perf_counter()
        runner.run(jobs, label="journal-overhead")
        best = min(best, time.perf_counter() - t0)
    return best


def _census_events() -> int:
    """Events one journaled run of this campaign actually appends."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "census.jsonl"
        CampaignRunner(workers=1, journal=path).run(_jobs(), label="census")
        return len(jrnl.read_events(path))


def _measured_emit_cost_s(samples: int = 20_000) -> float:
    """Per-event cost of one armed emit: validate + serialize + append."""
    with tempfile.TemporaryDirectory() as tmp:
        writer = jrnl.JournalWriter(Path(tmp) / "emit.jsonl", label="bench")
        t0 = time.perf_counter()
        for i in range(samples):
            writer.emit("job.started", job="bench", attempt=0)
        elapsed = time.perf_counter() - t0
        writer.close()
    return elapsed / samples


def _measured_null_emit_cost_s(samples: int = 200_000) -> float:
    """Per-call cost of an ambient emit with no writer attached."""
    jrnl.detach()
    t0 = time.perf_counter()
    for _ in range(samples):
        jrnl.emit("job.started", job="bench", attempt=0)
    return (time.perf_counter() - t0) / samples


@scenario(
    "campaign.journal_overhead",
    description="flight-recorder cost, absolute and relative to a 50-config campaign",
    tier="quick",
    repeats=2,
    metrics=(
        MetricSpec(
            "emit_cost_us",
            unit="us",
            direction="lower",
            help="per-event cost of one armed emit (validate + serialize + O_APPEND write)",
        ),
        MetricSpec(
            "null_emit_ns",
            unit="ns",
            direction="lower",
            help="per-call cost of an ambient emit with no writer attached",
        ),
        MetricSpec(
            "campaign_overhead_fraction",
            direction="lower",
            help="(events emitted x per-emit cost) / campaign wall time; budget is 0.02",
        ),
    ),
)
def journal_overhead_scenario():
    events = _census_events()
    per_emit_s = _measured_emit_cost_s()
    plain_s = _campaign_seconds()
    return {
        "emit_cost_us": per_emit_s * 1e6,
        "null_emit_ns": _measured_null_emit_cost_s(samples=100_000) * 1e9,
        "campaign_overhead_fraction": events * per_emit_s / plain_s,
    }


def test_null_emit_is_a_single_none_check(benchmark):
    """The disarmed hot path: no validation, no serialization, no write."""
    jrnl.detach()

    def disarmed_call_site():
        jrnl.emit("job.started", job="bench", attempt=0)

    benchmark(disarmed_call_site)
    assert jrnl.ambient() is None  # nothing got attached along the way


def test_journal_overhead_under_2_percent_on_50_config_campaign():
    events = _census_events()
    per_emit_s = _measured_emit_cost_s(samples=10_000)
    plain_s = _campaign_seconds()
    overhead = events * per_emit_s / plain_s
    print(
        f"\n50-config campaign: {events} journal events x "
        f"{per_emit_s * 1e6:.1f} us = {events * per_emit_s * 1e3:.2f} ms "
        f"over {plain_s:.3f} s -> {100 * overhead:.3f}% overhead"
    )
    assert overhead < 0.02, (
        f"journal overhead {100 * overhead:.2f}% exceeds the 2% budget"
    )


def test_journal_does_not_change_results():
    """The invariance half of the budget: identical fingerprints on or off."""
    jobs = _jobs()[:3]
    with tempfile.TemporaryDirectory() as tmp:
        journaled = CampaignRunner(
            workers=1, journal=Path(tmp) / "run.jsonl"
        ).run(jobs, label="x")
    bare = CampaignRunner(workers=1).run(jobs, label="x")
    assert journaled.manifest["fingerprint"] == bare.manifest["fingerprint"]
