"""Telemetry overhead bench: the disabled path must be (nearly) free.

The claim pinned here: with no session active, the instrumentation adds
< 5% to a 50-config campaign.  Measured as a product, not a diff — there
is no uninstrumented build to diff against — so the bound is

    (helper calls the campaign makes) x (measured per-call null cost)
    -------------------------------------------------------------- < 5%
                     (campaign wall time, uninstrumented work)

The call count comes from a traced run of the same campaign (every span,
counter, and gauge the enabled path records corresponds to one disabled
call site firing), doubled for safety to also cover the bare
``tele.active()`` checks.  A fully *enabled* session is allowed to cost
real time (it does real work per span); a coarse regression guard keeps it
within 2x on these deliberately tiny jobs.

The campaign is 50 genuinely executed single-point jobs on a one-node Fire
preset with a small HPL, so the denominators are simulation, not an empty
loop.
"""

import dataclasses
import time

from repro import telemetry as tele
from repro.campaign import CampaignRunner
from repro.campaign.jobs import CampaignJob, ClusterRef
from repro.experiments import PAPER_CONFIG
from repro.perfwatch import MetricSpec, scenario

JOB_COUNT = 50
REPEATS = 3

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


def _jobs():
    return [
        CampaignJob(
            job_id=f"overhead-{i:02d}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=1),
            core_counts=(8,),
            seed=i,
            config=QUICK_CONFIG,
        )
        for i in range(JOB_COUNT)
    ]


def _campaign_seconds(*, traced: bool) -> float:
    """Best-of-REPEATS wall time of the 50-job campaign (no cache, serial)."""
    best = float("inf")
    for _ in range(REPEATS):
        runner = CampaignRunner(workers=1)
        jobs = _jobs()
        t0 = time.perf_counter()
        if traced:
            with tele.use(tele.TelemetrySession(label="overhead")):
                runner.run(jobs, label="overhead")
        else:
            runner.run(jobs, label="overhead")
        best = min(best, time.perf_counter() - t0)
    return best


def _census_calls() -> int:
    """Disabled call sites the 50-config campaign would fire (traced census)."""
    session = tele.TelemetrySession(label="census")
    with tele.use(session):
        CampaignRunner(workers=1).run(_jobs(), label="census")
    counter_incs = sum(
        sample["value"]
        for name, family in session.metrics.as_dict().items()
        if family["kind"] == "counter"
        for sample in family["samples"]
    )
    gauge_sets = sum(
        len(family["samples"])
        for family in session.metrics.as_dict().values()
        if family["kind"] == "gauge"
    )
    calls = len(session.spans) + counter_incs + gauge_sets
    return calls * 2  # safety factor: also covers bare tele.active() checks


@scenario(
    "telemetry.null_overhead",
    description="disabled-path telemetry cost, absolute and relative to a 50-config campaign",
    tier="quick",
    repeats=2,
    metrics=(
        MetricSpec(
            "null_call_ns",
            unit="ns",
            direction="lower",
            help="per-call cost of one disabled span + one disabled counter inc",
        ),
        MetricSpec(
            "campaign_overhead_fraction",
            direction="lower",
            help="(call sites x null cost) / campaign wall time; budget is 0.05",
        ),
    ),
)
def null_overhead_scenario():
    calls = _census_calls()
    per_call_s = _measured_null_call_cost_s(samples=100_000)
    plain_s = _campaign_seconds(traced=False)
    return {
        "null_call_ns": per_call_s * 1e9,
        "campaign_overhead_fraction": calls * per_call_s / plain_s,
    }


def test_null_span_call_is_nanoseconds(benchmark):
    """The disabled hot path: one global check, one shared handle."""
    tele.deactivate()

    def disabled_call_site():
        with tele.span("hot.path", key="value"):
            pass
        tele.count("tgi_cache_puts_total")

    benchmark(disabled_call_site)
    # sanity: nothing was recorded anywhere
    assert tele.current() is None


def _measured_null_call_cost_s(samples: int = 200_000) -> float:
    """Per-call wall cost of one disabled span + one disabled counter inc."""
    tele.deactivate()
    t0 = time.perf_counter()
    for _ in range(samples):
        with tele.span("hot.path", key=1):
            pass
        tele.count("tgi_cache_puts_total")
    return (time.perf_counter() - t0) / samples


def test_null_tracer_under_5_percent_on_50_config_campaign():
    # how many helper calls does this campaign actually make?
    calls = _census_calls()
    per_call_s = _measured_null_call_cost_s()
    plain_s = _campaign_seconds(traced=False)
    disabled_overhead = calls * per_call_s / plain_s
    print(
        f"\n50-config campaign: {calls:.0f} disabled call sites x "
        f"{per_call_s * 1e9:.0f} ns = {calls * per_call_s * 1e3:.2f} ms "
        f"over {plain_s:.3f} s -> {100 * disabled_overhead:.3f}% overhead"
    )
    assert disabled_overhead < 0.05, (
        f"null-tracer overhead {100 * disabled_overhead:.2f}% exceeds the 5% budget"
    )


def test_profiling_hooks_do_not_touch_the_disabled_path():
    """The profile= tracer option must leave the null path untouched: with
    no session active the shared null handle is still returned (no per-call
    allocation), and an *enabled* session with profile=False (the default)
    never attaches profile attrs to spans."""
    tele.deactivate()
    handle_a = tele.span("hot.path")
    with handle_a:
        pass
    handle_b = tele.span("other.path", key=1)
    with handle_b:
        pass
    assert handle_a is handle_b  # the one shared null handle, no allocation

    session = tele.TelemetrySession(label="no-profile")
    assert session.tracer.profile is False
    with tele.use(session):
        with tele.span("outer"):
            with tele.span("inner"):
                pass
    assert session.spans and all(
        "profile" not in span.attrs for span in session.spans
    )
    # ... and the product bound itself is re-checked (cheap sample count)
    calls = _census_calls()
    per_call_s = _measured_null_call_cost_s(samples=50_000)
    plain_s = _campaign_seconds(traced=False)
    assert calls * per_call_s / plain_s < 0.05


def test_enabled_telemetry_stays_within_2x_on_tiny_jobs():
    """Coarse regression guard: full collection on ~ms jobs stays sane."""
    _campaign_seconds(traced=False)  # warmup
    plain_s = _campaign_seconds(traced=False)
    traced_s = _campaign_seconds(traced=True)
    ratio = traced_s / plain_s
    print(
        f"\n50-config campaign: plain {plain_s:.3f} s, "
        f"traced {traced_s:.3f} s, ratio {ratio:.3f}"
    )
    assert ratio < 2.0, f"enabled telemetry ratio {ratio:.2f} regressed past 2x"
