"""Table I bench: regenerate the reference system's suite measurements."""

from repro.experiments.tables import run_table1_reference
from repro.perfwatch import HIGHER_IS_BETTER, MetricSpec, scenario, shared_context


@scenario(
    "table1.reference",
    description="regenerate Table I (reference-system suite measurements)",
    setup=shared_context,
    metrics=(
        MetricSpec(
            "hpl_tflops",
            unit="TFLOPS",
            direction=HIGHER_IS_BETTER,
            help="reference HPL capability from the regenerated table",
        ),
    ),
)
def table1_scenario(context):
    result = run_table1_reference(context)
    return {"hpl_tflops": result.suite_result["HPL"].performance / 1e12}


def test_table1_reference(benchmark, context):
    result = benchmark(run_table1_reference, context)
    print()
    print(result.format())
    suite = result.suite_result
    # the paper's power ordering: HPL > STREAM > IOzone
    powers = suite.powers_w
    assert powers["HPL"] > powers["STREAM"] > powers["IOzone"]
    # HPL capability in the high-single-digit TFLOPS band (paper: "8.1 TFLOPS",
    # OCR-garbled; see EXPERIMENTS.md)
    assert 6e12 < suite["HPL"].performance < 11.5e12
