"""Table I bench: regenerate the reference system's suite measurements."""

from repro.experiments.tables import run_table1_reference


def test_table1_reference(benchmark, context):
    result = benchmark(run_table1_reference, context)
    print()
    print(result.format())
    suite = result.suite_result
    # the paper's power ordering: HPL > STREAM > IOzone
    powers = suite.powers_w
    assert powers["HPL"] > powers["STREAM"] > powers["IOzone"]
    # HPL capability in the high-single-digit TFLOPS band (paper: "8.1 TFLOPS",
    # OCR-garbled; see EXPERIMENTS.md)
    assert 6e12 < suite["HPL"].performance < 11.5e12
