"""Timeline overhead bench: watt-level capture must not slow the watts.

Two claims pinned here, mirroring the journal and telemetry benches:

1. With no sink attached, the one ``tline.capturing()`` check the
   executor performs per run is nanoseconds — the same disarmed-ambient
   contract as journal emits and telemetry spans.
2. With the sink armed, capture is reference-stashing plus an O(1)
   ``build_run_timeline`` — all heavy analysis (component grids, audits,
   binning) is deferred to artifact/dashboard time.  The armed cost stays
   **< 3%** of a full 4096-rank execute.

The armed overhead is measured as the median of interleaved paired
diffs (armed minus bare execute, alternating) rather than a diff of two
separately-timed bests: at ~50 ms per execute, scheduler noise between
two measurement blocks easily exceeds the budget itself, while paired
diffs cancel the drift.  The absolute build cost is also measured
directly via the ``sim.timeline.capture`` telemetry span, which brackets
exactly the post-integration build + record work.
"""

import time

import numpy as np

from repro import telemetry as tele
from repro import timeline as tline
from repro.cluster import presets
from repro.perfwatch import MetricSpec, scenario
from repro.sim import ClusterExecutor
from repro.sim.placement import breadth_first_placement
from repro.sim.workload import RankProgram, barrier, compute_phase

NUM_NODES = 256  # 4096 ranks on the Fire preset
PAIRS = 15


def _execute_state():
    """Executor + placement + staggered programs for a 4096-rank run."""
    cluster = presets.fire(NUM_NODES)
    num_ranks = NUM_NODES * cluster.node.cores
    executor = ClusterExecutor(cluster, rng=7)
    placement = breadth_first_placement(cluster, num_ranks)
    programs = [
        RankProgram(
            rank=r,
            phases=[
                compute_phase(10.0 + r * 0.001),
                barrier(),
                compute_phase(5.0 + (r % 32) * 0.01),
            ],
        )
        for r in range(num_ranks)
    ]
    executor.execute(placement, programs)  # warm caches and allocators
    return executor, placement, programs


def _paired_overhead_fraction(executor, placement, programs, pairs=PAIRS):
    """Median of interleaved (armed - bare) diffs over the bare median."""
    bare, armed = [], []
    for _ in range(pairs):
        t0 = time.perf_counter()
        executor.execute(placement, programs)
        bare.append(time.perf_counter() - t0)
        with tline.collecting():
            t0 = time.perf_counter()
            executor.execute(placement, programs)
            armed.append(time.perf_counter() - t0)
    diffs = np.array(armed) - np.array(bare)
    return max(0.0, float(np.median(diffs) / np.median(bare)))


def _capture_span_fraction(executor, placement, programs):
    """Direct build cost: the sim.timeline.capture span over execute wall."""
    with tele.use(tele.TelemetrySession(label="timeline-bench")) as session:
        with tline.collecting():
            t0 = time.perf_counter()
            executor.execute(placement, programs)
            wall = time.perf_counter() - t0
    build = sum(
        s.duration_s for s in session.spans if s.name == "sim.timeline.capture"
    )
    return build / wall


def _disarmed_check_ns(samples=500_000):
    """Per-call cost of the disarmed tline.capturing() check."""
    assert not tline.capturing()
    t0 = time.perf_counter()
    for _ in range(samples):
        tline.capturing()
    return (time.perf_counter() - t0) / samples * 1e9


@scenario(
    "sim.timeline_overhead",
    description="power-timeline capture cost on a 4096-rank execute, armed and disarmed",
    tier="quick",
    repeats=2,
    setup=_execute_state,
    metrics=(
        MetricSpec(
            "armed_overhead_fraction",
            direction="lower",
            help="median interleaved (armed - bare) execute diff / bare median; budget 0.03",
        ),
        MetricSpec(
            "capture_build_fraction",
            direction="lower",
            help="sim.timeline.capture span (build + record) over armed execute wall",
        ),
        MetricSpec(
            "disarmed_check_ns",
            unit="ns",
            direction="lower",
            help="per-call cost of tline.capturing() with no sink attached",
        ),
    ),
)
def timeline_overhead_scenario(state):
    executor, placement, programs = state
    return {
        "armed_overhead_fraction": _paired_overhead_fraction(
            executor, placement, programs
        ),
        "capture_build_fraction": _capture_span_fraction(
            executor, placement, programs
        ),
        "disarmed_check_ns": _disarmed_check_ns(samples=200_000),
    }


def test_armed_capture_under_3_percent_at_4096_ranks():
    executor, placement, programs = _execute_state()
    overhead = _paired_overhead_fraction(executor, placement, programs)
    build = _capture_span_fraction(executor, placement, programs)
    print(
        f"\n4096-rank execute: paired-median overhead {100 * overhead:.3f}%, "
        f"direct build span {100 * build:.3f}%"
    )
    assert overhead < 0.03, (
        f"armed timeline capture {100 * overhead:.2f}% exceeds the 3% budget"
    )
    assert build < 0.03, (
        f"timeline build span {100 * build:.2f}% exceeds the 3% budget"
    )


def test_disarmed_capture_is_a_single_none_check():
    """Disarmed product: one check per execute against the execute wall."""
    executor, placement, programs = _execute_state()
    t0 = time.perf_counter()
    executor.execute(placement, programs)
    wall = time.perf_counter() - t0
    per_check_s = _disarmed_check_ns(samples=200_000) / 1e9
    fraction = per_check_s / wall
    print(f"\ndisarmed check: {per_check_s * 1e9:.0f} ns -> {100 * fraction:.6f}%")
    assert fraction < 0.005


def test_timeline_capture_does_not_change_results():
    """The invariance half: armed and bare runs are bit-identical.

    Fresh executors for each run — the meter's noise stream advances per
    execute, so comparing two runs of one executor would differ anyway.
    """
    _, placement, programs = _execute_state()
    bare = ClusterExecutor(placement.cluster, rng=7).execute(placement, programs)
    with tline.collecting() as captured:
        armed = ClusterExecutor(placement.cluster, rng=7).execute(
            placement, programs
        )
    assert len(captured) == 1
    assert armed.true_energy_j == bare.true_energy_j
    assert armed.measured_energy_j == bare.measured_energy_j
    assert armed.makespan_s == bare.makespan_s
    np.testing.assert_array_equal(armed.trace.watts, bare.trace.watts)
