"""Sharded-scheduler bench: coordination must stay a rounding error.

Three claims pinned here:

1. The scheduler's bookkeeping (keying, shard planning, the stealing
   loop, journal events) adds **< 10%** over the plain runner for the
   same inline serial campaign.  The two sides are measured
   *interleaved* (runner, scheduler, runner, scheduler, ...) and
   best-of-REPEATS so machine drift hits both denominators equally — on
   deliberately tiny jobs an un-paired wall-clock ratio swings by more
   than the budget.
2. A warm resume — every job recovered from the shared cache, nothing
   re-executed — costs a bounded fraction of the cold campaign: replaying
   the journal plus N cache probes, not N executions.
3. The crash-resume round trip (cold run killed mid-flight, then resumed
   to completion) re-executes only what the crash actually lost, so its
   total work stays close to one uninterrupted run.  Reported as a ratio
   of the uninterrupted wall time; the budget leaves room for one
   re-executed job (the in-flight casualty) plus replay.
"""

import dataclasses
import tempfile
import time
from pathlib import Path

from repro import journal as jrnl
from repro.campaign import CampaignRunner, ResultCache, ShardedCampaignScheduler
from repro.campaign.jobs import CampaignJob, ClusterRef
from repro.experiments import PAPER_CONFIG
from repro.perfwatch import MetricSpec, scenario

JOB_COUNT = 30
REPEATS = 3

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


def _jobs():
    return [
        CampaignJob(
            job_id=f"shard-{i:02d}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=1),
            core_counts=(8,),
            seed=i,
            config=QUICK_CONFIG,
        )
        for i in range(JOB_COUNT)
    ]


def _paired_seconds(repeats: int = 5) -> tuple:
    """Interleaved best-of wall times: (plain runner, sharded scheduler)."""
    best_runner = best_scheduler = float("inf")
    for _ in range(repeats):
        jobs = _jobs()
        t0 = time.perf_counter()
        CampaignRunner(workers=1).run(jobs, label="sharded-bench")
        best_runner = min(best_runner, time.perf_counter() - t0)
        jobs = _jobs()
        t0 = time.perf_counter()
        ShardedCampaignScheduler(workers=1, shards=4).run(jobs, label="sharded-bench")
        best_scheduler = min(best_scheduler, time.perf_counter() - t0)
    return best_runner, best_scheduler


def _cold_and_warm_resume_seconds() -> tuple:
    """(cold journaled run, warm resume of it) — warm recovers everything."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        path = Path(tmp) / "run.jsonl"
        jobs = _jobs()
        t0 = time.perf_counter()
        ShardedCampaignScheduler(workers=1, cache=cache, journal=path).run(
            jobs, label="sharded-bench"
        )
        cold = time.perf_counter() - t0
        best_warm = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = ShardedCampaignScheduler(
                workers=1, cache=cache, journal=path
            ).run(jobs, label="sharded-bench", resume=True)
            best_warm = min(best_warm, time.perf_counter() - t0)
        assert result.manifest["sharding"]["jobs_recovered"] == JOB_COUNT
    return cold, best_warm


def _crash_resume_roundtrip_seconds() -> float:
    """Kill the cold run mid-campaign, resume it; total wall of both legs."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        path = Path(tmp) / "run.jsonl"
        jobs = _jobs()
        # Crash roughly halfway through the event stream: run.start +
        # JOB_COUNT scheduled + 1 shard.planned, then ~half the per-job
        # started/completed/stored triplets.
        crash_after = 2 + JOB_COUNT + 3 * (JOB_COUNT // 2)
        crasher = jrnl.CrashingJournalWriter(
            path, crash_after=crash_after, label="sharded-bench"
        )
        t0 = time.perf_counter()
        try:
            ShardedCampaignScheduler(workers=1, cache=cache, journal=crasher).run(
                jobs, label="sharded-bench"
            )
            raise AssertionError("drill writer never crashed")
        except jrnl.SimulatedCrash:
            pass
        result = ShardedCampaignScheduler(workers=1, cache=cache, journal=path).run(
            jobs, label="sharded-bench", resume=True
        )
        elapsed = time.perf_counter() - t0
        assert result.manifest["sharding"]["resumed"] is True
    return elapsed


@scenario(
    "campaign.sharded_resume",
    description="sharded-scheduler coordination cost and crash-resume economics",
    tier="quick",
    repeats=2,
    metrics=(
        MetricSpec(
            "scheduler_overhead_fraction",
            direction="lower",
            help="(sharded inline wall / plain runner wall) - 1; budget is 0.10",
        ),
        MetricSpec(
            "warm_resume_fraction",
            direction="lower",
            help="warm resume (all jobs recovered) wall / cold campaign wall",
        ),
        MetricSpec(
            "crash_roundtrip_ratio",
            direction="lower",
            help="wall of crash-at-half + resume, relative to one uninterrupted run",
        ),
    ),
)
def sharded_resume_scenario():
    runner_s, scheduler_s = _paired_seconds()
    cold_s, warm_s = _cold_and_warm_resume_seconds()
    roundtrip_s = _crash_resume_roundtrip_seconds()
    return {
        "scheduler_overhead_fraction": scheduler_s / runner_s - 1.0,
        "warm_resume_fraction": warm_s / cold_s,
        "crash_roundtrip_ratio": roundtrip_s / cold_s,
    }


def test_scheduler_overhead_under_10_percent():
    runner_s, scheduler_s = _paired_seconds()
    overhead = scheduler_s / runner_s - 1.0
    print(
        f"\n{JOB_COUNT}-config campaign: runner {runner_s:.3f} s, "
        f"sharded scheduler {scheduler_s:.3f} s -> {100 * overhead:.2f}% overhead"
    )
    assert overhead < 0.10, (
        f"scheduler overhead {100 * overhead:.2f}% exceeds the 10% budget"
    )


def test_warm_resume_is_cheaper_than_rerunning():
    cold_s, warm_s = _cold_and_warm_resume_seconds()
    fraction = warm_s / cold_s
    print(
        f"\ncold campaign {cold_s:.3f} s, warm resume {warm_s:.3f} s "
        f"-> {100 * fraction:.1f}% of cold"
    )
    # Replay + N probes must beat N executions by a wide margin.
    assert fraction < 0.5, (
        f"warm resume costs {100 * fraction:.0f}% of a cold run — "
        "recovery is not recovering"
    )
