"""Ablation: breadth-first vs packed process placement.

The paper's sweeps imply breadth-first (round-robin) placement.  This bench
quantifies what the alternative would have done to the suite's performance
and power at half occupancy: packing 64 ranks onto 4 of Fire's 8 nodes

* drives HPL into packing contention (each used node holds 16 ranks), and
* halves the memory channels STREAM can stream through,

while the wall-plug meter still charges for all 8 nodes.
"""

import pytest

from repro.benchmarks import HPLBenchmark, StreamBenchmark
from repro.cluster import presets
from repro.perfmodels import HPLModel, StreamModel
from repro.perfwatch import MetricSpec, scenario
from repro.sim import ClusterExecutor


@pytest.fixture(scope="module")
def fire():
    return presets.fire()


@scenario(
    "ablation.placement",
    description="packed vs breadth-first HPL at 64 ranks (contention penalty)",
    tier="quick",
    metrics=(
        MetricSpec(
            "packed_spread_hpl_ratio",
            direction="higher",
            help="packed GFLOPS over breadth-first GFLOPS (1.0 = no penalty)",
        ),
    ),
)
def placement_scenario():
    fire = presets.fire()
    packed = run_hpl_at_packing(fire, 16)
    spread = run_hpl_at_packing(fire, 8)
    return {
        "packed_spread_hpl_ratio": packed.performance_flops / spread.performance_flops
    }


def run_hpl_at_packing(fire, ranks_per_node):
    model = HPLModel(
        cluster=fire,
        comm_volume_factor=2.0,
        contention_threshold=4,
        contention_slope=1.5,
    )
    return model.predict(36288, 64, ranks_per_node=ranks_per_node)


def test_hpl_placement_ablation(benchmark, fire):
    packed = benchmark(run_hpl_at_packing, fire, 16)
    spread = run_hpl_at_packing(fire, 8)
    print(
        f"\nHPL @ 64 ranks: breadth-first {spread.performance_flops / 1e9:.1f} GFLOPS"
        f" vs packed {packed.performance_flops / 1e9:.1f} GFLOPS"
        f" ({packed.performance_flops / spread.performance_flops:.2f}x)"
    )
    # packing 16 ranks/node costs real performance through contention
    assert packed.performance_flops < 0.9 * spread.performance_flops


def run_stream_at_packing(fire, ranks_per_node):
    return StreamModel(cluster=fire).predict(64, ranks_per_node=ranks_per_node)


def test_stream_placement_ablation(benchmark, fire):
    packed = benchmark(run_stream_at_packing, fire, 16)
    spread = run_stream_at_packing(fire, 8)
    print(
        f"\nSTREAM @ 64 ranks: breadth-first {spread.aggregate_bandwidth / 1e9:.1f} GB/s"
        f" vs packed {packed.aggregate_bandwidth / 1e9:.1f} GB/s"
    )
    # packed saturates 4 nodes' channels and leaves 4 nodes' worth unused;
    # spread keeps every channel set in play, so it always wins ...
    assert packed.aggregate_bandwidth < spread.aggregate_bandwidth
    # ... and packed is pinned exactly at 4 nodes' sustained bandwidth
    assert packed.aggregate_bandwidth == pytest.approx(
        4 * fire.node.sustained_memory_bandwidth
    )


def test_placement_ee_ablation(benchmark, fire):
    """Same ranks, same matrix, different placement: power is nearly a
    wash (4 fully-hot nodes + 4 idle vs 8 half-hot nodes), but packing
    stretches the compute phase through contention, so energy efficiency
    clearly favors spreading on this machine.

    Note the build is spread-timed; the packed run reuses its programs, so
    the packed record isolates the *power* side of the placement choice
    while the model's contention factor captures the performance side.
    """
    from repro.perfmodels import HPLModel
    from repro.sim import packed_placement

    executor = ClusterExecutor(fire, rng=7)
    hpl = HPLBenchmark(
        sizing=("fixed", 20160),
        rounds=2,
        comm_volume_factor=2.0,
        contention_threshold=4,
        contention_slope=1.5,
    )

    def run_packed():
        built = hpl.build(executor, 64)
        placement = packed_placement(fire, 64)
        return executor.execute(placement, built.programs)

    packed_record = benchmark(run_packed)
    spread_result = hpl.run(executor, 64)
    model = HPLModel(
        cluster=fire, comm_volume_factor=2.0,
        contention_threshold=4, contention_slope=1.5,
    )
    packed_perf = model.predict(20160, 64, ranks_per_node=16).performance_flops
    packed_ee = packed_perf / packed_record.measured_mean_power_w
    spread_ee = spread_result.energy_efficiency
    print(
        f"\n@ 64 ranks: spread {spread_result.power_w:.0f} W / "
        f"{spread_ee / 1e6:.1f} MFLOPS/W vs packed "
        f"{packed_record.measured_mean_power_w:.0f} W / {packed_ee / 1e6:.1f} MFLOPS/W"
    )
    # power within a few percent either way ...
    assert packed_record.measured_mean_power_w == pytest.approx(
        spread_result.power_w, rel=0.05
    )
    # ... but contention costs real efficiency
    assert packed_ee < 0.95 * spread_ee
