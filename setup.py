"""Shim for environments whose setuptools predates PEP 660 editable wheels."""
from setuptools import setup

setup()
