"""Ranking (Eq. 1, Green500-style) and report-rendering tests."""

import pytest

from repro.core import (
    ReferenceSet,
    TGICalculator,
    format_ranking,
    format_suite_result,
    format_tgi_result,
    rank_systems,
    spec_rating,
)
from repro.exceptions import MetricError


@pytest.fixture
def reference(quick_suite, small_executor, fire_small):
    ref = quick_suite.run(small_executor, fire_small.total_cores)
    return ReferenceSet.from_suite_result(ref, system_name="mini-ref")


class TestSpecRating:
    def test_eq1(self):
        assert spec_rating(250.0, 10.0) == pytest.approx(25.0)

    def test_reference_rates_one(self):
        assert spec_rating(100.0, 100.0) == pytest.approx(1.0)

    def test_rejects_zero_time(self):
        with pytest.raises(MetricError):
            spec_rating(100.0, 0.0)


class TestRankSystems:
    def test_descending_by_tgi(self, quick_suite, executor, small_executor, fire_small, reference):
        calc = TGICalculator(reference)
        entries = [
            ("Fire-full", quick_suite.run(executor, 128)),
            ("Fire-small", quick_suite.run(small_executor, fire_small.total_cores)),
        ]
        ranking = rank_systems(entries, calc)
        assert [r.rank for r in ranking] == [1, 2]
        assert ranking[0].value >= ranking[1].value

    def test_reference_itself_ranks_with_tgi_one(self, quick_suite, small_executor, fire_small, reference):
        calc = TGICalculator(reference)
        # A *re-measured* run of the reference system: the meter's noise
        # stream advances between runs, so TGI lands at 1 only within the
        # instrument's sample-noise budget.
        entries = [("mini-ref", quick_suite.run(small_executor, fire_small.total_cores))]
        ranking = rank_systems(entries, calc)
        assert ranking[0].value == pytest.approx(1.0, rel=5e-3)

    def test_duplicate_names_rejected(self, quick_suite, small_executor, fire_small, reference):
        result = quick_suite.run(small_executor, fire_small.total_cores)
        with pytest.raises(MetricError):
            rank_systems([("x", result), ("x", result)], TGICalculator(reference))

    def test_empty_rejected(self, reference):
        with pytest.raises(MetricError):
            rank_systems([], TGICalculator(reference))


class TestReports:
    def test_suite_table_contains_all_benchmarks(self, quick_suite, executor):
        result = quick_suite.run(executor, 32)
        text = format_suite_result(result)
        for name in result.names:
            assert name in text

    def test_suite_table_title_override(self, quick_suite, executor):
        result = quick_suite.run(executor, 32)
        assert "Table I" in format_suite_result(result, title="Table I: x")

    def test_tgi_report_contains_value_and_weights(self, quick_suite, executor, reference):
        result = quick_suite.run(executor, 32)
        tgi = TGICalculator(reference).compute(result)
        text = format_tgi_result(tgi)
        assert f"{tgi.value:.4f}" in text
        assert "REE" in text and "Weight" in text

    def test_ranking_report(self, quick_suite, executor, small_executor, fire_small, reference):
        calc = TGICalculator(reference)
        entries = [
            ("A", quick_suite.run(executor, 64)),
            ("B", quick_suite.run(small_executor, 16)),
        ]
        text = format_ranking(rank_systems(entries, calc))
        assert "A" in text and "B" in text and "Rank" in text
