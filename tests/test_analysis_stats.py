"""Central-tendency tests."""

import numpy as np
import pytest

from repro.analysis import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    weighted_arithmetic_mean,
    weighted_geometric_mean,
    weighted_harmonic_mean,
)
from repro.exceptions import MetricError


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)

    def test_geometric(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_harmonic(self):
        assert harmonic_mean([1, 2, 4]) == pytest.approx(3 / (1 + 0.5 + 0.25))

    def test_am_gm_hm_inequality(self):
        values = [1.5, 7.2, 3.3, 9.9, 0.4]
        am = arithmetic_mean(values)
        gm = geometric_mean(values)
        hm = harmonic_mean(values)
        assert am > gm > hm

    def test_equal_values_collapse(self):
        for mean in (arithmetic_mean, geometric_mean, harmonic_mean):
            assert mean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_geometric_rejects_non_positive(self):
        with pytest.raises(MetricError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_rejects_non_positive(self):
        with pytest.raises(MetricError):
            harmonic_mean([1.0, -2.0])

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            arithmetic_mean([])


class TestWeightedMeans:
    def test_weighted_arithmetic_eq9(self):
        assert weighted_arithmetic_mean([10, 20], [0.25, 0.75]) == pytest.approx(17.5)

    def test_uniform_weights_recover_plain_means(self):
        values = [2.0, 8.0, 5.0]
        w = [1 / 3] * 3
        assert weighted_arithmetic_mean(values, w) == pytest.approx(arithmetic_mean(values))
        assert weighted_geometric_mean(values, w) == pytest.approx(geometric_mean(values))
        assert weighted_harmonic_mean(values, w) == pytest.approx(harmonic_mean(values))

    def test_degenerate_weight_selects_value(self):
        values = [3.0, 7.0]
        assert weighted_arithmetic_mean(values, [0.0, 1.0]) == pytest.approx(7.0)
        assert weighted_geometric_mean(values, [1.0, 0.0]) == pytest.approx(3.0)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(MetricError):
            weighted_arithmetic_mean([1, 2], [0.4, 0.4])

    def test_weight_length_mismatch(self):
        with pytest.raises(MetricError):
            weighted_arithmetic_mean([1, 2, 3], [0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(MetricError):
            weighted_arithmetic_mean([1, 2], [-0.5, 1.5])

    def test_weighted_am_gm_hm_inequality(self):
        values = [1.0, 9.0, 4.0]
        w = [0.2, 0.3, 0.5]
        am = weighted_arithmetic_mean(values, w)
        gm = weighted_geometric_mean(values, w)
        hm = weighted_harmonic_mean(values, w)
        assert am > gm > hm
