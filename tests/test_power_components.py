"""Component power-model tests."""

import pytest

from repro.cluster import presets
from repro.exceptions import PowerModelError
from repro.power import (
    AcceleratorPowerModel,
    CPUPowerModel,
    MemoryPowerModel,
    NICPowerModel,
    NodeUtilization,
    StoragePowerModel,
)


@pytest.fixture
def fire_node():
    return presets.fire().node


class TestNodeUtilization:
    def test_idle_is_all_zero(self):
        idle = NodeUtilization.idle()
        assert idle.cpu_active_fraction == 0.0
        assert idle.memory == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(PowerModelError):
            NodeUtilization(cpu_active_fraction=1.2)
        with pytest.raises(PowerModelError):
            NodeUtilization(memory=-0.1)


class TestCPUPowerModel:
    def test_idle_power(self, fire_node):
        model = CPUPowerModel(spec=fire_node.cpu, sockets=2)
        assert model.power(NodeUtilization.idle()) == pytest.approx(2 * 24.0)

    def test_full_load_hits_tdp(self, fire_node):
        model = CPUPowerModel(spec=fire_node.cpu, sockets=2)
        full = NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=1.0)
        assert model.power(full) == pytest.approx(2 * 85.0)

    def test_awake_floor_charges_stalled_cores(self, fire_node):
        """A busy-but-stalled core must burn more than idle but less than
        a compute-bound one (the mechanism behind HPL vs STREAM power)."""
        model = CPUPowerModel(spec=fire_node.cpu, sockets=2, awake_floor=0.45)
        stalled = NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=0.0)
        compute = NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=1.0)
        idle = model.power(NodeUtilization.idle())
        assert idle < model.power(stalled) < model.power(compute)
        # floor fraction of the dynamic range
        dyn = model.power(compute) - idle
        assert model.power(stalled) - idle == pytest.approx(0.45 * dyn)

    def test_monotone_in_active_fraction(self, fire_node):
        model = CPUPowerModel(spec=fire_node.cpu, sockets=2)
        powers = [
            model.power(NodeUtilization(cpu_active_fraction=f, cpu_intensity=0.8))
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert powers == sorted(powers)

    def test_rejects_zero_sockets(self, fire_node):
        with pytest.raises(PowerModelError):
            CPUPowerModel(spec=fire_node.cpu, sockets=0)


class TestLinearComponents:
    def test_memory_spans_envelope(self, fire_node):
        model = MemoryPowerModel(spec=fire_node.memory, sockets=2)
        lo = model.power(NodeUtilization.idle())
        hi = model.power(NodeUtilization(memory=1.0))
        assert lo == pytest.approx(2 * fire_node.memory.idle_watts)
        assert hi == pytest.approx(2 * fire_node.memory.active_watts)

    def test_memory_halfway(self, fire_node):
        model = MemoryPowerModel(spec=fire_node.memory, sockets=2)
        lo = model.power(NodeUtilization.idle())
        hi = model.power(NodeUtilization(memory=1.0))
        mid = model.power(NodeUtilization(memory=0.5))
        assert mid == pytest.approx(0.5 * (lo + hi))

    def test_storage_spans_envelope(self, fire_node):
        model = StoragePowerModel(spec=fire_node.storage)
        assert model.power(NodeUtilization.idle()) == pytest.approx(5.0)
        assert model.power(NodeUtilization(storage=1.0)) == pytest.approx(9.5)

    def test_nic_spans_envelope(self, fire_node):
        model = NICPowerModel(spec=fire_node.nic)
        assert model.power(NodeUtilization.idle()) == pytest.approx(
            fire_node.nic.idle_watts
        )
        assert model.power(NodeUtilization(nic=1.0)) == pytest.approx(
            fire_node.nic.active_watts
        )

    def test_accelerator_spans_envelope(self):
        node = presets.gpu_cluster().node
        model = AcceleratorPowerModel(spec=node.accelerators[0])
        assert model.power(NodeUtilization.idle()) == pytest.approx(30.0)
        assert model.power(NodeUtilization(accelerator=1.0)) == pytest.approx(225.0)
