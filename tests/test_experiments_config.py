"""Experiment configuration and shared-context tests."""

import pytest

from repro.benchmarks import HPLBenchmark
from repro.experiments import (
    PAPER_CONFIG,
    ExperimentConfig,
    SharedContext,
    build_executor,
    build_reference,
    build_suite,
)


class TestExperimentConfig:
    def test_paper_sweep_points(self):
        assert PAPER_CONFIG.core_counts == (16, 32, 48, 64, 80, 96, 112, 128)

    def test_calibrated_constants_pinned(self):
        """These values are the calibration contract with EXPERIMENTS.md."""
        assert PAPER_CONFIG.hpl_problem_size == 36288
        assert PAPER_CONFIG.hpl_comm_volume_factor == 2.0
        assert PAPER_CONFIG.hpl_contention_threshold == 4
        assert PAPER_CONFIG.hpl_contention_slope == 1.5
        assert PAPER_CONFIG.stream_intensity == 0.4

    def test_clusters_match_paper(self):
        assert PAPER_CONFIG.fire_cluster().total_cores == 128
        assert PAPER_CONFIG.reference_cluster().total_cores == 1024

    def test_suite_members_and_order(self):
        suite = build_suite(PAPER_CONFIG)
        assert suite.names == ["HPL", "STREAM", "IOzone"]

    def test_sut_hpl_is_strong_scaled(self):
        suite = build_suite(PAPER_CONFIG)
        hpl = suite.benchmarks[0]
        assert isinstance(hpl, HPLBenchmark)
        assert hpl.sizing == ("fixed", PAPER_CONFIG.hpl_problem_size)

    def test_reference_hpl_is_memory_sized(self):
        suite = build_suite(PAPER_CONFIG, reference=True)
        hpl = suite.benchmarks[0]
        assert hpl.sizing == ("memory", PAPER_CONFIG.hpl_reference_memory_fraction)

    def test_executors_bind_correct_clusters(self):
        assert build_executor(PAPER_CONFIG).cluster.name == "Fire"
        assert build_executor(PAPER_CONFIG, reference=True).cluster.name == "SystemG"

    def test_custom_config_round_trips(self):
        config = ExperimentConfig(core_counts=(8, 16), hpl_problem_size=4480)
        suite = build_suite(config)
        assert suite.benchmarks[0].sizing == ("fixed", 4480)

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.hpl_problem_size = 1


class TestBuildReference:
    def test_reference_covers_suite(self):
        small = ExperimentConfig(
            core_counts=(8,),
            hpl_problem_size=4480,
            stream_target_seconds=5,
            iozone_target_seconds=5,
        )

        # shrink the reference machine for speed by monkeypatching via a
        # derived config object is not possible (frozen); run the real one
        # only in the session-scoped fixture — here just check the API on
        # the full config is exposed correctly via SharedContext laziness.
        context = SharedContext(small)
        assert context.config is small


class TestSharedContextLaziness:
    def test_nothing_computed_at_construction(self):
        context = SharedContext(PAPER_CONFIG)
        assert context._reference is None
        assert context._sweep is None

    def test_reference_cached(self, paper_context):
        assert paper_context.reference is paper_context.reference

    def test_sweep_cached(self, paper_context):
        assert paper_context.sweep is paper_context.sweep

    def test_reference_suite_result_consistent(self, paper_context):
        ref = paper_context.reference
        result = paper_context.reference_suite_result
        for r in result:
            assert ref.efficiency(r.benchmark) == pytest.approx(r.energy_efficiency)

    def test_sweep_covers_configured_points(self, paper_context):
        assert paper_context.sweep.cores == list(PAPER_CONFIG.core_counts)
