"""Correlation tests (Eq. 17)."""

import numpy as np
import pytest
import scipy.stats

from repro.analysis import correlation_matrix, pearson, spearman
from repro.exceptions import MetricError


class TestPearson:
    def test_perfect_positive(self):
        x = [1, 2, 3, 4]
        assert pearson(x, [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(50)
        y = 0.3 * x + rng.standard_normal(50)
        ours = pearson(x, y)
        theirs = scipy.stats.pearsonr(x, y).statistic
        assert ours == pytest.approx(theirs, rel=1e-12)

    def test_shift_and_scale_invariant(self):
        x = [1.0, 5.0, 2.0, 8.0]
        y = [0.2, 0.9, 0.4, 0.7]
        assert pearson(x, y) == pytest.approx(pearson([10 * v + 3 for v in x], y))

    def test_constant_series_rejected(self):
        with pytest.raises(MetricError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(MetricError):
            pearson([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(MetricError):
            pearson([1], [2])

    def test_non_finite_rejected(self):
        with pytest.raises(MetricError):
            pearson([1, np.nan, 3], [1, 2, 3])

    def test_clamped_to_unit_interval(self):
        x = np.linspace(0, 1, 10)
        assert -1.0 <= pearson(x, x) <= 1.0


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = [1, 2, 3, 4, 5]
        y = [v**3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_matches_scipy_with_ties(self):
        x = [1, 2, 2, 3, 5, 5, 7]
        y = [2, 1, 4, 4, 6, 8, 8]
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y).statistic
        assert ours == pytest.approx(theirs, rel=1e-12)

    def test_reversal_is_minus_one(self):
        assert spearman([1, 2, 3, 4], [9, 7, 5, 3]) == pytest.approx(-1.0)


class TestCorrelationMatrix:
    def test_table_two_shape(self):
        series = {"IOzone": [1, 2, 3, 4], "HPL": [1, 3, 2, 1]}
        targets = {"am": [1, 2, 3, 4], "energy": [2, 3, 3, 2]}
        matrix = correlation_matrix(series, targets)
        assert set(matrix) == {"IOzone", "HPL"}
        assert set(matrix["IOzone"]) == {"am", "energy"}
        assert matrix["IOzone"]["am"] == pytest.approx(1.0)

    def test_spearman_method(self):
        series = {"a": [1, 2, 3]}
        targets = {"t": [1, 8, 27]}
        matrix = correlation_matrix(series, targets, method="spearman")
        assert matrix["a"]["t"] == pytest.approx(1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(MetricError):
            correlation_matrix({"a": [1, 2]}, {"b": [1, 2]}, method="kendall")


class TestTieHandling:
    """Midrank ties from memoized identical systems (fleet rankings)."""

    def test_heavy_ties_match_scipy(self):
        # Memoized fleets: long runs of identical scores.
        x = [1.0] * 40 + [2.0] * 40 + [3.0] * 20
        y = [5.0] * 30 + [4.0] * 50 + [6.0] * 20
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y).statistic
        assert np.isfinite(ours)
        assert ours == pytest.approx(theirs, rel=1e-12)

    def test_midranks_match_scipy_rankdata(self):
        from repro.analysis.correlation import _ranks

        rng = np.random.default_rng(3)
        values = rng.integers(0, 5, size=200).astype(float)
        ours = _ranks(values)
        theirs = scipy.stats.rankdata(values, method="average")
        assert np.array_equal(ours, theirs)

    def test_single_tie_run_plus_one(self):
        from repro.analysis.correlation import _ranks

        # [7, 7, 7, 9]: the 7s share midrank 2, the 9 gets 4.
        assert _ranks(np.array([7.0, 7.0, 7.0, 9.0])).tolist() == [2, 2, 2, 4]

    def test_all_distinct_is_permutation(self):
        from repro.analysis.correlation import _ranks

        rng = np.random.default_rng(11)
        values = rng.permutation(50).astype(float)
        assert sorted(_ranks(values).tolist()) == list(range(1, 51))

    def test_constant_series_raises_not_nan(self):
        # A fully-memoized fleet (every score identical) has no rank order;
        # the statistic must refuse loudly instead of returning NaN.
        with pytest.raises(MetricError):
            spearman([4.0] * 10, list(range(10)))
        with pytest.raises(MetricError):
            spearman(list(range(10)), [4.0] * 10)

    def test_two_level_ties_still_defined(self):
        rho = spearman([1, 1, 2, 2], [2, 2, 1, 1])
        assert rho == pytest.approx(-1.0)
