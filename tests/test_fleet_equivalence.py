"""Property-based equivalence: the vectorized fleet path vs the scalar
oracle, across all four eras (hypothesis).

This is the fleet layer's analogue of ``test_engine_equivalence.py``: the
scalar per-system path is the semantic definition, the batched path must
match it within 1e-9 relative on every score, energy, and the final rank
order (ties broken deterministically by name).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.generator import generate_fleet
from repro.experiments import PAPER_CONFIG
from repro.fleet import FLEET_BENCHMARKS, FleetRankingPipeline, evaluate_fleet

QUICK = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2.0,
    iozone_target_seconds=2.0,
)

_FIELDS = ("performance", "time_s", "power_w", "energy_j", "efficiency")

eras = st.sampled_from(("2008", "2011", "2015", "2021"))


class TestScoreEquivalence:
    @given(era=eras, count=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_scalar(self, era, count, seed):
        fleet = generate_fleet(count, era=era, seed=seed)
        batched = evaluate_fleet(fleet, QUICK)
        scalar = evaluate_fleet(fleet, QUICK, path="reference")
        for b in FLEET_BENCHMARKS:
            for field in _FIELDS:
                got = getattr(batched.scores[b], field)
                want = getattr(scalar.scores[b], field)
                assert np.allclose(got, want, rtol=1e-9, atol=0.0), (b, field)

    @given(era=eras, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_capability_reference_sizing_matches(self, era, seed):
        fleet = generate_fleet(2, era=era, seed=seed)
        batched = evaluate_fleet(fleet, QUICK, reference=True)
        scalar = evaluate_fleet(fleet, QUICK, path="reference", reference=True)
        for b in FLEET_BENCHMARKS:
            assert np.allclose(
                batched.scores[b].efficiency,
                scalar.scores[b].efficiency,
                rtol=1e-9,
                atol=0.0,
            )


class TestRankEquivalence:
    @given(era=eras, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_rank_order_identical(self, era, seed):
        """Same fleet, both analytic paths: identical list, 1e-9 TGI."""
        fleet = generate_fleet(8, era=era, seed=seed)
        fast = FleetRankingPipeline(config=QUICK, path="batched").rank(fleet)
        slow = FleetRankingPipeline(config=QUICK, path="reference").rank(fleet)
        assert [r.name for r in fast.rows] == [r.name for r in slow.rows]
        for a, b in zip(fast.rows, slow.rows):
            assert a.tgi == pytest.approx(b.tgi, rel=1e-9)
            assert a.flops_rank == b.flops_rank
            assert a.weakest == b.weakest

    def test_clone_ties_break_by_name(self):
        """Memoized identical systems: deterministic, name-ordered ranks."""
        spec = generate_fleet(1, era="2011", seed=4)[0]
        clones = [
            dataclasses.replace(spec, name=f"clone-{i}", topology=spec.topology)
            for i in (3, 0, 2, 1)
        ]
        ranking = FleetRankingPipeline(config=QUICK).rank(clones)
        assert [r.name for r in ranking.rows] == [
            "clone-0",
            "clone-1",
            "clone-2",
            "clone-3",
        ]
        assert len({r.tgi for r in ranking.rows}) == 1
        assert [r.tgi_rank for r in ranking.rows] == [1, 2, 3, 4]
