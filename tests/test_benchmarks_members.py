"""Suite-member benchmark tests (HPL, STREAM, IOzone through the simulator)."""

import pytest

from repro.benchmarks import HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.exceptions import BenchmarkError


class TestHPLBenchmark:
    def test_reported_performance_matches_model(self, executor):
        bench = HPLBenchmark(sizing=("fixed", 8960), rounds=2)
        result = bench.run(executor, 32)
        # simulated makespan equals predicted time, so GFLOPS match
        assert result.time_s == pytest.approx(result.details["predicted_time_s"], rel=1e-6)
        assert result.performance == pytest.approx(
            result.details["flops"] / result.time_s, rel=1e-6
        )

    def test_metric_label(self, executor):
        result = HPLBenchmark(sizing=("fixed", 4480), rounds=1).run(executor, 16)
        assert result.metric_label == "FLOP/s"
        assert result.benchmark == "HPL"

    def test_memory_sizing_mode(self, small_executor):
        bench = HPLBenchmark(sizing=("memory", 0.05), rounds=1)
        result = bench.run(small_executor, 8)
        assert result.details["problem_size"] > 0

    def test_time_sizing_mode(self, small_executor):
        bench = HPLBenchmark(sizing=("time", 30.0), rounds=1)
        result = bench.run(small_executor, 8)
        assert result.time_s == pytest.approx(30.0, rel=0.2)

    def test_invalid_sizing_mode(self):
        with pytest.raises(BenchmarkError):
            HPLBenchmark(sizing=("magic", 1))

    def test_fixed_n_below_block_rejected_at_build(self, executor):
        bench = HPLBenchmark(sizing=("fixed", 100))
        with pytest.raises(BenchmarkError):
            bench.build(executor, 16)

    def test_strong_scaling_ee_is_peaked(self, executor):
        """The calibrated Fig-2 configuration must yield a rise-then-fall
        energy-efficiency curve — the paper's qualitative HPL shape."""
        bench = HPLBenchmark(
            sizing=("fixed", 36288),
            rounds=2,
            comm_volume_factor=2.0,
            contention_threshold=4,
            contention_slope=1.5,
        )
        ee = [bench.run(executor, p).energy_efficiency for p in (16, 64, 128)]
        assert ee[1] > ee[0]  # rises
        assert ee[1] > ee[2]  # rolls off

    def test_power_rises_with_ranks(self, executor):
        bench = HPLBenchmark(sizing=("fixed", 8960), rounds=1)
        p16 = bench.run(executor, 16).power_w
        p128 = bench.run(executor, 128).power_w
        assert p128 > p16


class TestStreamBenchmark:
    def test_reported_bandwidth_matches_model(self, executor, fire):
        from repro.perfmodels import StreamModel

        bench = StreamBenchmark(iterations=50)
        result = bench.run(executor, 32)
        model = StreamModel(cluster=fire)
        expected = model.predict(32, iterations=50).aggregate_bandwidth
        assert result.performance == pytest.approx(expected, rel=1e-6)

    def test_target_seconds_controls_runtime(self, executor):
        result = StreamBenchmark(target_seconds=20).run(executor, 64)
        assert result.time_s == pytest.approx(20.0, rel=0.1)

    def test_intensity_changes_power(self, executor):
        hot = StreamBenchmark(target_seconds=15, intensity=0.9).run(executor, 64)
        cool = StreamBenchmark(target_seconds=15, intensity=0.2).run(executor, 64)
        assert hot.power_w > cool.power_w

    def test_invalid_intensity(self):
        with pytest.raises(BenchmarkError):
            StreamBenchmark(intensity=1.5)

    def test_bandwidth_saturates_at_full_node(self, executor, fire):
        """Aggregate MB/s must stop growing once every socket is saturated."""
        bench = StreamBenchmark(target_seconds=10)
        almost = bench.run(executor, 112).performance
        full = bench.run(executor, 128).performance
        assert full == pytest.approx(almost, rel=0.01)


class TestIOzoneBenchmark:
    def test_scale_is_node_count(self, executor):
        result = IOzoneBenchmark(file_bytes=32e9).run(executor, 4)
        assert result.scale == 4
        assert result.record.num_ranks == 4

    def test_reported_bandwidth_matches_model(self, executor, fire):
        from repro.perfmodels import IOzoneModel

        result = IOzoneBenchmark(file_bytes=64e9).run(executor, 8)
        expected = IOzoneModel(cluster=fire).predict(8, file_bytes=64e9)
        assert result.performance == pytest.approx(expected.aggregate_bandwidth, rel=1e-6)

    def test_scale_beyond_nodes_rejected(self, executor):
        with pytest.raises(BenchmarkError):
            IOzoneBenchmark(file_bytes=1e9).build(executor, 9)

    def test_ee_rises_with_nodes(self, executor):
        """Figure 4's shape: idle-cluster power is amortized over more
        writing nodes."""
        bench = IOzoneBenchmark(target_seconds=15)
        ee = [bench.run(executor, k).energy_efficiency for k in (1, 4, 8)]
        assert ee[0] < ee[1] < ee[2]

    def test_power_ordering_vs_compute(self, executor):
        io = IOzoneBenchmark(target_seconds=15).run(executor, 8)
        hpl = HPLBenchmark(sizing=("fixed", 8960), rounds=1).run(executor, 128)
        assert io.power_w < hpl.power_w

    def test_invalid_file_bytes(self):
        with pytest.raises(BenchmarkError):
            IOzoneBenchmark(file_bytes=0)


class TestRenderingInvariance:
    def test_hpl_rounds_do_not_change_measurements(self, executor):
        """The compute/comm super-step count is a rendering choice: it must
        not move the reported performance, time, or (noise-free) energy."""
        from repro.power.meter import PERFECT_METER, WallPlugMeter
        from repro.sim import ClusterExecutor

        fire = executor.cluster
        results = []
        for rounds in (1, 8):
            exact = ClusterExecutor(fire, meter=WallPlugMeter(PERFECT_METER, rng=0))
            bench = HPLBenchmark(sizing=("fixed", 8960), rounds=rounds)
            results.append(bench.run(exact, 64))
        a, b = results
        assert a.performance == pytest.approx(b.performance, rel=1e-9)
        assert a.time_s == pytest.approx(b.time_s, rel=1e-9)
        assert a.record.true_energy_j == pytest.approx(b.record.true_energy_j, rel=1e-9)

    def test_stream_rounds_do_not_change_measurements(self, executor):
        from repro.power.meter import PERFECT_METER, WallPlugMeter
        from repro.sim import ClusterExecutor

        fire = executor.cluster
        results = []
        for rounds in (1, 6):
            exact = ClusterExecutor(fire, meter=WallPlugMeter(PERFECT_METER, rng=0))
            bench = StreamBenchmark(iterations=50, rounds=rounds)
            results.append(bench.run(exact, 64))
        a, b = results
        assert a.performance == pytest.approx(b.performance, rel=1e-9)
        assert a.record.true_energy_j == pytest.approx(b.record.true_energy_j, rel=1e-9)
