"""Golden regression tests for the calibrated campaign.

These pin the headline numbers of the reproduction (with tolerances wide
enough for legitimate floating-point churn but tight enough to catch a
silent recalibration).  If a deliberate model change moves these numbers,
update EXPERIMENTS.md alongside this file.
"""

import pytest

from repro.experiments.tables import run_table1_reference, run_table2_pcc
from repro.experiments.tgi_curves import run_fig5_tgi_am, run_fig6_tgi_weighted


class TestGoldenTable2:
    """The reproduction's contract with the paper."""

    @pytest.fixture(scope="class")
    def table2(self, paper_context):
        return run_table2_pcc(paper_context)

    def test_golden_am_column(self, table2):
        assert table2.pcc("IOzone", "arithmetic-mean") == pytest.approx(0.991, abs=0.01)
        assert table2.pcc("STREAM", "arithmetic-mean") == pytest.approx(0.992, abs=0.01)
        assert table2.pcc("HPL", "arithmetic-mean") == pytest.approx(0.581, abs=0.02)

    def test_golden_energy_column(self, table2):
        assert table2.pcc("HPL", "energy") == pytest.approx(0.632, abs=0.02)

    def test_golden_power_column(self, table2):
        assert table2.pcc("HPL", "power") == pytest.approx(0.620, abs=0.02)


class TestGoldenFig5:
    def test_golden_tgi_endpoints(self, paper_context):
        fig5 = run_fig5_tgi_am(paper_context)
        values = fig5.series.values
        assert values[0] == pytest.approx(0.503, abs=0.01)
        assert values[-1] == pytest.approx(2.351, abs=0.03)

    def test_golden_full_scale_ree(self, paper_context):
        fig5 = run_fig5_tgi_am(paper_context)
        ree = fig5.series.results[-1].ree
        assert ree["HPL"] == pytest.approx(0.370, abs=0.01)
        assert ree["STREAM"] == pytest.approx(3.189, abs=0.05)
        assert ree["IOzone"] == pytest.approx(3.493, abs=0.05)


class TestGoldenFig6:
    """Figure 6: the weighted-TGI curves on the calibrated Fire sweep."""

    @pytest.fixture(scope="class")
    def fig6(self, paper_context):
        return run_fig6_tgi_weighted(paper_context)

    def test_golden_time_weighted_endpoints(self, fig6):
        values = fig6.series_by_weighting["time"].values
        assert values[0] == pytest.approx(0.332, abs=0.01)
        assert values[-1] == pytest.approx(1.367, abs=0.02)

    def test_golden_energy_weighted_endpoints(self, fig6):
        values = fig6.series_by_weighting["energy"].values
        assert values[0] == pytest.approx(0.330, abs=0.01)
        assert values[-1] == pytest.approx(1.156, abs=0.02)

    def test_golden_power_weighted_endpoints(self, fig6):
        values = fig6.series_by_weighting["power"].values
        assert values[0] == pytest.approx(0.502, abs=0.01)
        assert values[-1] == pytest.approx(2.105, abs=0.03)

    def test_weighting_order_at_full_scale(self, fig6):
        """The paper's discussion of Figure 6: energy and power weights
        track the energy-dominant HPL, pulling TGI below the equal-weight
        curve; at 128 cores the ordering is AM > power > time > energy."""
        at_full = {
            name: series.values[-1]
            for name, series in fig6.series_by_weighting.items()
        }
        assert (
            at_full["arithmetic-mean"]
            > at_full["power"]
            > at_full["time"]
            > at_full["energy"]
        )

    def test_all_weightings_share_the_sweep_grid(self, fig6, paper_context):
        assert list(fig6.cores) == paper_context.sweep.cores
        for series in fig6.series_by_weighting.values():
            assert len(series) == len(fig6.cores)


class TestGoldenTable1:
    def test_golden_reference_numbers(self, paper_context):
        suite = run_table1_reference(paper_context).suite_result
        hpl = suite["HPL"]
        assert hpl.performance == pytest.approx(9.42e12, rel=0.02)
        assert hpl.power_w == pytest.approx(41_730, rel=0.02)
        assert suite["STREAM"].performance == pytest.approx(1.05e12, rel=0.02)
        assert suite["IOzone"].performance == pytest.approx(14.15e9, rel=0.02)


class TestGoldenFigureShapes:
    def test_hpl_peak_location(self, paper_context):
        """The calibrated HPL EE curve peaks at 64 processes."""
        ee = paper_context.sweep.efficiency_series("HPL")
        cores = paper_context.sweep.cores
        assert cores[int(ee.argmax())] == 64

    def test_stream_saturation_point(self, paper_context):
        """STREAM bandwidth stops growing between 112 and 128 processes."""
        perf = paper_context.sweep.series("STREAM", "performance")
        assert perf[-1] == pytest.approx(perf[-2], rel=0.01)

    def test_iozone_linearity(self, paper_context):
        """Aggregate IOzone bandwidth is exactly linear in node count."""
        perf = paper_context.sweep.series("IOzone", "performance")
        assert perf[-1] == pytest.approx(8 * perf[0], rel=1e-6)


class TestGoldenCapability:
    def test_capability_numbers(self, paper_context):
        """The memory-sized HPL capability run on the calibrated Fire
        (discussed against the paper's OCR-damaged quote in
        EXPERIMENTS.md)."""
        from repro.experiments.capability import run_fire_capability

        cap = run_fire_capability(paper_context)
        assert cap.rmax_flops == pytest.approx(346.9e9, rel=0.02)
        assert cap.efficiency == pytest.approx(0.295, abs=0.01)
        assert cap.mflops_per_watt == pytest.approx(156.0, rel=0.03)
        assert cap.problem_size == 165760
