"""Extension tests: GPU systems, DVFS-derived specs, centre-wide cooling —
the paper's Section VI future-work items realized."""

import dataclasses

import pytest

from repro.benchmarks import BenchmarkSuite, HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import ClusterSpec, presets
from repro.core import ReferenceSet, TGICalculator
from repro.perfmodels import HPLModel
from repro.power import FixedPUECooling
from repro.sim import ClusterExecutor


class TestGPUHPL:
    def test_accelerators_raise_hpl_rate(self):
        gpu = presets.gpu_cluster()
        with_acc = HPLModel(cluster=gpu, use_accelerators=True)
        without = HPLModel(cluster=gpu, use_accelerators=False)
        n = 20160
        p = gpu.total_cores
        assert (
            with_acc.predict(n, p).performance_flops
            > 2 * without.predict(n, p).performance_flops
        )

    def test_gpu_benchmark_run_reports_hybrid_rate(self):
        gpu = presets.gpu_cluster()
        executor = ClusterExecutor(gpu, rng=11)
        result = HPLBenchmark(sizing=("fixed", 20160), rounds=2).run(
            executor, gpu.total_cores
        )
        # 4 nodes x 2 M2050 sustain ~2.4 TFLOPS alone; CPU adds ~400 GFLOPS
        assert result.performance > 1e12

    def test_gpu_power_reflects_card_draw(self):
        gpu = presets.gpu_cluster()
        executor = ClusterExecutor(gpu, rng=11)
        hpl = HPLBenchmark(sizing=("fixed", 20160), rounds=2).run(executor, gpu.total_cores)
        stream = StreamBenchmark(target_seconds=10).run(executor, gpu.total_cores)
        # HPL lights up the GPUs; STREAM leaves them idle
        assert hpl.power_w > stream.power_w + 4 * 2 * 100  # >> 100 W per card extra

    def test_gpu_system_tgi_beats_cpu_peer(self):
        """The GPU system wins TGI against its CPU-only twin when the suite
        is HPL-weighted — the kind of question Section VI poses."""
        gpu = presets.gpu_cluster()
        cpu_twin = ClusterSpec(
            name="CPUonly",
            node=dataclasses.replace(gpu.node, accelerators=()),
            num_nodes=gpu.num_nodes,
        )
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 13440), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
            ]
        )
        cpu_res = suite.run(ClusterExecutor(cpu_twin, rng=2), cpu_twin.total_cores)
        gpu_res = suite.run(ClusterExecutor(gpu, rng=2), gpu.total_cores)
        ref = ReferenceSet.from_suite_result(cpu_res, system_name="CPUonly")
        from repro.core import CustomWeights

        calc = TGICalculator(
            ref, weighting=CustomWeights({"HPL": 0.8, "STREAM": 0.1, "IOzone": 0.1})
        )
        assert calc.compute(gpu_res).value > calc.compute(cpu_res).value


class TestCenterWideTGI:
    def test_common_pue_cancels_in_ree(self, quick_suite, small_executor, fire_small):
        """If both systems sit in the same facility, centre-wide TGI equals
        IT-level TGI (PUE cancels in Eq. 3)."""
        result = quick_suite.run(small_executor, fire_small.total_cores)
        pue = FixedPUECooling(pue=1.9)
        it_ref = ReferenceSet.from_suite_result(result)
        facility_ref = ReferenceSet(
            {r.benchmark: r.performance / pue.facility_watts(r.power_w) for r in result}
        )
        facility_ee = {
            r.benchmark: r.performance / pue.facility_watts(r.power_w) for r in result
        }
        for name, ee in facility_ee.items():
            assert facility_ref.relative(name, ee) == pytest.approx(
                it_ref.relative(name, result[name].energy_efficiency)
            )

    def test_worse_facility_lowers_centre_wide_tgi(self, quick_suite, small_executor, fire_small):
        """Different facilities: the machine in the leakier data centre
        scores a proportionally lower centre-wide TGI."""
        result = quick_suite.run(small_executor, fire_small.total_cores)
        ref = ReferenceSet.from_suite_result(result)  # reference at PUE 1.0
        leaky = FixedPUECooling(pue=2.0)
        facility_ee = {
            r.benchmark: r.performance / leaky.facility_watts(r.power_w)
            for r in result
        }
        ree = {name: ref.relative(name, ee) for name, ee in facility_ee.items()}
        for value in ree.values():
            assert value == pytest.approx(0.5)
