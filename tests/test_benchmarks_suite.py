"""BenchmarkSuite / SuiteResult / ScalingSweep tests."""

import pytest

from repro.benchmarks import (
    BenchmarkSuite,
    HPLBenchmark,
    IOzoneBenchmark,
    ScalingSweep,
    StreamBenchmark,
)
from repro.exceptions import BenchmarkError


class TestBenchmarkSuite:
    def test_names_in_order(self, quick_suite):
        assert quick_suite.names == ["HPL", "STREAM", "IOzone"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchmarkSuite([StreamBenchmark(), StreamBenchmark()])

    def test_empty_suite_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchmarkSuite([])

    def test_scale_for_iozone_maps_cores_to_nodes(self, quick_suite, executor):
        iozone = quick_suite.benchmarks[2]
        assert quick_suite.scale_for(iozone, 16, executor) == 1
        assert quick_suite.scale_for(iozone, 64, executor) == 4
        assert quick_suite.scale_for(iozone, 128, executor) == 8

    def test_scale_for_others_is_cores(self, quick_suite, executor):
        hpl = quick_suite.benchmarks[0]
        assert quick_suite.scale_for(hpl, 48, executor) == 48

    def test_run_produces_all_members(self, quick_suite, executor):
        result = quick_suite.run(executor, 32)
        assert result.names == ["HPL", "STREAM", "IOzone"]
        assert result.cores == 32


class TestSuiteResult:
    @pytest.fixture
    def suite_result(self, quick_suite, executor):
        return quick_suite.run(executor, 32)

    def test_getitem(self, suite_result):
        assert suite_result["STREAM"].benchmark == "STREAM"

    def test_getitem_missing(self, suite_result):
        with pytest.raises(KeyError):
            suite_result["LINPACK"]

    def test_len_and_iter(self, suite_result):
        assert len(suite_result) == 3
        assert len(list(suite_result)) == 3

    def test_convenience_maps_consistent(self, suite_result):
        for r in suite_result:
            name = r.benchmark
            assert suite_result.performances[name] == r.performance
            assert suite_result.powers_w[name] == r.power_w
            assert suite_result.times_s[name] == r.time_s
            assert suite_result.energies_j[name] == r.energy_j
            assert suite_result.efficiencies[name] == r.energy_efficiency

    def test_energy_is_power_times_time(self, suite_result):
        for r in suite_result:
            assert r.energy_j == pytest.approx(r.power_w * r.time_s)

    def test_efficiency_definition(self, suite_result):
        for r in suite_result:
            assert r.energy_efficiency == pytest.approx(r.performance / r.power_w)


class TestScalingSweep:
    def test_sweep_collects_all_points(self, quick_suite, executor):
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        assert sweep.cores == [16, 32]
        assert len(sweep) == 2

    def test_series_extraction(self, quick_suite, executor):
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        perf = sweep.series("STREAM", "performance")
        assert perf.shape == (2,)
        assert perf[1] > perf[0]

    def test_efficiency_series(self, quick_suite, executor):
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        ee = sweep.efficiency_series("IOzone")
        assert (ee > 0).all()

    def test_unsorted_core_counts_rejected(self, quick_suite):
        with pytest.raises(BenchmarkError):
            ScalingSweep(quick_suite, [32, 16])

    def test_duplicate_core_counts_rejected(self, quick_suite):
        with pytest.raises(BenchmarkError):
            ScalingSweep(quick_suite, [16, 16])

    def test_empty_core_counts_rejected(self, quick_suite):
        with pytest.raises(BenchmarkError):
            ScalingSweep(quick_suite, [])
