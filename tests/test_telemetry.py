"""Telemetry subsystem: spans, metrics, sessions, attribution, invariance.

The load-bearing guarantees:

* span nesting/ordering is exact and thread-aware;
* histogram bucketing is deterministic (fixed boundaries, ``le`` semantics);
* the Prometheus text exposition is stable (golden test);
* pool workers ship spans/metrics back and the parent absorbs them;
* telemetry NEVER perturbs results — payloads and manifest fingerprints
  are identical with a session active or not.
"""

import dataclasses
import json
import threading

import pytest

from repro import telemetry as tele
from repro.exceptions import ReproError
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS_S,
    MetricsRegistry,
    Span,
    TelemetrySession,
    Tracer,
    attribution_to_dicts,
    campaign_attribution,
    render_span_tree,
    slowest_spans,
    span_from_dict,
    span_to_dict,
    suite_attribution,
)


@pytest.fixture(autouse=True)
def no_ambient_session():
    """Every test starts and ends with telemetry disabled."""
    tele.deactivate()
    yield
    tele.deactivate()


class TestSpans:
    def test_nesting_records_parentage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id < second.span_id  # allocation order

    def test_spans_record_monotonic_times(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.t_end is not None and b.t_end is not None
        assert a.t_start <= a.t_end <= b.t_start <= b.t_end
        assert a.duration_s >= 0

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("work", cores=8) as span:
            span.set(result="ok")
        assert span.attrs == {"cores": 8, "result": "ok"}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.t_end is not None  # closed despite the raise
        assert span.attrs["error"] == "ValueError"

    def test_threads_nest_independently(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(f"outer-{tag}") as outer:
                with tracer.span(f"inner-{tag}") as inner:
                    seen[tag] = (outer.span_id, inner.parent_id)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # each thread's inner span parents to its own outer span
        for outer_id, inner_parent in seen.values():
            assert inner_parent == outer_id
        assert len(tracer.spans) == 8

    def test_dict_round_trip(self):
        span = Span(
            span_id=3, parent_id=1, name="x", t_start=0.5, t_end=0.75,
            process="worker-9", thread="T1", attrs={"k": "v"},
        )
        assert span_from_dict(span_to_dict(span)) == span

    def test_absorb_remaps_reparents_and_shifts(self):
        parent = Tracer()
        with parent.span("pool") as pool:
            pass
        worker = Tracer(process="worker-1")
        with worker.span("job"):
            with worker.span("step"):
                pass
        before = len(parent.spans)
        parent.absorb(worker.as_dicts(), parent_id=pool.span_id, offset_s=10.0)
        absorbed = parent.spans[before:]
        job = next(s for s in absorbed if s.name == "job")
        step = next(s for s in absorbed if s.name == "step")
        assert job.parent_id == pool.span_id  # roots re-parented
        assert step.parent_id == job.span_id  # internal links preserved
        all_ids = [s.span_id for s in parent.spans]
        assert len(set(all_ids)) == len(all_ids)  # re-identified, no clashes
        assert job.t_start >= 10.0  # clock shifted
        assert job.process == "worker-1"

    def test_null_tracer_records_nothing(self):
        with tele.NULL_TRACER.span("anything", k=1) as span:
            span.set(more=2)
        assert tele.NULL_TRACER.spans == []
        assert not tele.NULL_TRACER.enabled


class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "Total hits.")
        c.inc()
        c.inc(2, kind="a")
        c.inc(3, kind="a")
        data = reg.as_dict()["hits_total"]["samples"]
        assert {"labels": {}, "value": 1.0} in data
        assert {"labels": {"kind": "a"}, "value": 5.0} in data

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.counter("c", "h").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("temp", "Temperature.")
        g.set(1.0, site="x")
        g.set(7.0, site="x")
        (sample,) = reg.as_dict()["temp"]["samples"]
        assert sample["value"] == 7.0

    def test_histogram_bucketing_is_deterministic(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # le semantics: a value equal to a boundary lands in that bucket
        assert h.cumulative_buckets(()) == [
            ("0.1", 2),
            ("1", 4),
            ("10", 5),
            ("+Inf", 6),
        ]
        assert h.count() == 6
        assert h.sum() == pytest.approx(106.65)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.histogram("h", "x", buckets=(2.0, 1.0))

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing", "x")
        with pytest.raises(ReproError):
            reg.gauge("thing", "x")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", "x") is reg.counter("c")

    def test_prometheus_golden(self):
        reg = MetricsRegistry()
        reg.counter("tgi_runs_total", "Total runs.").inc(3, benchmark="HPL")
        reg.gauge("tgi_power_watts", "Watts.").set(450.5, cluster="Fire")
        h = reg.histogram("tgi_wait_seconds", "Wait time.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(2.0)
        expected = (
            "# HELP tgi_power_watts Watts.\n"
            "# TYPE tgi_power_watts gauge\n"
            'tgi_power_watts{cluster="Fire"} 450.5\n'
            "# HELP tgi_runs_total Total runs.\n"
            "# TYPE tgi_runs_total counter\n"
            'tgi_runs_total{benchmark="HPL"} 3\n'
            "# HELP tgi_wait_seconds Wait time.\n"
            "# TYPE tgi_wait_seconds histogram\n"
            'tgi_wait_seconds_bucket{le="0.1"} 1\n'
            'tgi_wait_seconds_bucket{le="1"} 2\n'
            'tgi_wait_seconds_bucket{le="+Inf"} 3\n'
            "tgi_wait_seconds_sum 2.55\n"
            "tgi_wait_seconds_count 3\n"
        )
        assert reg.to_prometheus() == expected

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("c", "x").inc(n)
            reg.histogram("h", "x", buckets=(1.0,)).observe(0.5)
            reg.gauge("g", "x").set(float(n))
        a.merge(b.state())
        (c_sample,) = a.as_dict()["c"]["samples"]
        assert c_sample["value"] == 3.0
        (h_sample,) = a.as_dict()["h"]["samples"]
        assert h_sample["count"] == 2
        (g_sample,) = a.as_dict()["g"]["samples"]
        assert g_sample["value"] == 2.0  # gauges: incoming wins

    def test_as_dict_is_json_serializable_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total", "x").inc()
        reg.counter("a_total", "x").inc()
        data = reg.as_dict()
        assert list(data) == sorted(data)
        json.dumps(data)  # must not raise


class TestSession:
    def test_ambient_helpers_collect_when_active(self):
        with tele.use(TelemetrySession(label="t")) as session:
            with tele.span("phase", step=1):
                tele.count("tgi_benchmark_runs_total", benchmark="HPL")
                tele.gauge("tgi_benchmark_power_watts", 450.0, benchmark="HPL")
        assert [s.name for s in session.spans] == ["phase"]
        families = session.metrics.as_dict()
        assert families["tgi_benchmark_runs_total"]["samples"]

    def test_helpers_are_noops_when_disabled(self):
        handle = tele.span("ignored")
        with handle as span:
            span.set(k=1)
        tele.count("tgi_cache_puts_total")
        tele.gauge("tgi_benchmark_power_watts", 1.0)
        tele.observe("tgi_span_duration_seconds", 0.1)
        assert tele.current() is None

    def test_span_durations_feed_histogram(self):
        with tele.use(TelemetrySession()) as session:
            with tele.span("timed"):
                pass
        hist = session.metrics.as_dict()["tgi_span_duration_seconds"]
        (sample,) = hist["samples"]
        assert sample["count"] == 1
        assert sample["labels"] == {"name": "timed"}

    def test_double_activation_rejected(self):
        with tele.use(TelemetrySession()):
            with pytest.raises(ReproError):
                tele.activate(TelemetrySession())

    def test_traced_decorator(self):
        @tele.traced(name="my.op", flavor="test")
        def compute(x):
            return x * 2

        with tele.use(TelemetrySession()) as session:
            assert compute(21) == 42
        (span,) = session.spans
        assert span.name == "my.op"
        assert span.attrs["flavor"] == "test"
        assert compute(1) == 2  # still works with telemetry off

    def test_export_is_json_round_trippable(self):
        with tele.use(TelemetrySession(label="exp")) as session:
            with tele.span("s"):
                pass
        export = json.loads(json.dumps(session.export()))
        assert export["telemetry_version"] == tele.TELEMETRY_VERSION
        assert export["label"] == "exp"
        assert [s["name"] for s in export["spans"]] == ["s"]

    def test_default_buckets_are_fixed(self):
        # bucket boundaries are part of the exposition contract; changing
        # them silently breaks dashboards and the golden tests
        assert DEFAULT_TIME_BUCKETS_S[0] == 0.0001
        assert DEFAULT_TIME_BUCKETS_S[-1] == 60.0
        assert list(DEFAULT_TIME_BUCKETS_S) == sorted(DEFAULT_TIME_BUCKETS_S)


class TestClockEpochs:
    def test_export_carries_absolute_utc_epoch(self):
        import time

        before = time.time()
        with tele.use(TelemetrySession(label="epoch")) as session:
            pass
        after = time.time()
        export = session.export()
        assert before <= export["epoch_unix"] <= after
        assert export["epoch_utc"].endswith("Z") and "T" in export["epoch_utc"]
        assert json.dumps(export)  # both epochs are JSON-serializable

    def test_epochs_are_captured_together(self):
        tracer = Tracer()
        # perf epoch and unix epoch are read back to back at construction;
        # a span started immediately after sits within a second of both
        with tracer.span("s"):
            pass
        (span,) = tracer.spans
        assert 0 <= span.t_start < 1.0
        assert tracer.epoch_unix > 0


class TestProfilingHooks:
    def test_profile_disabled_by_default(self):
        with tele.use(TelemetrySession()) as session:
            with tele.span("outer"):
                with tele.span("inner"):
                    pass
        assert all("profile" not in s.attrs for s in session.spans)

    def test_profile_attaches_hotspots_to_outermost_span_only(self):
        with tele.use(TelemetrySession(profile=True, profile_top=4)) as session:
            with tele.span("outer"):
                with tele.span("inner"):
                    sum(i * i for i in range(5000))
        spans = {s.name: s for s in session.spans}
        assert "profile" in spans["outer"].attrs
        assert "profile" not in spans["inner"].attrs
        rows = spans["outer"].attrs["profile"]
        assert 1 <= len(rows) <= 4
        assert set(rows[0]) == {"func", "calls", "tottime_s", "cumtime_s"}
        # cumulative-time ordering, descending
        cum = [row["cumtime_s"] for row in rows]
        assert cum == sorted(cum, reverse=True)

    def test_sibling_top_level_spans_each_get_a_profile(self):
        with tele.use(TelemetrySession(profile=True)) as session:
            with tele.span("first"):
                pass
            with tele.span("second"):
                pass
        assert all("profile" in s.attrs for s in session.spans)

    def test_profiled_export_is_json_round_trippable(self):
        with tele.use(TelemetrySession(profile=True)) as session:
            with tele.span("s"):
                sum(range(1000))
        export = json.loads(json.dumps(session.export()))
        (span,) = export["spans"]
        assert isinstance(span["attrs"]["profile"], list)

    def test_profile_callable_helper(self):
        from repro.telemetry import profile_callable

        result, hotspots = profile_callable(lambda n: sum(range(n)), 10_000)
        assert result == sum(range(10_000))
        assert hotspots and all("cumtime_s" in row for row in hotspots)


QUICK_CONFIG = None


def _quick_config():
    global QUICK_CONFIG
    if QUICK_CONFIG is None:
        from repro.experiments import PAPER_CONFIG

        QUICK_CONFIG = dataclasses.replace(
            PAPER_CONFIG,
            core_counts=(16, 32),
            hpl_problem_size=4480,
            hpl_rounds=2,
            stream_target_seconds=5,
            iozone_target_seconds=5,
        )
    return QUICK_CONFIG


def _run_campaign(workers=1, session=None):
    from repro.campaign import CampaignRunner
    from repro.campaign.jobs import paper_jobs

    runner = CampaignRunner(workers=workers)
    jobs = paper_jobs(_quick_config())
    if session is None:
        return runner.run(jobs, label="t")
    with tele.use(session):
        return runner.run(jobs, label="t")


class TestCampaignIntegration:
    def test_serial_campaign_traces_every_job_phase(self):
        session = TelemetrySession()
        result = _run_campaign(workers=1, session=session)
        names = {s.name for s in session.spans}
        assert {
            "campaign.run",
            "job.serialize",
            "job.cache_probe",
            "job.execute",
            "job.store",
            "sweep.point",
            "suite.run",
            "benchmark.run",
            "sim.engine.run",
        } <= names
        statuses = session.metrics.as_dict()["tgi_campaign_jobs_total"]["samples"]
        assert sum(s["value"] for s in statuses) == len(result)

    def test_pool_workers_ship_spans_back(self):
        session = TelemetrySession()
        _run_campaign(workers=2, session=session)
        pool = next(s for s in session.spans if s.name == "campaign.pool")
        worker_spans = [
            s for s in session.spans if s.process.startswith("worker-")
        ]
        assert worker_spans, "no worker spans absorbed"
        roots = [s for s in worker_spans if s.parent_id == pool.span_id]
        assert len(roots) == 2  # one job.execute root per job
        assert all(s.name == "job.execute" for s in roots)
        # worker metrics merged: benchmark runs counted from both workers
        runs = session.metrics.as_dict()["tgi_benchmark_runs_total"]["samples"]
        assert sum(s["value"] for s in runs) == 9  # 3 benchs x (1 ref + 2 points)

    def test_fingerprints_invariant_under_telemetry(self):
        plain = _run_campaign(workers=1)
        traced = _run_campaign(workers=1, session=TelemetrySession())
        assert (
            plain.manifest["fingerprint"] == traced.manifest["fingerprint"]
        )
        plain_payloads = json.dumps(
            [o.payload for o in plain], sort_keys=True
        )
        traced_payloads = json.dumps(
            [o.payload for o in traced], sort_keys=True
        )
        assert plain_payloads == traced_payloads

    def test_manifest_telemetry_block_is_volatile(self):
        from repro.campaign.manifest import manifest_core

        traced = _run_campaign(workers=1, session=TelemetrySession())
        assert traced.manifest["telemetry"]["span_count"] > 0
        assert "telemetry" not in manifest_core(traced.manifest)

    def test_cache_stats_unified_across_result_and_cache(self, tmp_path):
        from repro.campaign import CampaignRunner, ResultCache
        from repro.campaign.jobs import paper_jobs

        cache = ResultCache(tmp_path / "cache")
        jobs = paper_jobs(_quick_config())
        CampaignRunner(cache=cache).run(jobs, label="cold")
        warm = CampaignRunner(cache=cache).run(jobs, label="warm")
        assert warm.cache_stats == {
            "jobs": 2,
            "attempts": 2,
            "hits": 2,
            "misses": 0,
            "invalidations": 0,
            "hit_rate": 1.0,
        }
        assert warm.cache_hits == 2
        assert warm.hit_rate == 1.0
        # the cache's own lifetime accounting stays consistent
        assert cache.cache_stats["hits"] == 2
        assert cache.cache_stats["misses"] == 2  # from the cold run
        assert warm.manifest["cache_run"] == warm.cache_stats


class TestAttribution:
    def test_weights_sum_to_one_per_family(self):
        session = TelemetrySession()
        result = _run_campaign(workers=1, session=session)
        rows = campaign_attribution(result)
        assert rows
        by_run = {}
        for row in rows:
            by_run.setdefault((row.job_id, row.cores), []).append(row)
        for run_rows in by_run.values():
            assert sum(r.time_weight for r in run_rows) == pytest.approx(1.0)
            assert sum(r.energy_weight for r in run_rows) == pytest.approx(1.0)
            assert sum(r.power_weight for r in run_rows) == pytest.approx(1.0)

    def test_attribution_matches_core_weights(self):
        from repro.core.weights import EnergyWeights, PowerWeights, TimeWeights

        result = _run_campaign(workers=1)
        suite_result = result.suite("reference")
        rows = suite_attribution(suite_result, job_id="reference", cluster="SystemG")
        w_time = TimeWeights().weights(suite_result)
        w_energy = EnergyWeights().weights(suite_result)
        w_power = PowerWeights().weights(suite_result)
        for row in rows:
            assert row.time_weight == w_time[row.benchmark]
            assert row.energy_weight == w_energy[row.benchmark]
            assert row.power_weight == w_power[row.benchmark]

    def test_attribution_dicts_are_json_ready(self):
        result = _run_campaign(workers=1)
        rows = attribution_to_dicts(campaign_attribution(result))
        json.dumps(rows)
        assert rows[0]["job_id"] == "reference"


class TestRendering:
    def test_tree_renders_nesting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        tree = render_span_tree(tracer.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert "├─ child-a" in lines[1]
        assert "└─ child-b" in lines[2]

    def test_tree_accepts_dict_spans(self):
        tracer = Tracer()
        with tracer.span("solo"):
            pass
        assert "solo" in render_span_tree(tracer.as_dicts())

    def test_slowest_spans_sorted_desc(self):
        spans = [
            Span(span_id=i, parent_id=None, name=f"s{i}", t_start=0.0, t_end=end)
            for i, end in enumerate((0.3, 0.1, 0.2))
        ]
        assert [s.name for s in slowest_spans(spans, top=2)] == ["s0", "s2"]
