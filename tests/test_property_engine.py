"""Property-based tests on the discrete-event engine (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RankProgram, SimulationEngine, barrier, compute_phase
from repro.sim.workload import PhaseKind

durations = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def synchronized_programs(draw):
    """Random per-rank phase durations arranged into barrier-separated
    super-steps shared by all ranks."""
    num_ranks = draw(st.integers(min_value=1, max_value=6))
    num_steps = draw(st.integers(min_value=1, max_value=4))
    table = [
        [draw(durations) for _ in range(num_steps)] for _ in range(num_ranks)
    ]
    programs = []
    for rank in range(num_ranks):
        program = RankProgram(rank=rank)
        for step in range(num_steps):
            program.append(compute_phase(table[rank][step]))
            program.append(barrier())
        programs.append(program)
    return programs, table


class TestEngineProperties:
    @given(data=synchronized_programs())
    @settings(max_examples=80, deadline=None)
    def test_makespan_is_sum_of_step_maxima(self, data):
        """With a barrier after every step, the makespan is exactly the sum
        over steps of the slowest rank's duration — an independent oracle
        for the event engine."""
        programs, table = data
        engine = SimulationEngine(programs)
        intervals = engine.run()
        expected = sum(max(row[s] for row in table) for s in range(len(table[0])))
        assert engine.makespan(intervals) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(data=synchronized_programs())
    @settings(max_examples=80, deadline=None)
    def test_busy_plus_wait_equals_makespan(self, data):
        """Every rank's intervals tile [0, makespan] exactly (no lost or
        double-counted time)."""
        programs, _ = data
        engine = SimulationEngine(programs)
        intervals = engine.run()
        makespan = engine.makespan(intervals)
        for per_rank in intervals:
            covered = sum(iv.duration for iv in per_rank)
            assert covered == pytest.approx(makespan, rel=1e-9, abs=1e-9)

    @given(data=synchronized_programs())
    @settings(max_examples=80, deadline=None)
    def test_wait_only_for_non_slowest(self, data):
        """In every super-step, the slowest rank never waits."""
        programs, table = data
        engine = SimulationEngine(programs)
        intervals = engine.run()
        num_steps = len(table[0])
        for s in range(num_steps):
            slowest = max(range(len(table)), key=lambda r: table[r][s])
            step_max = table[slowest][s]
            # total wait of the slowest rank in this step must be ~0 unless
            # there is a tie (another rank equally slow)
            ties = sum(1 for row in table if row[s] == step_max)
            if ties == 1:
                waits = [
                    iv
                    for iv in intervals[slowest]
                    if iv.phase.kind is PhaseKind.WAIT
                ]
                # slowest overall may wait in OTHER steps; check it computes
                # through this step's barrier without waiting right before it
                # (hard to index directly; assert global wait < sum of other
                # steps' gaps)
                total_wait = sum(iv.duration for iv in waits)
                others = sum(
                    max(row[t] for row in table) - table[slowest][t]
                    for t in range(num_steps)
                )
                assert total_wait == pytest.approx(others, rel=1e-9, abs=1e-6)

    @given(data=synchronized_programs())
    @settings(max_examples=40, deadline=None)
    def test_run_is_deterministic(self, data):
        programs, _ = data
        a = SimulationEngine(programs).run()
        b = SimulationEngine(programs).run()
        assert [
            [(iv.t_start, iv.t_end) for iv in per_rank] for per_rank in a
        ] == [[(iv.t_start, iv.t_end) for iv in per_rank] for per_rank in b]


class TestPlacementProperties:
    """Placement invariants over arbitrary rank counts (hypothesis)."""

    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    @_given(p=_st.integers(min_value=1, max_value=128))
    @_settings(max_examples=60, deadline=None)
    def test_breadth_first_counts_sum_and_balance(self, p):
        from repro.cluster import presets
        from repro.sim import breadth_first_placement

        fire = presets.fire()
        placement = breadth_first_placement(fire, p)
        counts = [placement.ranks_per_node(n) for n in range(8)]
        assert sum(counts) == p
        # round-robin balance: max and min differ by at most 1
        assert max(counts) - min(counts) <= 1

    @_given(p=_st.integers(min_value=1, max_value=128))
    @_settings(max_examples=60, deadline=None)
    def test_packed_fills_prefix(self, p):
        from repro.cluster import presets
        from repro.sim import packed_placement

        fire = presets.fire()
        placement = packed_placement(fire, p)
        counts = [placement.ranks_per_node(n) for n in range(8)]
        assert sum(counts) == p
        # all-full nodes precede the partial node, which precedes empties
        seen_partial = False
        for c in counts:
            if c == 16 and not seen_partial:
                continue
            if 0 < c < 16:
                assert not seen_partial
                seen_partial = True
            elif c == 0:
                seen_partial = True
            else:
                assert c == 0 or not seen_partial

    @_given(p=_st.integers(min_value=1, max_value=128))
    @_settings(max_examples=60, deadline=None)
    def test_policies_agree_on_totals(self, p):
        from repro.cluster import presets
        from repro.sim import breadth_first_placement, packed_placement

        fire = presets.fire()
        a = breadth_first_placement(fire, p)
        b = packed_placement(fire, p)
        assert a.num_ranks == b.num_ranks == p
