"""Documentation-drift tests.

Cheap guards that keep the prose honest: every module the architecture
docs name must exist, the calibration constants quoted in EXPERIMENTS.md
must match the code, and the repo ships the documents the README promises.
"""

import re
from pathlib import Path

import pytest

from repro.experiments import PAPER_CONFIG

ROOT = Path(__file__).resolve().parent.parent


class TestDocFilesExist:
    @pytest.mark.parametrize(
        "relpath",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "CONTRIBUTING.md",
            "CHANGELOG.md",
            "docs/power_model.md",
            "docs/performance_models.md",
            "docs/metric_theory.md",
            "docs/simulator.md",
            "docs/campaign_runner.md",
            "docs/telemetry.md",
            "docs/fault_tolerance.md",
            "docs/observability.md",
            "docs/distributed_campaigns.md",
        ],
    )
    def test_exists_and_nonempty(self, relpath):
        path = ROOT / relpath
        assert path.exists(), relpath
        assert len(path.read_text()) > 500


class TestDesignInventoryMatchesCode:
    def test_every_named_module_exists(self):
        """Module paths mentioned in DESIGN.md's inventory must exist."""
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`repro/([\w/]+\.py)`", design):
            path = ROOT / "src" / "repro" / match.group(1)
            assert path.exists(), f"DESIGN.md names missing module {match.group(1)}"

    def test_experiment_ids_documented(self):
        from repro.experiments import EXPERIMENTS

        design = (ROOT / "DESIGN.md").read_text()
        experiments_md = (ROOT / "EXPERIMENTS.md").read_text()
        for exp_id in EXPERIMENTS:
            assert exp_id in design + experiments_md, f"{exp_id} undocumented"


class TestCalibrationConstantsMatch:
    def test_experiments_md_quotes_the_live_constants(self):
        """EXPERIMENTS.md's calibration table must match config.py."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert str(PAPER_CONFIG.hpl_problem_size) in text
        assert str(PAPER_CONFIG.hpl_comm_volume_factor) in text
        assert f"{PAPER_CONFIG.hpl_contention_threshold} / {PAPER_CONFIG.hpl_contention_slope}" in text
        assert str(PAPER_CONFIG.stream_intensity) in text

    def test_fire_preset_values_quoted(self):
        from repro.cluster import presets

        fire = presets.fire()
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert str(fire.node.memory.stream_efficiency) in text
        assert str(fire.node.memory.cores_to_saturate) in text

    def test_readme_quickstart_classes_exist(self):
        """Every `repro` name the README imports in its quickstart exists."""
        import repro

        readme = (ROOT / "README.md").read_text()
        block = re.search(r"```python(.*?)```", readme, re.S).group(1)
        for match in re.finditer(r"^\s*(\w+(?:, \w+)*),?\s*$", block, re.M):
            for name in match.group(1).split(", "):
                if name and name[0].isupper():
                    assert hasattr(repro, name), f"README imports missing name {name}"
