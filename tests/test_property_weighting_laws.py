"""Property-based tests of the weighting laws (Section III, Eqs. 13-15).

The paper's central algebraic claim: with time weights (Eq. 10) the
weighted TGI keeps each benchmark's energy in the denominator (Eq. 13) and
so stays inversely proportional to energy consumed for a fixed amount of
work — while energy weights (Eq. 11 -> Eq. 14) and power weights
(Eq. 12 -> Eq. 15) *cancel* the per-benchmark energy, losing the property.

Instead of one measured suite, hypothesis draws whole synthetic suites —
arbitrary positive (performance, time, power) triples per benchmark and an
arbitrary positive reference — and checks the laws hold on every one of
them, not just at the paper's operating point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.base import BenchmarkResult
from repro.core import (
    ArithmeticMeanWeights,
    EnergyWeights,
    PowerWeights,
    ReferenceSet,
    TGICalculator,
    TimeWeights,
    energy_weighted_identity,
    power_weighted_identity,
    time_weighted_identity,
)
from repro.benchmarks.suite import SuiteResult
from repro.power import PiecewisePower, PowerTrace
from repro.sim.executor import RunRecord

BENCHES = ("HPL", "STREAM", "IOzone")

#: Two decades either side of 1 — wide enough to be interesting, narrow
#: enough that products like t*p stay far from float trouble.
magnitude = st.floats(min_value=1e-2, max_value=1e2, allow_nan=False)
#: Multiplicative perturbations used for the scaling laws.
scale_factor = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


def synthetic_result(name, performance, time_s, power_w):
    """A BenchmarkResult with exactly the (M, t, p) we asked for.

    The flat power curve makes the metered mean power exact, so
    ``energy_j == power_w * time_s`` with no integration error.
    """
    record = RunRecord(
        label=name,
        cluster=None,
        num_ranks=1,
        makespan_s=time_s,
        truth=PiecewisePower([(0.0, time_s, power_w)]),
        trace=PowerTrace([0.0, time_s], [power_w, power_w]),
    )
    return BenchmarkResult(
        benchmark=name, metric_label="unit/s", performance=performance, scale=1, record=record
    )


def make_suite(params):
    """params: name -> (performance, time_s, power_w)."""
    return SuiteResult(
        cores=1,
        results=tuple(synthetic_result(n, *params[n]) for n in BENCHES),
    )


@st.composite
def suite_params(draw):
    return {
        name: (draw(magnitude), draw(magnitude), draw(magnitude)) for name in BENCHES
    }


@st.composite
def references(draw):
    return ReferenceSet(
        {name: draw(magnitude) for name in BENCHES}, system_name="synthetic-ref"
    )


def tgi(suite, reference, weighting):
    return TGICalculator(reference, weighting=weighting).compute(suite).value


class TestIdentitiesOnRandomSuites:
    """Eqs. 13-15: pipeline output == closed form, for *any* suite."""

    @given(params=suite_params(), reference=references())
    @settings(max_examples=100, deadline=None)
    def test_eq13_time_identity(self, params, reference):
        left, right = time_weighted_identity(make_suite(params), reference)
        assert left == pytest.approx(right, rel=1e-9)

    @given(params=suite_params(), reference=references())
    @settings(max_examples=100, deadline=None)
    def test_eq14_energy_identity(self, params, reference):
        left, right = energy_weighted_identity(make_suite(params), reference)
        assert left == pytest.approx(right, rel=1e-9)

    @given(params=suite_params(), reference=references())
    @settings(max_examples=100, deadline=None)
    def test_eq15_power_identity(self, params, reference):
        left, right = power_weighted_identity(make_suite(params), reference)
        assert left == pytest.approx(right, rel=1e-9)


class TestTimeWeightsKeepTheProperty:
    """Eq. 13: per-benchmark energy survives in the denominator."""

    @given(params=suite_params(), reference=references(), k=scale_factor)
    @settings(max_examples=100, deadline=None)
    def test_uniform_energy_scaling_inverts_tgi(self, params, reference, k):
        """Fixed work and times, all energies scaled by k (via power):
        the time-weighted TGI scales by exactly 1/k — the paper's desired
        inverse-proportionality-to-energy property."""
        base = tgi(make_suite(params), reference, TimeWeights())
        scaled_params = {n: (m, t, p * k) for n, (m, t, p) in params.items()}
        scaled = tgi(make_suite(scaled_params), reference, TimeWeights())
        assert scaled == pytest.approx(base / k, rel=1e-9)

    @given(params=suite_params(), reference=references(), k=scale_factor)
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_mean_also_inverts(self, params, reference, k):
        """Eq. 8: equal weights keep the property too."""
        base = tgi(make_suite(params), reference, ArithmeticMeanWeights())
        scaled_params = {n: (m, t, p * k) for n, (m, t, p) in params.items()}
        scaled = tgi(make_suite(scaled_params), reference, ArithmeticMeanWeights())
        assert scaled == pytest.approx(base / k, rel=1e-9)

    @given(params=suite_params(), reference=references(), k=st.floats(min_value=1.5, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_single_benchmark_energy_raise_lowers_tgi(self, params, reference, k):
        """Strict monotonicity: raising ONE benchmark's energy (power up by
        k > 1, time and work fixed) strictly lowers the time-weighted TGI —
        Eq. 13 keeps every e_i in a denominator."""
        base = tgi(make_suite(params), reference, TimeWeights())
        for victim in BENCHES:
            worse = dict(params)
            m, t, p = worse[victim]
            worse[victim] = (m, t, p * k)
            assert tgi(make_suite(worse), reference, TimeWeights()) < base


class TestEnergyAndPowerWeightsLoseIt:
    """Eqs. 14-15: the per-benchmark energy/power term cancels."""

    @given(params=suite_params(), reference=references(), share=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=100, deadline=None)
    def test_energy_weighted_blind_to_redistribution(self, params, reference, share):
        """Eq. 14 depends only on SUM e_i: moving energy between benchmarks
        at fixed total (fixed M_i, t_i) leaves the energy-weighted TGI
        unchanged — the metric cannot see *which* benchmark wasted joules."""
        suite = make_suite(params)
        total_energy = sum(p * t for _, t, p in params.values())
        # redistribute: first benchmark takes `share` of the total, the rest
        # split the remainder evenly — times fixed, so powers absorb it all
        names = list(BENCHES)
        budgets = [share * total_energy] + [
            (1 - share) * total_energy / (len(names) - 1)
        ] * (len(names) - 1)
        moved = {
            n: (params[n][0], params[n][1], e / params[n][1])
            for n, e in zip(names, budgets)
        }
        base = tgi(suite, reference, EnergyWeights())
        redistributed = tgi(make_suite(moved), reference, EnergyWeights())
        assert redistributed == pytest.approx(base, rel=1e-9)

    @given(params=suite_params(), reference=references(), k=st.floats(min_value=1.5, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_energy_weighted_fails_inverse_proportionality(self, params, reference, k):
        """Scaling only ONE benchmark's energy by k does NOT scale the
        energy-weighted TGI by the Eq. 13 amount — the property the paper
        wants is genuinely absent, not just rescaled."""
        time_based = TimeWeights()
        energy_based = EnergyWeights()
        victim = BENCHES[0]
        worse = dict(params)
        m, t, p = worse[victim]
        worse[victim] = (m, t, p * k)
        ratio_time = tgi(make_suite(worse), reference, time_based) / tgi(
            make_suite(params), reference, time_based
        )
        ratio_energy = tgi(make_suite(worse), reference, energy_based) / tgi(
            make_suite(params), reference, energy_based
        )
        # time weights strictly punish the waste; energy weights punish it
        # by a different (weaker, possibly zero) amount
        assert ratio_time < 1.0
        assert ratio_energy != pytest.approx(ratio_time, rel=1e-6)

    @given(params=suite_params(), reference=references(), share=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=100, deadline=None)
    def test_power_weighted_blind_to_power_redistribution(self, params, reference, share):
        """Eq. 15 depends only on SUM p_i: with times held equal across
        benchmarks, moving power between benchmarks at fixed total leaves
        the power-weighted TGI unchanged."""
        common_time = 3.0
        equal_time = {n: (m, common_time, p) for n, (m, _, p) in params.items()}
        total_power = sum(p for _, _, p in equal_time.values())
        names = list(BENCHES)
        budgets = [share * total_power] + [
            (1 - share) * total_power / (len(names) - 1)
        ] * (len(names) - 1)
        moved = {
            n: (equal_time[n][0], common_time, p) for n, p in zip(names, budgets)
        }
        base = tgi(make_suite(equal_time), reference, PowerWeights())
        redistributed = tgi(make_suite(moved), reference, PowerWeights())
        assert redistributed == pytest.approx(base, rel=1e-9)
