"""Application-profile weighting tests."""

import pytest

from repro.benchmarks import (
    BenchmarkSuite,
    EffectiveBandwidthBenchmark,
    HPLBenchmark,
    IOzoneBenchmark,
    RandomAccessBenchmark,
    StreamBenchmark,
)
from repro.core import (
    CFD_PROFILE,
    CHECKPOINT_HEAVY_PROFILE,
    DENSE_LINALG_PROFILE,
    GENOMICS_PROFILE,
    ApplicationProfile,
    ReferenceSet,
    TGICalculator,
    WorkloadWeights,
)
from repro.exceptions import WeightError
from repro.sim import ClusterExecutor


@pytest.fixture
def five_suite_result(fire_small):
    suite = BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 4480), rounds=1),
            StreamBenchmark(target_seconds=5),
            IOzoneBenchmark(target_seconds=5),
            RandomAccessBenchmark(target_seconds=5),
            EffectiveBandwidthBenchmark(target_seconds=5),
        ]
    )
    executor = ClusterExecutor(fire_small, rng=3)
    return suite.run(executor, fire_small.total_cores)


@pytest.fixture
def three_suite_result(quick_suite, executor):
    return quick_suite.run(executor, 32)


class TestApplicationProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(WeightError):
            ApplicationProfile(name="bad", compute=0.5, io=0.6)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WeightError):
            ApplicationProfile(name="bad", compute=1.2, io=-0.2)

    def test_shipped_profiles_are_valid(self):
        for profile in (CFD_PROFILE, GENOMICS_PROFILE, CHECKPOINT_HEAVY_PROFILE, DENSE_LINALG_PROFILE):
            assert sum(profile.fraction(s) for s in
                       ("compute", "memory_bandwidth", "memory_latency", "io", "network")
                       ) == pytest.approx(1.0)

    def test_dominant_subsystem(self):
        assert CFD_PROFILE.dominant_subsystem == "memory_bandwidth"
        assert GENOMICS_PROFILE.dominant_subsystem == "memory_latency"
        assert DENSE_LINALG_PROFILE.dominant_subsystem == "compute"

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(WeightError):
            CFD_PROFILE.fraction("gpu")


class TestWorkloadWeights:
    def test_five_benchmark_direct_mapping(self, five_suite_result):
        weights = WorkloadWeights(CFD_PROFILE).weights(five_suite_result)
        # all five subsystems probed -> weights equal the profile fractions
        assert weights["STREAM"] == pytest.approx(0.50)
        assert weights["b_eff"] == pytest.approx(0.25)
        assert weights["HPL"] == pytest.approx(0.15)

    def test_three_benchmark_redistribution(self, three_suite_result):
        """Unprobed mass (memory latency, network) redistributes
        proportionally over HPL/STREAM/IOzone."""
        weights = WorkloadWeights(CFD_PROFILE).weights(three_suite_result)
        covered = 0.15 + 0.50 + 0.05
        assert weights["HPL"] == pytest.approx(0.15 / covered)
        assert weights["STREAM"] == pytest.approx(0.50 / covered)
        assert weights["IOzone"] == pytest.approx(0.05 / covered)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_checkpoint_profile_weights_io_highest(self, three_suite_result):
        weights = WorkloadWeights(CHECKPOINT_HEAVY_PROFILE).weights(three_suite_result)
        assert max(weights, key=weights.get) == "IOzone"

    def test_unmapped_benchmark_rejected(self, three_suite_result):
        scheme = WorkloadWeights(
            CFD_PROFILE, benchmark_subsystems={"HPL": "compute"}
        )
        with pytest.raises(WeightError, match="no subsystem mapping"):
            scheme.weights(three_suite_result)

    def test_duplicate_subsystem_rejected(self, three_suite_result):
        scheme = WorkloadWeights(
            CFD_PROFILE,
            benchmark_subsystems={
                "HPL": "compute",
                "STREAM": "compute",
                "IOzone": "io",
            },
        )
        with pytest.raises(WeightError, match="same subsystem"):
            scheme.weights(three_suite_result)

    def test_zero_coverage_rejected(self, three_suite_result):
        network_only = ApplicationProfile(name="net", network=1.0)
        with pytest.raises(WeightError, match="no mass"):
            WorkloadWeights(network_only).weights(three_suite_result)

    def test_scheme_name_mentions_profile(self):
        assert "CFD" in WorkloadWeights(CFD_PROFILE).name


class TestWorkloadWeightedTGI:
    def test_profiles_reorder_contributions(self, five_suite_result):
        """The paper's flexibility claim end to end: the same measurements
        yield different TGIs under different application profiles."""
        ref = ReferenceSet.from_suite_result(five_suite_result)
        values = {}
        for profile in (CFD_PROFILE, GENOMICS_PROFILE, DENSE_LINALG_PROFILE):
            calc = TGICalculator(ref, weighting=WorkloadWeights(profile))
            tgi = calc.compute(five_suite_result)
            values[profile.name] = tgi.value
            # self-reference invariant survives any profile
            assert tgi.value == pytest.approx(1.0)
        assert len(values) == 3


class TestWorkloadWeightProperties:
    """Hypothesis invariants over random application profiles."""

    from hypothesis import HealthCheck as _HealthCheck
    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    @staticmethod
    def _profile_from(raw):
        total = sum(raw)
        fracs = [r / total for r in raw]
        # normalize rounding drift into the largest component
        drift = 1.0 - sum(fracs)
        fracs[fracs.index(max(fracs))] += drift
        return ApplicationProfile(
            name="random",
            compute=fracs[0],
            memory_bandwidth=fracs[1],
            memory_latency=fracs[2],
            io=fracs[3],
            network=fracs[4],
        )

    @_given(
        raw=_st.lists(
            _st.floats(min_value=0.01, max_value=1.0), min_size=5, max_size=5
        )
    )
    @_settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[_HealthCheck.function_scoped_fixture],
    )
    def test_weights_always_valid_for_three_member_suite(
        self, raw, three_suite_result
    ):
        profile = self._profile_from(raw)
        weights = WorkloadWeights(profile).weights(three_suite_result)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())

    @_given(
        raw=_st.lists(
            _st.floats(min_value=0.01, max_value=1.0), min_size=5, max_size=5
        )
    )
    @_settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[_HealthCheck.function_scoped_fixture],
    )
    def test_redistribution_preserves_probed_ratios(self, raw, three_suite_result):
        """Folding unprobed mass must not change the probed subsystems'
        relative ordering."""
        profile = self._profile_from(raw)
        weights = WorkloadWeights(profile).weights(three_suite_result)
        ratio_profile = profile.compute / profile.memory_bandwidth
        ratio_weights = weights["HPL"] / weights["STREAM"]
        assert ratio_weights == pytest.approx(ratio_profile, rel=1e-9)
