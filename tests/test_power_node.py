"""Node-level power aggregation tests."""

import pytest

from repro.cluster import presets
from repro.power import NodePowerModel, NodeUtilization, PSUModel
from repro.power.psu import IDEAL_PSU


@pytest.fixture
def model(fire):
    return NodePowerModel(node=fire.node)


class TestNodePowerModel:
    def test_idle_dc_matches_nominal(self, fire, model):
        assert model.dc_power(NodeUtilization.idle()) == pytest.approx(
            fire.node.nominal_idle_watts
        )

    def test_full_dc_matches_nominal(self, fire, model):
        full = NodeUtilization(
            cpu_active_fraction=1.0,
            cpu_intensity=1.0,
            memory=1.0,
            storage=1.0,
            nic=1.0,
            accelerator=1.0,
        )
        assert model.dc_power(full) == pytest.approx(fire.node.nominal_max_watts)

    def test_wall_above_dc(self, model):
        util = NodeUtilization(cpu_active_fraction=0.5, cpu_intensity=0.8)
        assert model.wall_power(util) > model.dc_power(util)

    def test_idle_wall_between_dc_and_double(self, model):
        idle_dc = model.dc_power(NodeUtilization.idle())
        idle_wall = model.idle_wall_power()
        assert idle_dc < idle_wall < 2 * idle_dc

    def test_ideal_psu_makes_wall_equal_dc(self, fire):
        model = NodePowerModel(node=fire.node, psu=IDEAL_PSU)
        util = NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=1.0)
        assert model.wall_power(util) == pytest.approx(model.dc_power(util))

    def test_breakdown_sums_to_dc(self, model):
        util = NodeUtilization(
            cpu_active_fraction=0.75, cpu_intensity=0.9, memory=0.4, storage=0.2, nic=0.1
        )
        breakdown = model.component_breakdown(util)
        assert sum(breakdown.values()) == pytest.approx(model.dc_power(util))

    def test_breakdown_includes_accelerators_when_present(self):
        gpu = presets.gpu_cluster()
        model = NodePowerModel(node=gpu.node)
        util = NodeUtilization(accelerator=1.0)
        breakdown = model.component_breakdown(util)
        assert breakdown["accelerators"] == pytest.approx(2 * 225.0)

    def test_gpu_node_max_wall_dominated_by_gpus(self):
        gpu = presets.gpu_cluster()
        model = NodePowerModel(node=gpu.node)
        assert model.max_wall_power() > 700  # 2 x 225 W GPUs alone

    def test_custom_psu_respected(self, fire):
        tiny = PSUModel(rated_watts=10_000)  # very light load -> poor efficiency
        model = NodePowerModel(node=fire.node, psu=tiny)
        default = NodePowerModel(node=fire.node)
        assert model.idle_wall_power() > default.idle_wall_power()

    def test_monotone_in_intensity(self, model):
        powers = [
            model.wall_power(NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=i))
            for i in (0.0, 0.3, 0.6, 1.0)
        ]
        assert powers == sorted(powers)

    def test_fire_node_realistic_envelope(self, model):
        """Sanity band: a 2010 dual-socket node idles at 100-200 W and
        peaks at 250-400 W at the wall."""
        assert 100 < model.idle_wall_power() < 200
        assert 250 < model.max_wall_power() < 400
