"""Import-smoke tests for the examples.

Full example runs take seconds to minutes, so CI-speed coverage here is:
every example imports cleanly (no syntax/import rot) and exposes a
``main()``.  The quickstart's logic is additionally exercised end-to-end
in ``test_integration.py``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # examples guard execution behind __main__, so loading is side-effect free
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert {
            "quickstart",
            "reproduce_paper",
            "rank_clusters",
            "weight_sensitivity",
            "center_wide_tgi",
            "gpu_system_tgi",
            "meter_fidelity",
            "extended_suite",
            "dvfs_study",
            "application_weighted_tgi",
            "energy_breakdown",
            "green500_style_list",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_docstring(self, path):
        module = load_example(path)
        assert module.__doc__ and len(module.__doc__.strip()) > 40
