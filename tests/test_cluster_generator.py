"""Cluster-generator tests."""

import pytest

from repro.cluster import ERAS, generate_cluster, generate_fleet
from repro.exceptions import SpecError


class TestGenerateCluster:
    def test_deterministic(self):
        # ClusterSpec equality is graph-identity-sensitive (networkx), so
        # compare the value parts: node spec, size, name.
        a = generate_cluster(42, era="2011")
        b = generate_cluster(42, era="2011")
        assert (a.name, a.num_nodes, a.node) == (b.name, b.num_nodes, b.node)

    def test_distinct_seeds_differ(self):
        a = generate_cluster(1, era="2011")
        b = generate_cluster(2, era="2011")
        assert (a.num_nodes, a.node) != (b.num_nodes, b.node)

    def test_unknown_era_rejected(self):
        with pytest.raises(SpecError):
            generate_cluster(0, era="1999")

    def test_name_override(self):
        cluster = generate_cluster(0, era="2011", name="custom")
        assert cluster.name == "custom"

    @pytest.mark.parametrize("era", sorted(ERAS))
    def test_all_eras_produce_valid_specs(self, era):
        """Spec validation runs at construction: 20 seeds per era must all
        produce internally consistent machines."""
        for seed in range(20):
            cluster = generate_cluster(seed, era=era)
            node = cluster.node
            assert node.nominal_idle_watts < node.nominal_max_watts
            assert cluster.total_cores >= 8
            assert node.memory.cores_to_saturate <= node.cpu.cores

    def test_era_parameters_within_template(self):
        template = ERAS["2011"]
        for seed in range(20):
            cluster = generate_cluster(seed, era="2011")
            clock = cluster.node.cpu.base_clock_hz / 1e9
            assert template.clock_ghz[0] <= clock <= template.clock_ghz[1]
            assert cluster.node.cpu.cores in template.cores_per_socket
            assert cluster.num_nodes in template.node_counts

    def test_later_eras_are_denser(self):
        """A 2021 machine's peak per node dwarfs a 2008 one's (sanity on
        the era templates, which the ranking examples rely on)."""
        old = max(generate_cluster(s, era="2008").node.peak_flops for s in range(10))
        new = min(generate_cluster(s, era="2021").node.peak_flops for s in range(10))
        assert new > 5 * old


class TestGenerateFleet:
    def test_unique_names(self):
        fleet = generate_fleet(8, era="2011", seed=0)
        names = [c.name for c in fleet]
        assert len(set(names)) == 8

    def test_deterministic(self):
        a = generate_fleet(4, era="2015", seed=3)
        b = generate_fleet(4, era="2015", seed=3)
        assert [(c.name, c.num_nodes, c.node) for c in a] == [
            (c.name, c.num_nodes, c.node) for c in b
        ]

    def test_variety_within_fleet(self):
        fleet = generate_fleet(10, era="2011", seed=7)
        node_counts = {c.num_nodes for c in fleet}
        nics = {c.node.nic.name for c in fleet}
        assert len(node_counts) > 1
        assert len(nics) > 1  # both budget and premium fabric tiers appear

    def test_zero_count_rejected(self):
        with pytest.raises(SpecError):
            generate_fleet(0)

    def test_fleet_runs_through_pipeline(self, quick_suite):
        """A generated machine is a full citizen: the suite runs on it."""
        from repro.sim import ClusterExecutor

        cluster = generate_fleet(3, era="2011", seed=5)[0]
        executor = ClusterExecutor(cluster, rng=1)
        result = quick_suite.run(executor, min(32, cluster.total_cores))
        assert all(r.performance > 0 for r in result)


class TestFleetSeedIndependence:
    """Member seeds are a pure function of (fleet seed, index)."""

    def test_fleet_prefix_stable_across_sizes(self):
        """Growing a fleet never changes the machines already in it."""
        small = generate_fleet(4, era="2011", seed=99)
        large = generate_fleet(9, era="2011", seed=99)
        assert [(c.name, c.num_nodes, c.node) for c in small] == [
            (c.name, c.num_nodes, c.node) for c in large[:4]
        ]

    def test_seed_lists_prefix_stable(self):
        from repro.cluster.generator import fleet_seeds

        assert fleet_seeds(3, 7) == fleet_seeds(10, 7)[:3]
        assert fleet_seeds(1) == fleet_seeds(64)[:1]  # default seed too

    def test_member_seed_matches_list(self):
        from repro.cluster.generator import fleet_member_seed, fleet_seeds

        seeds = fleet_seeds(8, 123)
        assert [fleet_member_seed(i, 123) for i in range(8)] == seeds

    def test_members_are_independent(self):
        """Distinct indices draw from unrelated streams, not one sequence."""
        from repro.cluster.generator import fleet_seeds

        seeds = fleet_seeds(32, 5)
        assert len(set(seeds)) == 32

    def test_negative_index_rejected(self):
        from repro.cluster.generator import fleet_member_seed

        with pytest.raises(SpecError):
            fleet_member_seed(-1, 0)
