"""Perf-watch history store: content addressing and trajectory determinism.

The ``BENCH_<scenario>.json`` trajectory bytes must be a pure function of
the records they render — rewriting the same history anywhere, any number
of times, yields byte-identical files.  That is what makes the repo-root
trajectory diffable and reviewable.
"""

import json

import pytest

from repro.exceptions import PerfWatchError
from repro.perfwatch import (
    PERFWATCH_VERSION,
    HistoryStore,
    record_key,
    trajectory_path,
)

from .test_perfwatch import make_record


class TestStore:
    def test_append_get_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        record = make_record(metrics={"gflops": (2.0, "higher")})
        key = store.append(record)
        assert key == record_key(record)
        assert store.get(key) == record
        assert store.scenario_ids() == ["toy.scn"]
        assert store.keys("toy.scn") == [key]

    def test_duplicate_content_stores_once_but_counts_twice(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        record = make_record()
        key_a = store.append(record)
        key_b = store.append(record)
        assert key_a == key_b
        # one object on disk, two observations in the index
        assert len(list((tmp_path / "hist" / "objects").iterdir())) == 1
        assert store.keys("toy.scn") == [key_a, key_a]
        assert len(store.records("toy.scn")) == 2

    def test_records_preserve_append_order(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        walls = [(3.0,), (1.0,), (2.0,)]
        for i, wall in enumerate(walls):
            store.append(make_record(wall=wall, ts=1_700_000_000.0 + i))
        assert [r.wall_s for r in store.records("toy.scn")] == walls

    def test_missing_object_raises(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        with pytest.raises(PerfWatchError, match="no perf-watch object"):
            store.get("0" * 64)

    def test_index_version_gate(self, tmp_path):
        root = tmp_path / "hist"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"perfwatch_version": 99, "scenarios": {}})
        )
        with pytest.raises(PerfWatchError, match="version"):
            HistoryStore(root).scenario_ids()


class TestTrajectories:
    def test_trajectory_bytes_are_deterministic(self, tmp_path):
        records = [
            make_record(wall=(w,), ts=1_700_000_000.0 + i)
            for i, w in enumerate((1.0, 1.1))
        ]
        outputs = []
        for sub in ("a", "b"):
            store = HistoryStore(tmp_path / sub / "hist")
            for record in records:
                store.append(record)
            path = store.write_trajectory("toy.scn", tmp_path / sub)
            assert path == trajectory_path(tmp_path / sub, "toy.scn")
            assert path.name == "BENCH_toy.scn.json"
            # rewriting in place is also byte-stable
            first = path.read_bytes()
            store.write_trajectory("toy.scn", tmp_path / sub)
            assert path.read_bytes() == first
            outputs.append(first)
        assert outputs[0] == outputs[1]

    def test_trajectory_payload_shape(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(make_record())
        path = store.write_trajectory("toy.scn", tmp_path)
        payload = json.loads(path.read_text())
        assert payload["perfwatch_version"] == PERFWATCH_VERSION
        assert payload["scenario"] == "toy.scn"
        assert len(payload["records"]) == 1
        assert payload["records"][0]["scenario"] == "toy.scn"

    def test_empty_trajectory_raises(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        with pytest.raises(PerfWatchError, match="no history"):
            store.write_trajectory("ghost.scn", tmp_path)

    def test_write_trajectories_covers_every_scenario(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(make_record(scenario_id="a.scn"))
        store.append(make_record(scenario_id="b.scn"))
        paths = store.write_trajectories(tmp_path / "out")
        assert sorted(p.name for p in paths) == [
            "BENCH_a.scn.json",
            "BENCH_b.scn.json",
        ]
