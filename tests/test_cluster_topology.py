"""Interconnect-topology tests."""

import pytest

from repro.cluster.topology import (
    Topology,
    fat_tree_topology,
    ring_topology,
    star_topology,
)
from repro.exceptions import SpecError


class TestStar:
    def test_pairwise_hops(self):
        star = star_topology(8)
        assert star.hops(0, 7) == 2

    def test_self_hops_zero(self):
        assert star_topology(8).hops(3, 3) == 0

    def test_single_node(self):
        assert star_topology(1).hops(0, 0) == 0

    def test_max_hops(self):
        assert star_topology(8).max_hops() == 2

    def test_mean_hops(self):
        assert star_topology(8).mean_hops() == pytest.approx(2.0)

    def test_bisection(self):
        # every pair of halves is separated by the 4 links of one half
        assert star_topology(8).bisection_links() == 4

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(SpecError):
            star_topology(4).hops(0, 4)


class TestRing:
    def test_adjacent(self):
        assert ring_topology(8).hops(0, 1) == 1

    def test_wraparound(self):
        assert ring_topology(8).hops(0, 7) == 1

    def test_diameter(self):
        assert ring_topology(8).max_hops() == 4

    def test_two_nodes(self):
        assert ring_topology(2).hops(0, 1) == 1

    def test_bisection_is_two(self):
        assert ring_topology(8).bisection_links() == 2


class TestFatTree:
    def test_same_leaf_two_hops(self):
        ft = fat_tree_topology(32, leaf_radix=16)
        assert ft.hops(0, 15) == 2

    def test_cross_leaf_four_hops(self):
        ft = fat_tree_topology(32, leaf_radix=16)
        assert ft.hops(0, 16) == 4

    def test_mean_hops_between_two_and_four(self):
        ft = fat_tree_topology(32, leaf_radix=16)
        assert 2 < ft.mean_hops() < 4

    def test_single_leaf_degenerate(self):
        ft = fat_tree_topology(8, leaf_radix=16)
        assert ft.max_hops() == 2

    def test_bisection_counts_uplink_multiplicity(self):
        # two leaves of radix 16 -> 8 uplinks each; the cut is one leaf's
        # uplink bundle
        ft = fat_tree_topology(32, leaf_radix=16)
        assert ft.bisection_links() == 8


class TestTopologyValidation:
    def test_missing_compute_node_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(SpecError):
            Topology(name="broken", num_nodes=2, graph=g)
