"""STREAM performance-model tests."""

import pytest

from repro.exceptions import BenchmarkError
from repro.perfmodels import StreamModel


@pytest.fixture
def model(fire):
    return StreamModel(cluster=fire)


class TestNodeBandwidth:
    def test_single_rank_gets_per_core_rate(self, model):
        assert model.node_bandwidth(1) == pytest.approx(model.per_core_bandwidth())

    def test_scales_linearly_below_saturation(self, model):
        bw2 = model.node_bandwidth(2)
        bw4 = model.node_bandwidth(4)
        assert bw4 == pytest.approx(2 * bw2)

    def test_saturates_at_node_limit(self, model, fire):
        full = model.node_bandwidth(fire.node.cores)
        assert full == pytest.approx(fire.node.sustained_memory_bandwidth)

    def test_never_exceeds_sustained(self, model, fire):
        for k in range(1, fire.node.cores + 1):
            assert model.node_bandwidth(k) <= fire.node.sustained_memory_bandwidth * (1 + 1e-9)

    def test_monotone_in_ranks(self, model, fire):
        rates = [model.node_bandwidth(k) for k in range(1, fire.node.cores + 1)]
        assert rates == sorted(rates)

    def test_ranks_spread_over_sockets(self, model, fire):
        """2 ranks on a 2-socket node use one core per socket, doubling
        the single-socket rate rather than contending."""
        assert model.node_bandwidth(2) == pytest.approx(2 * model.per_core_bandwidth())

    def test_overflow_rejected(self, model, fire):
        with pytest.raises(BenchmarkError):
            model.node_bandwidth(fire.node.cores + 1)


class TestPrediction:
    def test_aggregate_scales_with_ranks_below_saturation(self, model):
        p16 = model.predict(16)
        p32 = model.predict(32)
        assert p32.aggregate_bandwidth == pytest.approx(2 * p16.aggregate_bandwidth)

    def test_time_independent_of_rank_count_below_saturation(self, model):
        # each rank streams its own array at the same per-core rate
        t16 = model.predict(16).time_s
        t32 = model.predict(32).time_s
        assert t16 == pytest.approx(t32)

    def test_triad_traffic_accounting(self, model):
        pred = model.predict(16, array_elements=1_000_000, iterations=10)
        bytes_per_rank = 10 * 1_000_000 * 24
        assert pred.time_s == pytest.approx(bytes_per_rank / pred.per_rank_bandwidth)

    def test_iterations_for_time(self, model):
        iters = model.iterations_for_time(45.0, 64)
        t = model.predict(64, iterations=iters).time_s
        assert t == pytest.approx(45.0, rel=0.1)

    def test_too_many_ranks_rejected(self, model, fire):
        with pytest.raises(BenchmarkError):
            model.predict(fire.total_cores + 1)

    def test_per_rank_bandwidth(self, model):
        pred = model.predict(32)
        assert pred.per_rank_bandwidth == pytest.approx(pred.aggregate_bandwidth / 32)
