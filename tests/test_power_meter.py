"""Wall-plug meter model tests."""

import numpy as np
import pytest

from repro.exceptions import MeterError
from repro.power import MeterSpec, PiecewisePower, WallPlugMeter
from repro.power.meter import PERFECT_METER, WATTS_UP_PRO


class TestMeterSpec:
    def test_watts_up_defaults(self):
        assert WATTS_UP_PRO.sample_interval_s == 1.0
        assert WATTS_UP_PRO.gain_error_fraction == pytest.approx(0.015)
        assert WATTS_UP_PRO.resolution_watts == pytest.approx(0.1)

    def test_uncapped_range_allowed(self):
        assert WATTS_UP_PRO.max_watts == float("inf")

    def test_rejects_zero_interval(self):
        with pytest.raises(MeterError):
            MeterSpec(name="bad", sample_interval_s=0)

    def test_rejects_empty_name(self):
        with pytest.raises(MeterError):
            MeterSpec(name="")


class TestWallPlugMeter:
    def test_deterministic_given_seed(self):
        truth = PiecewisePower.constant(1000, 30)
        a = WallPlugMeter(rng=3).measure(truth)
        b = WallPlugMeter(rng=3).measure(truth)
        assert (a.watts == b.watts).all()

    def test_different_seeds_differ(self):
        truth = PiecewisePower.constant(1000, 30)
        a = WallPlugMeter(rng=3).measure(truth)
        b = WallPlugMeter(rng=4).measure(truth)
        assert not (a.watts == b.watts).all()

    def test_gain_within_spec(self):
        for seed in range(20):
            meter = WallPlugMeter(rng=seed)
            assert abs(meter.realized_gain - 1.0) <= WATTS_UP_PRO.gain_error_fraction

    def test_sample_count_matches_one_hertz(self):
        truth = PiecewisePower.constant(500, 120)
        trace = WallPlugMeter(rng=0).measure(truth)
        assert len(trace) == 120

    def test_short_run_still_sampled(self):
        truth = PiecewisePower.constant(500, 0.3)
        trace = WallPlugMeter(rng=0).measure(truth)
        assert len(trace) == 1

    def test_measured_power_close_to_truth(self):
        truth = PiecewisePower.constant(1000, 300)
        trace = WallPlugMeter(rng=0).measure(truth)
        assert trace.mean_power() == pytest.approx(1000, rel=0.02)

    def test_quantization_to_resolution(self):
        truth = PiecewisePower.constant(123.456, 10)
        trace = WallPlugMeter(rng=0).measure(truth)
        steps = np.round(trace.watts / 0.1)
        assert np.allclose(trace.watts, steps * 0.1, atol=1e-9)

    def test_perfect_meter_is_exact(self):
        truth = PiecewisePower([(0, 10, 100), (10, 20, 300)])
        trace = WallPlugMeter(PERFECT_METER, rng=0).measure(truth)
        assert trace.mean_power() == pytest.approx(truth.mean_power(), rel=1e-6)

    def test_clipping_at_max_watts(self):
        capped = MeterSpec(name="capped", max_watts=500.0)
        truth = PiecewisePower.constant(1000, 10)
        trace = WallPlugMeter(capped, rng=0).measure(truth)
        assert trace.max_power() <= 500.0

    def test_steps_are_resolved(self):
        """A step in the truth shows up in the sampled trace."""
        truth = PiecewisePower([(0, 30, 100), (30, 60, 900)])
        trace = WallPlugMeter(rng=0).measure(truth)
        first_half = trace.slice(0, 29).mean_power()
        second_half = trace.slice(31, 60).mean_power()
        assert second_half > 5 * first_half


class TestDropout:
    def test_no_dropout_by_default(self):
        truth = PiecewisePower.constant(500, 100)
        trace = WallPlugMeter(rng=0).measure(truth)
        assert len(trace) == 100

    def test_dropout_loses_samples(self):
        spec = MeterSpec(name="flaky", dropout_probability=0.3)
        truth = PiecewisePower.constant(500, 200)
        trace = WallPlugMeter(spec, rng=0).measure(truth)
        assert 100 < len(trace) < 180  # ~140 expected

    def test_dropout_keeps_first_sample(self):
        spec = MeterSpec(name="flaky", dropout_probability=0.9)
        truth = PiecewisePower.constant(500, 50)
        trace = WallPlugMeter(spec, rng=1).measure(truth)
        assert trace.times[0] == pytest.approx(0.5)

    def test_dropout_energy_still_accurate_on_steady_load(self):
        """Trapezoid bridging across gaps is exact for constant power."""
        spec = MeterSpec(
            name="flaky", dropout_probability=0.4,
            gain_error_fraction=0.0, noise_counts=0.0,
        )
        truth = PiecewisePower.constant(1000, 300)
        trace = WallPlugMeter(spec, rng=2).measure(truth)
        assert trace.mean_power() == pytest.approx(1000, rel=1e-3)

    def test_dropout_is_deterministic(self):
        spec = MeterSpec(name="flaky", dropout_probability=0.3)
        truth = PiecewisePower.constant(500, 100)
        a = WallPlugMeter(spec, rng=7).measure(truth)
        b = WallPlugMeter(spec, rng=7).measure(truth)
        assert (a.times == b.times).all()

    def test_invalid_dropout_rejected(self):
        with pytest.raises(MeterError):
            MeterSpec(name="bad", dropout_probability=1.0)
        with pytest.raises(MeterError):
            MeterSpec(name="bad", dropout_probability=-0.1)
