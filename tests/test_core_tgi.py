"""TGI computation tests (Eq. 4 and the Section II algorithm)."""

import pytest

from repro.benchmarks import ScalingSweep
from repro.core import (
    ArithmeticMeanWeights,
    CustomWeights,
    EnergyWeights,
    InverseEDP,
    ReferenceSet,
    TGICalculator,
    TimeWeights,
    tgi_from_components,
)
from repro.exceptions import MetricError, WeightError


@pytest.fixture
def suite_result(quick_suite, executor):
    return quick_suite.run(executor, 32)


@pytest.fixture
def reference(quick_suite, small_executor, fire_small):
    ref_result = quick_suite.run(small_executor, fire_small.total_cores)
    return ReferenceSet.from_suite_result(ref_result, system_name="mini-ref")


class TestTgiFromComponents:
    def test_eq4(self):
        ree = {"a": 2.0, "b": 0.5}
        weights = {"a": 0.25, "b": 0.75}
        assert tgi_from_components(ree, weights) == pytest.approx(0.875)

    def test_coverage_mismatch(self):
        with pytest.raises(MetricError):
            tgi_from_components({"a": 1.0}, {"b": 1.0})

    def test_invalid_weights(self):
        with pytest.raises(WeightError):
            tgi_from_components({"a": 1.0}, {"a": 0.5})

    def test_non_positive_ree(self):
        with pytest.raises(MetricError):
            tgi_from_components({"a": 0.0}, {"a": 1.0})

    def test_bounded_by_ree_extremes(self):
        ree = {"a": 0.4, "b": 2.0, "c": 1.1}
        weights = {"a": 0.2, "b": 0.3, "c": 0.5}
        tgi = tgi_from_components(ree, weights)
        assert min(ree.values()) <= tgi <= max(ree.values())


class TestTGICalculator:
    def test_reference_system_scores_one(self, quick_suite, small_executor, fire_small):
        """A system measured against itself has REE = 1 everywhere, hence
        TGI = 1 under any valid weighting — the core invariant."""
        result = quick_suite.run(small_executor, fire_small.total_cores)
        ref = ReferenceSet.from_suite_result(result)
        for weighting in (ArithmeticMeanWeights(), TimeWeights(), EnergyWeights()):
            tgi = TGICalculator(ref, weighting=weighting).compute(result)
            assert tgi.value == pytest.approx(1.0)
            assert all(v == pytest.approx(1.0) for v in tgi.ree.values())

    def test_components_recorded(self, suite_result, reference):
        tgi = TGICalculator(reference).compute(suite_result)
        assert set(tgi.ree) == set(suite_result.names)
        assert set(tgi.weights) == set(suite_result.names)
        assert tgi.reference_name == "mini-ref"
        assert tgi.weighting_name == "arithmetic-mean"

    def test_value_consistent_with_components(self, suite_result, reference):
        tgi = TGICalculator(reference).compute(suite_result)
        manual = sum(tgi.weights[n] * tgi.ree[n] for n in tgi.ree)
        assert tgi.value == pytest.approx(manual)

    def test_least_efficient_benchmark(self, suite_result, reference):
        tgi = TGICalculator(reference).compute(suite_result)
        assert tgi.least_efficient_benchmark == min(tgi.ree, key=tgi.ree.get)

    def test_missing_reference_entry_rejected(self, suite_result):
        partial = ReferenceSet({"HPL": 1.0, "STREAM": 1.0})
        with pytest.raises(Exception):
            TGICalculator(partial).compute(suite_result)

    def test_custom_weights_change_value(self, suite_result, reference):
        am = TGICalculator(reference).compute(suite_result).value
        skewed = TGICalculator(
            reference,
            weighting=CustomWeights({"HPL": 0.98, "STREAM": 0.01, "IOzone": 0.01}),
        ).compute(suite_result).value
        assert skewed != pytest.approx(am)

    def test_edp_metric_supported(self, quick_suite, small_executor, fire_small):
        """Section II: TGI works with any EE metric, e.g. inverse EDP."""
        result = quick_suite.run(small_executor, fire_small.total_cores)
        ref = ReferenceSet.from_suite_result(result, metric=InverseEDP())
        tgi = TGICalculator(ref, metric=InverseEDP()).compute(result)
        assert tgi.value == pytest.approx(1.0)

    def test_doubling_efficiency_doubles_tgi(self, suite_result, reference):
        """TGI is linear in the REEs: halving every reference efficiency
        doubles TGI."""
        tgi = TGICalculator(reference).compute(suite_result).value
        halved = ReferenceSet(
            {k: v / 2 for k, v in reference.as_dict().items()}, system_name="halved"
        )
        tgi2 = TGICalculator(halved).compute(suite_result).value
        assert tgi2 == pytest.approx(2 * tgi)


class TestTGISeries:
    def test_series_over_sweep(self, quick_suite, executor, reference):
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        series = TGICalculator(reference).compute_series(sweep)
        assert len(series) == 2
        assert series.cores == (16, 32)
        assert series.values.shape == (2,)

    def test_component_series(self, quick_suite, executor, reference):
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        series = TGICalculator(reference).compute_series(sweep)
        assert series.ree_series("HPL").shape == (2,)
        assert series.weight_series("HPL").shape == (2,)
        assert (series.efficiency_series("IOzone") > 0).all()
