"""Seeded-RNG plumbing tests."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, child_rng, ensure_rng


class TestEnsureRng:
    def test_none_is_deterministic(self):
        a = ensure_rng(None).integers(0, 1 << 30, 10)
        b = ensure_rng(None).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_int_seed(self):
        a = ensure_rng(42).standard_normal(5)
        b = ensure_rng(42).standard_normal(5)
        assert (a == b).all()

    def test_distinct_seeds_differ(self):
        a = ensure_rng(1).standard_normal(5)
        b = ensure_rng(2).standard_normal(5)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestChildRng:
    def test_named_streams_are_independent(self):
        a = child_rng(0, "meter").standard_normal(5)
        b = child_rng(0, "noise").standard_normal(5)
        assert not (a == b).all()

    def test_same_name_same_seed_reproduces(self):
        a = child_rng(0, "meter").standard_normal(5)
        b = child_rng(0, "meter").standard_normal(5)
        assert (a == b).all()

    def test_adding_a_stream_does_not_perturb_existing_draws(self):
        # Derive "meter" alone vs "meter" after "other": same parent seed,
        # but each child consumes one parent draw, so derive in the same
        # order; the point of the design is the *name* isolates streams.
        parent1 = ensure_rng(5)
        first = child_rng(parent1, "meter").standard_normal(3)
        parent2 = ensure_rng(5)
        again = child_rng(parent2, "meter").standard_normal(3)
        assert (first == again).all()
