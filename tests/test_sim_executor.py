"""Cluster-executor tests: utilization folding and metered power."""

import pytest

from repro.exceptions import SimulationError
from repro.power import NodePowerModel, NodeUtilization
from repro.power.meter import PERFECT_METER, WallPlugMeter
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    barrier,
    breadth_first_placement,
    compute_phase,
    idle_phase,
    io_phase,
    memory_phase,
)


def uniform_programs(num_ranks, phases_factory):
    return [RankProgram(rank=r, phases=phases_factory()) for r in range(num_ranks)]


class TestExecute:
    def test_idle_cluster_power_floor(self, fire):
        """One nearly-idle rank: power must equal the whole cluster's idle
        wall power plus a whisker — the Figure 1 whole-system-metering
        property that shapes every EE curve."""
        executor = ClusterExecutor(fire, meter=WallPlugMeter(PERFECT_METER, rng=0))
        placement = breadth_first_placement(fire, 1)
        programs = uniform_programs(1, lambda: [idle_phase(30.0)])
        record = executor.execute(placement, programs)
        idle_wall = 8 * executor.node_power.idle_wall_power()
        assert record.true_mean_power_w == pytest.approx(idle_wall, rel=1e-6)

    def test_full_load_power_ceiling(self, fire):
        executor = ClusterExecutor(fire, meter=WallPlugMeter(PERFECT_METER, rng=0))
        placement = breadth_first_placement(fire, 128)
        programs = uniform_programs(128, lambda: [compute_phase(30.0, memory=1 / 16)])
        record = executor.execute(placement, programs)
        # all cores compute-bound, memory saturated
        full_util = NodeUtilization(cpu_active_fraction=1.0, cpu_intensity=1.0, memory=1.0)
        expected = 8 * executor.node_power.wall_power(full_util)
        assert record.true_mean_power_w == pytest.approx(expected, rel=1e-6)

    def test_makespan_matches_longest_rank(self, small_executor, fire_small):
        placement = breadth_first_placement(fire_small, 2)
        programs = [
            RankProgram(rank=0, phases=[compute_phase(10.0)]),
            RankProgram(rank=1, phases=[compute_phase(25.0)]),
        ]
        record = small_executor.execute(placement, programs)
        assert record.makespan_s == pytest.approx(25.0)

    def test_power_falls_after_fast_rank_finishes(self, fire_small):
        executor = ClusterExecutor(fire_small, meter=WallPlugMeter(PERFECT_METER, rng=0))
        placement = breadth_first_placement(fire_small, 2)
        programs = [
            RankProgram(rank=0, phases=[compute_phase(10.0)]),
            RankProgram(rank=1, phases=[compute_phase(30.0)]),
        ]
        record = executor.execute(placement, programs)
        early = record.truth.power_at(5.0)
        late = record.truth.power_at(20.0)
        assert late < early

    def test_bandwidth_demands_add_and_saturate(self, fire_small):
        executor = ClusterExecutor(fire_small, meter=WallPlugMeter(PERFECT_METER, rng=0))
        # 16 ranks on node 0, each demanding 0.2 of node memory bandwidth:
        # the sum saturates at 1.0, not 3.2
        placement = breadth_first_placement(fire_small, 2)
        programs = uniform_programs(2, lambda: [memory_phase(10.0, memory=0.2)])
        record2 = executor.execute(placement, programs)
        placement16 = breadth_first_placement(fire_small, 16)
        programs16 = uniform_programs(16, lambda: [memory_phase(10.0, memory=0.2)])
        record16 = executor.execute(placement16, programs16)
        # 16 ranks: memory saturated on both nodes; power must be higher
        # than 2 ranks but far below 16x the increment
        assert record16.true_mean_power_w > record2.true_mean_power_w

    def test_mismatched_program_count_rejected(self, small_executor, fire_small):
        placement = breadth_first_placement(fire_small, 2)
        with pytest.raises(SimulationError):
            small_executor.execute(placement, uniform_programs(3, lambda: [compute_phase(1.0)]))

    def test_zero_duration_run_rejected(self, small_executor, fire_small):
        placement = breadth_first_placement(fire_small, 1)
        with pytest.raises(SimulationError):
            small_executor.execute(placement, uniform_programs(1, list))

    def test_measured_energy_close_to_truth(self, executor, fire):
        placement = breadth_first_placement(fire, 32)
        programs = uniform_programs(
            32, lambda: [compute_phase(60.0), barrier(), io_phase(30.0, storage=0.4)]
        )
        record = executor.execute(placement, programs)
        assert abs(record.measurement_error_fraction) < 0.05

    def test_record_label(self, small_executor, fire_small):
        placement = breadth_first_placement(fire_small, 1)
        record = small_executor.execute(
            placement, uniform_programs(1, lambda: [compute_phase(5.0)]), label="smoke"
        )
        assert record.label == "smoke"

    def test_io_phase_draws_less_than_compute(self, fire_small):
        executor = ClusterExecutor(fire_small, meter=WallPlugMeter(PERFECT_METER, rng=0))
        placement = breadth_first_placement(fire_small, 16)
        compute_rec = executor.execute(
            placement, uniform_programs(16, lambda: [compute_phase(10.0)])
        )
        io_rec = executor.execute(
            placement, uniform_programs(16, lambda: [io_phase(10.0, storage=1.0)])
        )
        assert io_rec.true_mean_power_w < compute_rec.true_mean_power_w


class TestMeteringBoundary:
    def test_invalid_mode_rejected(self, fire):
        with pytest.raises(SimulationError):
            ClusterExecutor(fire, metering="per-rack")

    def test_active_nodes_excludes_idle_nodes(self, fire):
        placement = breadth_first_placement(fire, 2)  # nodes 0 and 1
        programs = uniform_programs(2, lambda: [io_phase(20.0, storage=1.0)])
        system = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="system"
        ).execute(placement, programs)
        active = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="active-nodes"
        ).execute(placement, programs)
        idle_wall = NodePowerModel(node=fire.node).idle_wall_power()
        assert system.true_mean_power_w - active.true_mean_power_w == pytest.approx(
            6 * idle_wall, rel=1e-6
        )

    def test_modes_agree_when_all_nodes_used(self, fire):
        placement = breadth_first_placement(fire, 8)
        programs = uniform_programs(8, lambda: [compute_phase(10.0)])
        system = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="system"
        ).execute(placement, programs)
        active = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="active-nodes"
        ).execute(placement, programs)
        assert system.true_mean_power_w == pytest.approx(
            active.true_mean_power_w, rel=1e-9
        )
