"""Process-placement tests."""

import pytest

from repro.exceptions import PlacementError
from repro.sim import Placement, breadth_first_placement, packed_placement


class TestBreadthFirst:
    def test_round_robin(self, fire):
        placement = breadth_first_placement(fire, 16)
        # 16 ranks over 8 nodes -> 2 per node
        assert all(placement.ranks_per_node(n) == 2 for n in range(8))

    def test_rank_to_node_mapping(self, fire):
        placement = breadth_first_placement(fire, 10)
        assert placement.node_of_rank[0] == 0
        assert placement.node_of_rank[8] == 0
        assert placement.node_of_rank[9] == 1

    def test_full_cluster(self, fire):
        placement = breadth_first_placement(fire, 128)
        assert placement.max_ranks_per_node() == 16

    def test_overflow_rejected(self, fire):
        with pytest.raises(PlacementError):
            breadth_first_placement(fire, 129)

    def test_single_rank(self, fire):
        placement = breadth_first_placement(fire, 1)
        assert placement.nodes_used == [0]


class TestPacked:
    def test_fills_first_node(self, fire):
        placement = packed_placement(fire, 16)
        assert placement.nodes_used == [0]
        assert placement.ranks_per_node(0) == 16

    def test_spills_to_second_node(self, fire):
        placement = packed_placement(fire, 17)
        assert placement.nodes_used == [0, 1]
        assert placement.ranks_per_node(1) == 1

    def test_overflow_rejected(self, fire):
        with pytest.raises(PlacementError):
            packed_placement(fire, 200)


class TestPlacementValidation:
    def test_ranks_on_node(self, fire):
        placement = breadth_first_placement(fire, 16)
        assert placement.ranks_on_node(0) == [0, 8]

    def test_unused_node_has_zero_ranks(self, fire):
        placement = breadth_first_placement(fire, 4)
        assert placement.ranks_per_node(7) == 0

    def test_invalid_node_index_rejected(self, fire):
        with pytest.raises(PlacementError):
            Placement(cluster=fire, node_of_rank=(0, 99), policy="bad")

    def test_core_oversubscription_rejected(self, fire_small):
        too_many = tuple([0] * 17)  # 17 ranks on a 16-core node
        with pytest.raises(PlacementError):
            Placement(cluster=fire_small, node_of_rank=too_many, policy="bad")

    def test_empty_placement_rejected(self, fire):
        with pytest.raises(PlacementError):
            Placement(cluster=fire, node_of_rank=(), policy="bad")

    def test_num_ranks(self, fire):
        assert breadth_first_placement(fire, 31).num_ranks == 31
