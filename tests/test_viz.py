"""ASCII-chart tests."""

import pytest

from repro.exceptions import ReproError
from repro.viz import ascii_chart, ascii_sparkline


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"EE": [1, 2, 3, 4]}, x=[16, 32, 48, 64])
        assert "*" in chart
        assert "* EE" in chart

    def test_axis_labels(self):
        chart = ascii_chart(
            {"a": [1, 2]}, x=[0, 10], x_label="cores", y_label="TGI"
        )
        assert "x: cores" in chart and "y: TGI" in chart

    def test_y_extremes_printed(self):
        chart = ascii_chart({"a": [5.0, 25.0]})
        assert "25" in chart and "5" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"one": [1, 2, 3], "two": [3, 2, 1]})
        assert "* one" in chart and "o two" in chart

    def test_title(self):
        chart = ascii_chart({"a": [1, 2]}, title="Figure 5")
        assert chart.splitlines()[0] == "Figure 5"

    def test_monotone_series_marks_extremes_correctly(self):
        chart = ascii_chart({"a": [0, 1, 2, 3]}, width=16, height=8)
        rows = [l for l in chart.splitlines() if "|" in l]
        # max value on the top plot row, min on the bottom
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_constant_series_ok(self):
        chart = ascii_chart({"a": [2.0, 2.0, 2.0]})
        assert "*" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart({"a": [1, 2], "b": [1, 2, 3]})

    def test_single_point_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart({"a": [1]})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart({"a": [1, 2]}, width=4, height=2)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [1, 2] for i in range(10)}
        with pytest.raises(ReproError):
            ascii_chart(series)

    def test_x_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart({"a": [1, 2, 3]}, x=[1, 2])


class TestSparkline:
    def test_monotone_shape(self):
        spark = ascii_sparkline([0, 1, 2, 3, 4])
        assert spark[0] == " " and spark[-1] == "@"

    def test_constant_is_flat(self):
        spark = ascii_sparkline([5, 5, 5])
        assert len(set(spark)) == 1

    def test_resampling_width(self):
        spark = ascii_sparkline(list(range(100)), width=10)
        assert len(spark) == 10

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_sparkline([])
