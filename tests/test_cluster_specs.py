"""Component-spec tests: CPU, memory, storage, NIC, accelerator."""

import pytest

from repro.cluster import (
    AcceleratorSpec,
    CPUSpec,
    InterconnectSpec,
    MemorySpec,
    StorageKind,
    StorageSpec,
)
from repro.exceptions import SpecError
from repro.units import GIB


def make_cpu(**kw):
    base = dict(
        model="test-cpu",
        cores=8,
        base_clock_hz=2.3e9,
        flops_per_cycle=4.0,
        tdp_watts=85.0,
        idle_watts=24.0,
    )
    base.update(kw)
    return CPUSpec(**base)


class TestCPUSpec:
    def test_peak_flops(self):
        cpu = make_cpu()
        assert cpu.peak_flops == pytest.approx(8 * 2.3e9 * 4)

    def test_peak_flops_per_core(self):
        assert make_cpu().peak_flops_per_core == pytest.approx(9.2e9)

    def test_rejects_idle_above_tdp(self):
        with pytest.raises(SpecError):
            make_cpu(idle_watts=100.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(SpecError):
            make_cpu(cores=0)

    def test_rejects_empty_model(self):
        with pytest.raises(SpecError):
            make_cpu(model="")

    def test_rejects_negative_clock(self):
        with pytest.raises(SpecError):
            make_cpu(base_clock_hz=-1)

    def test_str_mentions_model(self):
        assert "test-cpu" in str(make_cpu())

    def test_frozen(self):
        with pytest.raises(Exception):
            make_cpu().cores = 16


def make_memory(**kw):
    base = dict(
        technology="DDR3-1333",
        capacity_bytes=16 * GIB,
        channels=4,
        channel_bandwidth=10.667e9,
        stream_efficiency=0.5,
        cores_to_saturate=4,
        dimms=4,
        dimm_idle_watts=1.5,
        dimm_active_watts=4.0,
    )
    base.update(kw)
    return MemorySpec(**base)


class TestMemorySpec:
    def test_peak_bandwidth(self):
        assert make_memory().peak_bandwidth == pytest.approx(4 * 10.667e9)

    def test_sustained_bandwidth(self):
        mem = make_memory()
        assert mem.sustained_bandwidth == pytest.approx(mem.peak_bandwidth * 0.5)

    def test_idle_and_active_watts(self):
        mem = make_memory()
        assert mem.idle_watts == pytest.approx(6.0)
        assert mem.active_watts == pytest.approx(16.0)

    def test_rejects_zero_stream_efficiency(self):
        with pytest.raises(SpecError):
            make_memory(stream_efficiency=0.0)

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(SpecError):
            make_memory(stream_efficiency=1.2)

    def test_rejects_active_below_idle(self):
        with pytest.raises(SpecError):
            make_memory(dimm_active_watts=1.0)

    def test_rejects_zero_channels(self):
        with pytest.raises(SpecError):
            make_memory(channels=0)


def make_storage(**kw):
    base = dict(
        model="test-disk",
        kind=StorageKind.HDD,
        capacity_bytes=500e9,
        seq_write_bandwidth=110e6,
        seq_read_bandwidth=125e6,
        idle_watts=5.0,
        active_watts=9.5,
    )
    base.update(kw)
    return StorageSpec(**base)


class TestStorageSpec:
    def test_valid(self):
        disk = make_storage()
        assert disk.kind is StorageKind.HDD

    def test_rejects_bad_kind(self):
        with pytest.raises(SpecError):
            make_storage(kind="spinning-rust")

    def test_rejects_active_below_idle(self):
        with pytest.raises(SpecError):
            make_storage(active_watts=1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(SpecError):
            make_storage(seq_write_bandwidth=0)

    def test_kind_enum_values(self):
        assert StorageKind("ssd") is StorageKind.SSD
        assert StorageKind.NVME.value == "nvme"


class TestInterconnectSpec:
    def make(self, **kw):
        base = dict(name="GigE", latency_s=50e-6, bandwidth=118e6)
        base.update(kw)
        return InterconnectSpec(**base)

    def test_transfer_time_single_hop(self):
        nic = self.make()
        assert nic.transfer_time(118e6) == pytest.approx(50e-6 + 1.0)

    def test_transfer_time_multi_hop_adds_latency_only(self):
        nic = self.make()
        t1 = nic.transfer_time(1e6, hops=1)
        t3 = nic.transfer_time(1e6, hops=3)
        assert t3 - t1 == pytest.approx(2 * 50e-6)

    def test_zero_bytes_costs_latency(self):
        assert self.make().transfer_time(0) == pytest.approx(50e-6)

    def test_rejects_zero_hops(self):
        with pytest.raises(SpecError):
            self.make().transfer_time(1, hops=0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(SpecError):
            self.make().transfer_time(-1)


class TestAcceleratorSpec:
    def make(self, **kw):
        base = dict(
            model="test-gpu",
            peak_flops=515e9,
            memory_bandwidth=148e9,
            memory_bytes=3 * GIB,
            tdp_watts=225.0,
            idle_watts=30.0,
            hpl_efficiency=0.58,
        )
        base.update(kw)
        return AcceleratorSpec(**base)

    def test_sustained_hpl_flops(self):
        acc = self.make()
        assert acc.sustained_hpl_flops == pytest.approx(515e9 * 0.58)

    def test_rejects_idle_above_tdp(self):
        with pytest.raises(SpecError):
            self.make(idle_watts=300.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(SpecError):
            self.make(hpl_efficiency=0.0)
        with pytest.raises(SpecError):
            self.make(hpl_efficiency=1.5)
