"""Perf-watch: schema, registry, runner, statistical baselines, reports.

The load-bearing guarantees:

* records serialize canonically — identical content yields an identical
  SHA-256 key, so the history store is genuinely content-addressed;
* the classifier treats the edge cases as features, not accidents: first
  run (no baseline), zero-variance and single-sample histories, and
  symmetric handling of lower- and higher-is-better metrics;
* the runner enforces the declared metric contract exactly — silent
  metric drift raises instead of recording garbage;
* verdicts are deterministic (seeded bootstrap): the same history and
  new value always classify the same way.
"""

import json

import pytest

from repro.exceptions import PerfWatchError
from repro.perfwatch import (
    BenchRecord,
    BenchScenario,
    HistoryStore,
    MetricSpec,
    MetricValue,
    Verdict,
    build_report,
    classify_record,
    classify_value,
    discover,
    environment_fingerprint,
    get_scenario,
    overall_verdict,
    record_from_dict,
    record_key,
    record_to_dict,
    render_compare,
    render_report,
    report_to_dict,
    run_scenario,
    scenarios,
    utc_timestamp,
)
from repro.perfwatch import registry as registry_mod


def make_record(scenario_id="toy.scn", wall=(1.0, 1.1, 0.9), metrics=None, ts=1_700_000_000.0):
    """A small, fully-populated record for store/classifier tests."""
    unix, iso = utc_timestamp(ts)
    return BenchRecord(
        scenario_id=scenario_id,
        tier="quick",
        params={"n": 4},
        repeats=len(wall),
        wall_s=tuple(wall),
        cpu_s=tuple(wall),
        metrics={
            name: MetricValue(value=value, direction=direction)
            for name, (value, direction) in (metrics or {}).items()
        },
        environment={"python": "3.x", "machine": "test"},
        library_version="1.3.0",
        timestamp_unix=unix,
        timestamp_utc=iso,
    )


@pytest.fixture
def fresh_registry():
    """Run a test against an empty registry, restoring the real one after."""
    saved = dict(registry_mod._REGISTRY)
    registry_mod.clear_registry()
    yield
    registry_mod.clear_registry()
    registry_mod._REGISTRY.update(saved)


class TestSchema:
    def test_record_round_trip(self):
        record = make_record(metrics={"gflops": (12.5, "higher")})
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt == record

    def test_record_key_is_a_content_address(self):
        a = make_record(ts=1_700_000_000.0)
        b = make_record(ts=1_700_000_000.0)
        assert record_key(a) == record_key(b)
        # timestamps are part of the content: a rerun is a new record
        later = make_record(ts=1_700_000_001.0)
        assert record_key(later) != record_key(a)

    def test_canonical_json_is_sorted_and_compact(self):
        from repro.perfwatch import canonical_json

        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_version_gate_rejects_future_records(self):
        data = record_to_dict(make_record())
        data["perfwatch_version"] = 99
        with pytest.raises(PerfWatchError, match="version"):
            record_from_dict(data)

    def test_malformed_record_raises_perfwatch_error(self):
        data = record_to_dict(make_record())
        del data["wall_s"]
        with pytest.raises(PerfWatchError, match="malformed"):
            record_from_dict(data)

    def test_sample_count_must_match_repeats(self):
        unix, iso = utc_timestamp(0.0)
        with pytest.raises(PerfWatchError, match="samples"):
            BenchRecord(
                scenario_id="x", tier="quick", params={}, repeats=3,
                wall_s=(1.0,), cpu_s=(1.0,), metrics={}, environment={},
                library_version="1", timestamp_unix=unix, timestamp_utc=iso,
            )

    def test_metric_spec_rejects_unknown_direction(self):
        with pytest.raises(PerfWatchError, match="direction"):
            MetricSpec("x", direction="sideways")

    def test_baseline_metrics_lead_with_wall_time(self):
        record = make_record(
            wall=(2.0, 1.5, 1.8),
            metrics={"z_metric": (5.0, "higher"), "a_metric": (1.0, "lower")},
        )
        names = list(record.baseline_metrics())
        assert names == ["wall_s", "a_metric", "z_metric"]
        value, direction = record.baseline_metrics()["wall_s"]
        assert value == 1.5 and direction == "lower"

    def test_utc_timestamp_renders_iso_z(self):
        unix, iso = utc_timestamp(0.0)
        assert unix == 0.0
        assert iso == "1970-01-01T00:00:00Z"

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) >= {"python", "platform", "machine", "cpu_count", "numpy"}


class TestRegistry:
    def test_bad_scenario_id_rejected(self):
        with pytest.raises(PerfWatchError, match="scenario id"):
            BenchScenario(scenario_id="-bad", fn=lambda: None)

    def test_wall_s_metric_name_is_reserved(self):
        with pytest.raises(PerfWatchError, match="reserved"):
            BenchScenario(
                scenario_id="ok", fn=lambda: None, metrics=(MetricSpec("wall_s"),)
            )

    def test_reregistration_same_source_replaces(self, fresh_registry):
        scn = BenchScenario(scenario_id="dup", fn=lambda: None, source="/a.py")
        registry_mod.register(scn)
        replacement = BenchScenario(
            scenario_id="dup", fn=lambda: None, repeats=7, source="/a.py"
        )
        registry_mod.register(replacement)
        assert get_scenario("dup").repeats == 7

    def test_reregistration_different_source_raises(self, fresh_registry):
        registry_mod.register(
            BenchScenario(scenario_id="dup", fn=lambda: None, source="/a.py")
        )
        with pytest.raises(PerfWatchError, match="already registered"):
            registry_mod.register(
                BenchScenario(scenario_id="dup", fn=lambda: None, source="/b.py")
            )

    def test_unknown_scenario_lists_registered(self, fresh_registry):
        registry_mod.register(BenchScenario(scenario_id="known", fn=lambda: None))
        with pytest.raises(PerfWatchError, match="known"):
            get_scenario("missing")

    def test_tier_filter_and_validation(self, fresh_registry):
        registry_mod.register(
            BenchScenario(scenario_id="a", fn=lambda: None, tier="quick")
        )
        registry_mod.register(
            BenchScenario(scenario_id="b", fn=lambda: None, tier="full")
        )
        assert [s.scenario_id for s in scenarios(tier="quick")] == ["a"]
        with pytest.raises(PerfWatchError, match="tier"):
            scenarios(tier="nightly")

    def test_discover_collects_scenarios_and_reports_bad_files(
        self, fresh_registry, tmp_path
    ):
        (tmp_path / "bench_disc_good.py").write_text(
            "from repro.perfwatch import MetricSpec, scenario\n"
            "@scenario('disc.good', metrics=(MetricSpec('m'),))\n"
            "def good():\n"
            "    return {'m': 1.0}\n"
        )
        (tmp_path / "bench_disc_broken.py").write_text("raise RuntimeError('boom')\n")
        found, errors = discover(tmp_path)
        assert "disc.good" in [s.scenario_id for s in found]
        assert errors == [("bench_disc_broken.py", "RuntimeError: boom")]


class TestRunner:
    def test_run_scenario_records_declared_metrics(self, fresh_registry):
        calls = []

        def fn(n):
            calls.append(n)
            return {"total": float(n)}

        scn = BenchScenario(
            scenario_id="run.basic",
            fn=fn,
            params={"n": 3},
            repeats=2,
            metrics=(MetricSpec("total", direction="higher"),),
        )
        record = run_scenario(scn)
        assert calls == [3, 3]
        assert record.repeats == 2 and len(record.wall_s) == 2
        assert record.metrics["total"].value == 3.0
        assert record.metrics["total"].direction == "higher"
        assert record.profile is None
        assert record.timestamp_utc.endswith("Z")

    def test_setup_state_is_built_once_and_threaded_through(self, fresh_registry):
        built = []

        def setup():
            built.append(True)
            return {"base": 10}

        scn = BenchScenario(
            scenario_id="run.setup",
            fn=lambda state, k: {"out": float(state["base"] + k)},
            setup=setup,
            params={"k": 5},
            repeats=3,
            metrics=(MetricSpec("out"),),
        )
        record = run_scenario(scn)
        assert built == [True]
        assert record.metrics["out"].value == 15.0

    def test_metric_drift_raises(self, fresh_registry):
        scn = BenchScenario(
            scenario_id="run.drift",
            fn=lambda: {"surprise": 1.0},
            repeats=1,
            metrics=(MetricSpec("declared"),),
        )
        with pytest.raises(PerfWatchError, match="declared"):
            run_scenario(scn)

    def test_profile_mode_attaches_hotspots(self, fresh_registry):
        scn = BenchScenario(
            scenario_id="run.prof",
            fn=lambda: {"m": float(sum(i * i for i in range(2000)))},
            repeats=1,
            metrics=(MetricSpec("m", direction="higher"),),
        )
        record = run_scenario(scn, profile=True, profile_top=5)
        assert record.profile is not None and len(record.profile) >= 1
        assert len(record.profile) <= 5
        row = record.profile[0]
        assert set(row) == {"func", "calls", "tottime_s", "cumtime_s"}
        # profile payload survives the canonical round trip
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt.profile == record.profile


class TestClassifier:
    def test_first_run_has_no_baseline(self):
        verdict = classify_value([], 1.23)
        assert verdict.verdict is Verdict.NO_BASELINE
        assert verdict.baseline_n == 0
        assert verdict.ci_low is None and verdict.ci_high is None

    def test_zero_variance_baseline_exact_match_is_stable(self):
        verdict = classify_value([2.0, 2.0, 2.0, 2.0], 2.0)
        assert verdict.verdict is Verdict.STABLE
        assert verdict.ci_low == verdict.ci_high == 2.0

    def test_zero_variance_baseline_big_shift_still_classifies(self):
        slower = classify_value([2.0, 2.0, 2.0], 3.0, direction="lower")
        faster = classify_value([2.0, 2.0, 2.0], 1.0, direction="lower")
        assert slower.verdict is Verdict.REGRESSED
        assert faster.verdict is Verdict.IMPROVED

    def test_single_sample_history_tolerates_min_effect_band(self):
        # 3% off a one-sample baseline sits inside the 5% min-effect band
        assert classify_value([1.00], 1.03).verdict is Verdict.STABLE
        # 20% off does not
        assert classify_value([1.00], 1.20).verdict is Verdict.REGRESSED

    def test_direction_flip_is_symmetric(self):
        history = [10.0, 10.2, 9.8, 10.1]
        as_time = classify_value(history, 15.0, direction="lower")
        as_rate = classify_value(history, 15.0, direction="higher")
        assert as_time.verdict is Verdict.REGRESSED
        assert as_rate.verdict is Verdict.IMPROVED
        down_time = classify_value(history, 6.0, direction="lower")
        down_rate = classify_value(history, 6.0, direction="higher")
        assert down_time.verdict is Verdict.IMPROVED
        assert down_rate.verdict is Verdict.REGRESSED

    def test_verdicts_are_deterministic(self):
        history = [1.0, 1.05, 0.97, 1.02, 1.01]
        a = classify_value(history, 1.4)
        b = classify_value(history, 1.4)
        assert a == b

    def test_bad_direction_and_min_effect_rejected(self):
        with pytest.raises(PerfWatchError):
            classify_value([1.0], 1.0, direction="diagonal")
        with pytest.raises(PerfWatchError):
            classify_value([1.0], 1.0, min_effect=-0.1)

    def test_classify_record_skips_records_missing_a_metric(self):
        old_no_metric = make_record(wall=(1.0,))
        old_with_metric = make_record(
            wall=(1.0,), metrics={"gflops": (10.0, "higher")}
        )
        new = make_record(wall=(1.0,), metrics={"gflops": (10.0, "higher")})
        verdicts = {
            v.metric: v
            for v in classify_record([old_no_metric, old_with_metric], new)
        }
        assert verdicts["wall_s"].baseline_n == 2
        assert verdicts["gflops"].baseline_n == 1
        assert verdicts["gflops"].verdict is Verdict.STABLE

    def test_classify_record_respects_window_and_scenario(self):
        other = make_record(scenario_id="other.scn", wall=(99.0,))
        history = [make_record(wall=(w,)) for w in (5.0, 5.0, 1.0, 1.0)]
        new = make_record(wall=(1.0,))
        (wall,) = classify_record(history + [other], new, window=2)
        # only the trailing two 1.0s feed the baseline: 1.0 is stable
        assert wall.baseline_n == 2
        assert wall.verdict is Verdict.STABLE

    def test_overall_verdict_severity_order(self):
        def mv(verdict):
            return classify_value([], 0.0) if verdict is Verdict.NO_BASELINE else (
                classify_value([1.0, 1.0], {
                    Verdict.STABLE: 1.0,
                    Verdict.IMPROVED: 0.5,
                    Verdict.REGRESSED: 2.0,
                }[verdict])
            )

        assert overall_verdict([]) is Verdict.NO_BASELINE
        assert overall_verdict([mv(Verdict.STABLE)]) is Verdict.STABLE
        assert (
            overall_verdict([mv(Verdict.STABLE), mv(Verdict.IMPROVED)])
            is Verdict.IMPROVED
        )
        assert (
            overall_verdict([mv(Verdict.IMPROVED), mv(Verdict.NO_BASELINE)])
            is Verdict.NO_BASELINE
        )
        assert (
            overall_verdict(
                [mv(Verdict.IMPROVED), mv(Verdict.NO_BASELINE), mv(Verdict.REGRESSED)]
            )
            is Verdict.REGRESSED
        )


class TestReport:
    def _seeded_store(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for wall in (1.0, 1.02, 0.99, 0.40):  # last run is a big improvement
            store.append(
                make_record(wall=(wall,), metrics={"gflops": (1.0 / wall, "higher")})
            )
        return store

    def test_build_report_judges_latest_against_prior(self, tmp_path):
        (report,) = build_report(self._seeded_store(tmp_path))
        assert report.scenario_id == "toy.scn"
        assert report.history_n == 3  # prior records; the latest is the judged one
        assert report.verdict is Verdict.IMPROVED
        rendered = render_report([report])
        assert "toy.scn" in rendered and "improved" in rendered

    def test_report_to_dict_is_json_ready(self, tmp_path):
        reports = build_report(self._seeded_store(tmp_path))
        payload = json.loads(json.dumps(report_to_dict(reports)))
        (entry,) = payload["scenarios"]
        assert entry["scenario"] == "toy.scn"
        assert entry["verdict"] == "improved"
        assert {m["metric"] for m in entry["metrics"]} == {"wall_s", "gflops"}

    def test_empty_report_renders_hint(self):
        assert "no history" in render_report([])
        assert report_to_dict([])["scenarios"] == []

    def test_compare_rejects_cross_scenario_records(self):
        a = make_record(scenario_id="one")
        b = make_record(scenario_id="two")
        with pytest.raises(PerfWatchError, match="different scenarios"):
            render_compare(a, b)

    def test_compare_and_single_record_report(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(make_record(wall=(1.0,)))
        (report,) = build_report(store)  # single record: nothing prior to judge
        assert report.verdict is Verdict.NO_BASELINE
        base = make_record(wall=(1.0,))
        new = make_record(wall=(0.5,), ts=1_700_000_100.0)
        rendered = render_compare(base, new)
        assert "wall_s" in rendered and "-50.0%" in rendered
