"""FleetRankingPipeline: routing, fallback, diagnostics, journal, CLI."""

import dataclasses
import json

import pytest

from repro.campaign import ClusterRef
from repro.cluster.generator import generate_fleet
from repro.exceptions import FleetError
from repro.experiments import PAPER_CONFIG
from repro.fleet import (
    FleetMember,
    FleetRankingPipeline,
    generated_fleet_members,
    parse_weight_spec,
)

QUICK = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2.0,
    iozone_target_seconds=2.0,
)


def quick_pipeline(**kwargs):
    return FleetRankingPipeline(config=QUICK, **kwargs)


class TestRouting:
    def test_generated_members_take_batched_path(self):
        members = generated_fleet_members(5, era="2011", fleet_seed=1)
        ranking = quick_pipeline().rank(members)
        assert ranking.stats["batched"] == 5
        assert ranking.stats["simulated"] == 0
        assert all(r.path == "batched" for r in ranking.rows)

    def test_accelerated_member_falls_back_to_simulation(self):
        members = generated_fleet_members(3, era="2011", fleet_seed=1)
        members.append(
            FleetMember(
                name="gpu-box",
                cluster=ClusterRef(kind="preset", name="gpu_cluster"),
                meter_seed=5,
            )
        )
        ranking = quick_pipeline().rank(members)
        assert ranking.stats["batched"] == 3
        assert ranking.stats["simulated"] == 1
        assert ranking.row("gpu-box").path == "simulated"

    def test_full_sim_forces_campaign_path(self):
        members = generated_fleet_members(3, era="2011", fleet_seed=1)
        ranking = quick_pipeline(full_sim=True, workers=1).rank(members)
        assert ranking.stats["batched"] == 0
        assert ranking.stats["simulated"] == 3
        assert all(r.path == "simulated" for r in ranking.rows)

    def test_raw_specs_rank_inline(self):
        fleet = generate_fleet(4, era="2015", seed=2)
        ranking = quick_pipeline().rank(fleet)
        assert len(ranking) == 4
        assert [r.tgi_rank for r in ranking.rows] == [1, 2, 3, 4]

    def test_raw_spec_needing_simulation_rejected(self):
        from repro.cluster import presets

        with pytest.raises(FleetError):
            quick_pipeline().rank([presets.gpu_cluster()])

    def test_batched_and_sim_agree_on_rank_values(self):
        """Same fleet through both legs: TGI within meter noise."""
        members = generated_fleet_members(4, era="2011", fleet_seed=1)
        fast = quick_pipeline().rank(members)
        slow = quick_pipeline(full_sim=True).rank(members)
        for name in (m.name for m in members):
            assert fast.row(name).tgi == pytest.approx(
                slow.row(name).tgi, rel=0.15
            )


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(FleetError):
            quick_pipeline().rank([])

    def test_duplicate_names_rejected(self):
        fleet = generate_fleet(2, era="2011", seed=3)
        with pytest.raises(FleetError):
            quick_pipeline().rank([fleet[0], fleet[0]])

    def test_reserved_reference_name_rejected(self):
        spec = generate_fleet(1, era="2011", seed=3)[0]
        clone = dataclasses.replace(spec, name="reference", topology=spec.topology)
        with pytest.raises(FleetError):
            quick_pipeline().rank([clone])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(FleetError):
            quick_pipeline(chunk_size=0)

    def test_chunking_is_value_invariant(self):
        members = generated_fleet_members(7, era="2011", fleet_seed=9)
        whole = quick_pipeline().rank(members)
        chunked = quick_pipeline(chunk_size=2).rank(members)
        assert [r.name for r in whole.rows] == [r.name for r in chunked.rows]
        for a, b in zip(whole.rows, chunked.rows):
            assert a.tgi == b.tgi


class TestWeights:
    def test_parse_weight_spec_normalizes(self):
        weights = parse_weight_spec("HPL=2,STREAM=1,IOzone=1")
        assert weights["HPL"] == pytest.approx(0.5)
        assert sum(weights.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", ["", "HPL", "HPL=x", "HPL=-1,STREAM=0,IOzone=0"])
    def test_bad_weight_specs_rejected(self, bad):
        with pytest.raises(FleetError):
            parse_weight_spec(bad)

    def test_weights_change_the_ranking_inputs(self):
        members = generated_fleet_members(6, era="2011", fleet_seed=2)
        equal = quick_pipeline().rank(members)
        hpl_only = quick_pipeline(weights={"HPL": 1.0}).rank(members)
        # All weight on HPL makes TGI rank collapse onto the FLOPS/W rank.
        assert all(r.moved == 0 for r in hpl_only.rows)
        assert equal.weights["HPL"] == pytest.approx(1 / 3)
        assert hpl_only.weights == {"HPL": 1.0}

    def test_row_tgi_is_weighted_ree_sum(self):
        members = generated_fleet_members(3, era="2011", fleet_seed=2)
        ranking = quick_pipeline().rank(members)
        for row in ranking.rows:
            expected = sum(
                ranking.weights[b] * row.ree[b] for b in ranking.weights
            )
            assert row.tgi == pytest.approx(expected, rel=1e-12)


class TestDiagnostics:
    def test_healthy_fleet_has_full_diagnostics(self):
        members = generated_fleet_members(8, era="2011", fleet_seed=5)
        diag = quick_pipeline().rank(members).diagnostics
        assert diag.spearman_rho is not None
        assert -1.0 <= diag.spearman_rho <= 1.0
        assert diag.pearson_ci is not None
        assert diag.pearson_ci.low <= diag.pearson_r <= diag.pearson_ci.high
        assert diag.tgi_mean_ci is not None
        assert diag.notes == ()

    def test_clone_fleet_degrades_gracefully(self):
        """Memoized identical systems: constant scores must not NaN out."""
        spec = generate_fleet(1, era="2011", seed=4)[0]
        clones = [
            dataclasses.replace(spec, name=f"c{i}", topology=spec.topology)
            for i in range(4)
        ]
        ranking = quick_pipeline().rank(clones)
        diag = ranking.diagnostics
        # Ranks are still a deterministic permutation (name tie-break), so
        # Spearman survives; the value-space Pearson is degenerate and says so.
        assert diag.spearman_rho is not None
        assert diag.pearson_r is None
        assert any("pearson" in note for note in diag.notes)
        # The constant-TGI mean interval collapses to a point.
        assert diag.tgi_mean_ci is not None
        assert diag.tgi_mean_ci.low == diag.tgi_mean_ci.high

    def test_as_dict_is_json_compatible(self):
        members = generated_fleet_members(4, era="2011", fleet_seed=5)
        payload = quick_pipeline().rank(members).as_dict()
        parsed = json.loads(json.dumps(payload))
        assert len(parsed["rows"]) == 4
        assert parsed["rows"][0]["tgi_rank"] == 1
        assert set(parsed["weights"]) == {"HPL", "STREAM", "IOzone"}


class TestJournalIntegration:
    def test_fleet_ranked_event_emitted(self, tmp_path):
        journal = tmp_path / "fleet.jsonl"
        members = generated_fleet_members(3, era="2011", fleet_seed=1)
        quick_pipeline(journal=journal).rank(members)
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        ranked = [e for e in events if e["event"] == "fleet.ranked"]
        assert len(ranked) == 1
        assert ranked[0]["systems"] == 3
        assert ranked[0]["batched"] == 3
        assert ranked[0]["simulated"] == 0
        assert ranked[0]["wall_s"] > 0
        # The pipeline finalized its own journal: summary sidecar exists.
        assert journal.with_name("fleet.jsonl.summary.json").exists()

    def test_campaign_leg_events_share_the_journal(self, tmp_path):
        journal = tmp_path / "fleet.jsonl"
        members = generated_fleet_members(2, era="2011", fleet_seed=1)
        quick_pipeline(journal=journal, full_sim=True).rank(members)
        kinds = {
            json.loads(line)["event"]
            for line in journal.read_text().splitlines()
        }
        assert "fleet.ranked" in kinds
        assert "job.completed" in kinds

    def test_cache_reused_across_rankings(self, tmp_path):
        members = generated_fleet_members(2, era="2011", fleet_seed=1)
        pipe = quick_pipeline(full_sim=True, cache_dir=tmp_path / "cache")
        first = pipe.rank(members)
        second = pipe.rank(members)
        assert first.stats["cache_hits"] == 0
        assert second.stats["cache_hits"] == 3  # 2 systems + reference


class TestCLI:
    def test_fleet_rank_json_round_trip(self, capsys):
        from repro.cli import main

        code = main(
            ["--quiet", "fleet", "rank", "--count", "5", "--fleet-seed", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 5
        assert payload["stats"]["batched"] == 5
        assert payload["rows"][0]["tgi_rank"] == 1

    def test_fleet_rank_table_mode(self, capsys):
        from repro.cli import main

        code = main(["--quiet", "fleet", "rank", "--count", "4", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TGI rank" in out
        assert "MFLOPS/W" in out

    def test_weights_and_reference_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "--quiet",
                "fleet",
                "rank",
                "--count",
                "3",
                "--weights",
                "HPL=1",
                "--reference",
                "fire",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["weights"] == {"HPL": 1.0}
        assert payload["reference"] == "Fire"

    def test_bad_reference_spec_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["--quiet", "fleet", "rank", "--reference", "fire:zz"]) == 1
