"""Weighting-scheme tests (Eqs. 6, 9-12)."""

import pytest

from repro.core import (
    ArithmeticMeanWeights,
    CustomWeights,
    EnergyWeights,
    PowerWeights,
    TimeWeights,
    validate_weights,
)
from repro.exceptions import WeightError


@pytest.fixture
def suite_result(quick_suite, executor):
    return quick_suite.run(executor, 32)


class TestValidateWeights:
    def test_accepts_valid(self):
        validate_weights({"a": 0.5, "b": 0.5})

    def test_rejects_sum_off_one(self):
        with pytest.raises(WeightError):
            validate_weights({"a": 0.5, "b": 0.6})

    def test_rejects_negative(self):
        with pytest.raises(WeightError):
            validate_weights({"a": -0.5, "b": 1.5})

    def test_rejects_empty(self):
        with pytest.raises(WeightError):
            validate_weights({})

    def test_allows_zero_weight(self):
        validate_weights({"a": 0.0, "b": 1.0})


class TestArithmeticMean:
    def test_equal_thirds(self, suite_result):
        weights = ArithmeticMeanWeights().weights(suite_result)
        assert all(w == pytest.approx(1 / 3) for w in weights.values())

    def test_covers_all_members(self, suite_result):
        assert set(ArithmeticMeanWeights().weights(suite_result)) == set(
            suite_result.names
        )


class TestMeasuredWeights:
    def test_time_weights_proportional(self, suite_result):
        weights = TimeWeights().weights(suite_result)
        times = suite_result.times_s
        total = sum(times.values())
        for name in times:
            assert weights[name] == pytest.approx(times[name] / total)

    def test_energy_weights_proportional(self, suite_result):
        weights = EnergyWeights().weights(suite_result)
        energies = suite_result.energies_j
        total = sum(energies.values())
        for name in energies:
            assert weights[name] == pytest.approx(energies[name] / total)

    def test_power_weights_proportional(self, suite_result):
        weights = PowerWeights().weights(suite_result)
        powers = suite_result.powers_w
        total = sum(powers.values())
        for name in powers:
            assert weights[name] == pytest.approx(powers[name] / total)

    def test_all_sum_to_one(self, suite_result):
        for scheme in (TimeWeights(), EnergyWeights(), PowerWeights()):
            assert sum(scheme.weights(suite_result).values()) == pytest.approx(1.0)

    def test_scheme_names(self):
        assert ArithmeticMeanWeights().name == "arithmetic-mean"
        assert TimeWeights().name == "time"
        assert EnergyWeights().name == "energy"
        assert PowerWeights().name == "power"


class TestCustomWeights:
    def test_fixed_weights_returned(self, suite_result):
        scheme = CustomWeights({"HPL": 0.2, "STREAM": 0.5, "IOzone": 0.3})
        assert scheme.weights(suite_result)["STREAM"] == 0.5

    def test_memory_heavy_use_case(self, suite_result):
        """Section II's example: weight memory highest for a memory-bound
        application."""
        scheme = CustomWeights({"HPL": 0.1, "STREAM": 0.8, "IOzone": 0.1})
        weights = scheme.weights(suite_result)
        assert max(weights, key=weights.get) == "STREAM"

    def test_invalid_at_construction(self):
        with pytest.raises(WeightError):
            CustomWeights({"HPL": 0.9})

    def test_coverage_mismatch_at_use(self, suite_result):
        scheme = CustomWeights({"HPL": 0.5, "STREAM": 0.5})
        with pytest.raises(WeightError):
            scheme.weights(suite_result)
