"""Fault-tolerance tests: containment, retries, degradation, determinism.

The failure paths the fault-tolerance layer must survive:

* deterministic fault models (same seed -> same faults, any process);
* retry-then-succeed (payload identical to a clean run's) and
  retry-exhausted (structured error, surviving jobs unharmed);
* fail-fast vs. keep-going policy, serial and pooled;
* mid-stream pool death (fallback re-executes only uncollected jobs);
* per-job wall time measured inside the worker;
* partial suites -> renormalized weights -> coverage-annotated TGI;
* atomic perfwatch/manifest writes (no corruption on a failed write).

CI runs this module under a 2-worker pool with ``--retries 2`` semantics
via ``TGI_FAULT_WORKERS`` / ``TGI_FAULT_RETRIES`` (defaults 2/2 locally).
"""

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignRunner, cache_key, execute_job, paper_jobs
from repro.campaign import runner as runner_module
from repro.campaign.manifest import manifest_core
from repro.core import (
    CustomWeights,
    ReferenceSet,
    TGICalculator,
    renormalize_weights,
    validate_weights,
)
from repro.exceptions import (
    BenchmarkError,
    CampaignExecutionError,
    FaultInjectionError,
    MetricError,
    NodeCrashFault,
    ReproError,
    TransientFault,
    WeightError,
)
from repro.faults import FaultInjector, FaultPlan, plan_from_dict, plan_to_dict
from repro.experiments import PAPER_CONFIG

#: Pool width / retry budget; CI pins these to the ISSUE's drill values.
WORKERS = int(os.environ.get("TGI_FAULT_WORKERS", "2"))
RETRIES = int(os.environ.get("TGI_FAULT_RETRIES", "2"))

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    core_counts=(16, 32),
    hpl_problem_size=4480,
    hpl_rounds=2,
    stream_target_seconds=5,
    iozone_target_seconds=5,
)


def quick_jobs():
    return paper_jobs(QUICK_CONFIG)


def with_faults(job, **plan_fields):
    return dataclasses.replace(job, faults=FaultPlan(**plan_fields))


@pytest.fixture(scope="module")
def clean_run():
    """One clean serial campaign shared by payload-equality tests."""
    return CampaignRunner(workers=1).run(quick_jobs())


# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_default_plan_injects_nothing(self):
        assert not FaultPlan().injects_anything

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(transient_failures=-1)
        with pytest.raises(FaultInjectionError):
            FaultPlan(transient_probability=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(meter_dropout=1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(containment="rack")

    def test_round_trip(self):
        plan = FaultPlan(
            transient_failures=2,
            meter_dropout=0.25,
            node_crash_probability=0.1,
            containment="benchmark",
            seed=99,
        )
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_plan_changes_cache_key(self):
        job = quick_jobs()[0]
        faulted = with_faults(job, transient_failures=1)
        assert cache_key(job) != cache_key(faulted)


class TestFaultDeterminism:
    def test_transient_counter_is_exact(self):
        plan = FaultPlan(transient_failures=2, seed=5)
        for attempt in (0, 1):
            with pytest.raises(TransientFault):
                FaultInjector(plan, scope="j", attempt=attempt).check_transient()
        FaultInjector(plan, scope="j", attempt=2).check_transient()

    def test_flaky_coin_is_seed_deterministic(self):
        plan = FaultPlan(transient_probability=0.5, seed=17)

        def outcomes():
            result = []
            for attempt in range(12):
                injector = FaultInjector(plan, scope="job-a", attempt=attempt)
                try:
                    injector.check_transient()
                    result.append(True)
                except TransientFault:
                    result.append(False)
            return result

        first = outcomes()
        assert first == outcomes()  # same seed -> same fate per attempt
        assert True in first and False in first  # p=0.5 mixes over 12 draws

    def test_crash_sequence_is_seed_deterministic(self):
        plan = FaultPlan(node_crash_probability=0.5, seed=23)

        def crash_pattern():
            injector = FaultInjector(plan, scope="j", attempt=0)
            pattern = []
            for run in range(10):
                try:
                    injector.maybe_crash(label=f"run{run}", makespan=10.0, num_nodes=8)
                    pattern.append(None)
                except NodeCrashFault as exc:
                    pattern.append(str(exc))
            return pattern

        assert crash_pattern() == crash_pattern()

    def test_different_seeds_differ(self):
        def pattern(seed):
            injector = FaultInjector(
                FaultPlan(node_crash_probability=0.5, seed=seed), scope="j"
            )
            fates = []
            for run in range(12):
                try:
                    injector.maybe_crash(label="r", makespan=1.0, num_nodes=4)
                    fates.append(False)
                except NodeCrashFault:
                    fates.append(True)
            return fates

        assert pattern(1) != pattern(2)

    def test_meter_dropout_spec(self):
        from repro.power.meter import WATTS_UP_PRO

        injector = FaultInjector(FaultPlan(meter_dropout=0.3, seed=1), scope="j")
        spec = injector.meter_spec(WATTS_UP_PRO)
        assert spec.dropout_probability == 0.3
        assert spec.name == WATTS_UP_PRO.name
        clean = FaultInjector(FaultPlan(seed=1), scope="j")
        assert clean.meter_spec(WATTS_UP_PRO) is WATTS_UP_PRO


class TestExecuteJobFaults:
    def test_transient_fails_then_succeeds_identically(self, clean_run):
        job = with_faults(quick_jobs()[0], transient_failures=1, seed=3)
        with pytest.raises(TransientFault):
            execute_job(job, attempt=0)
        payload = execute_job(job, attempt=1)
        assert payload == clean_run["reference"].payload

    def test_meter_dropout_thins_the_traces(self, clean_run):
        job = with_faults(quick_jobs()[0], meter_dropout=0.5, seed=3)
        payload = execute_job(job)
        clean_payload = clean_run["reference"].payload

        def sample_count(p):
            suites = p["sweep"]["suites"]
            return sum(
                len(r["record"]["trace_times"])
                for s in suites
                for r in s["results"]
            )

        assert sample_count(payload) < sample_count(clean_payload)

    def test_benchmark_containment_yields_partial_suite(self):
        job = with_faults(
            quick_jobs()[1],
            node_crash_probability=0.4,
            containment="benchmark",
            seed=11,
        )
        payload = execute_job(job)
        names = [
            [r["benchmark"] for r in s["results"]]
            for s in payload["sweep"]["suites"]
        ]
        assert any(len(n) < 3 for n in names)  # something was lost
        assert all(n for n in names)  # but never everything
        assert payload == execute_job(job)  # and deterministically so

    def test_all_benchmarks_crashing_raises(self):
        job = with_faults(
            quick_jobs()[0],
            node_crash_probability=1.0,
            containment="benchmark",
            seed=1,
        )
        with pytest.raises(BenchmarkError):
            execute_job(job)


# ---------------------------------------------------------------------------
class TestRetries:
    def test_retry_then_succeed(self, clean_run):
        jobs = quick_jobs()
        jobs[0] = with_faults(jobs[0], transient_failures=1, seed=3)
        result = CampaignRunner(workers=1, retries=RETRIES).run(jobs)
        outcome = result["reference"]
        assert outcome.ok and outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.retries == 1
        assert outcome.payload == clean_run["reference"].payload
        assert result.manifest["failures"]["jobs_retried"] == 1
        assert result.manifest["failures"]["retries_total"] == 1

    def test_retry_exhausted_keep_going(self):
        jobs = quick_jobs()
        jobs[0] = with_faults(jobs[0], transient_failures=RETRIES + 5, seed=3)
        result = CampaignRunner(workers=1, retries=RETRIES, keep_going=True).run(jobs)
        outcome = result["reference"]
        assert not outcome.ok
        assert outcome.status == "failed"
        assert outcome.payload is None
        assert outcome.attempts == RETRIES + 1
        assert outcome.error["type"] == "TransientFault"
        assert "traceback" in outcome.error
        with pytest.raises(ReproError):
            outcome.sweep
        # the surviving job is untouched
        assert result["fire-sweep"].ok
        assert result.manifest["failures"]["jobs_failed"] == 1
        assert [o.job.job_id for o in result.failed] == ["reference"]

    def test_fail_fast_raises_with_structured_failures(self):
        jobs = quick_jobs()
        jobs[0] = with_faults(jobs[0], transient_failures=99, seed=3)
        with pytest.raises(CampaignExecutionError) as excinfo:
            CampaignRunner(workers=1).run(jobs)
        failures = excinfo.value.failures
        assert failures[0]["job_id"] == "reference"
        assert failures[0]["error"]["type"] == "TransientFault"

    def test_pool_and_serial_keep_going_manifests_agree(self):
        jobs = quick_jobs()
        jobs[0] = with_faults(jobs[0], transient_failures=99, seed=3)
        serial = CampaignRunner(workers=1, keep_going=True).run(jobs)
        pooled = CampaignRunner(workers=WORKERS, keep_going=True).run(jobs)
        assert json.dumps(
            manifest_core(serial.manifest), sort_keys=True
        ) == json.dumps(manifest_core(pooled.manifest), sort_keys=True)
        assert pooled["reference"].status == "failed"
        assert pooled["fire-sweep"].ok

    def test_retry_backoff_is_seeded_and_exponential(self):
        delays_a = [
            runner_module._retry_delay(0.1, attempt, 7, "job") for attempt in (1, 2, 3)
        ]
        delays_b = [
            runner_module._retry_delay(0.1, attempt, 7, "job") for attempt in (1, 2, 3)
        ]
        assert delays_a == delays_b  # same seed -> same jitter
        assert delays_a != [
            runner_module._retry_delay(0.1, attempt, 8, "job") for attempt in (1, 2, 3)
        ]
        # exponential envelope: attempt k lies in [0.5, 1.5) * base * 2^(k-1)
        for k, delay in enumerate(delays_a, start=1):
            assert 0.05 * 2 ** (k - 1) <= delay < 0.15 * 2 ** (k - 1)
        assert runner_module._retry_delay(0.0, 1, 7, "job") == 0.0


# ---------------------------------------------------------------------------
class _DyingPool:
    """A ProcessPoolExecutor stand-in that dies after the first result."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def shutdown(self, **kwargs):
        pass

    def map(self, fn, iterable):
        items = list(iterable)
        yield fn(items[0])
        raise OSError("simulated pool death after one result")


class TestPoolDeath:
    def test_fallback_only_runs_uncollected_jobs(self, monkeypatch, clean_run):
        calls = []
        real_attempt = runner_module._attempt_job

        def counting_attempt(job, **kwargs):
            calls.append(job.job_id)
            return real_attempt(job, **kwargs)

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _DyingPool)
        monkeypatch.setattr(runner_module, "_attempt_job", counting_attempt)
        result = CampaignRunner(workers=WORKERS).run(quick_jobs())
        # Job 0 ran inside the fake pool (inline, so it was counted once);
        # only job 1 may run again on the serial fallback — the bug was
        # re-executing *everything* still marked pending.
        assert calls.count("reference") == 1
        assert calls.count("fire-sweep") == 1
        assert result.ok
        assert result["reference"].payload == clean_run["reference"].payload

    def test_worker_measured_wall_times(self):
        result = CampaignRunner(workers=WORKERS).run(quick_jobs())
        for outcome in result:
            # Worker-side perf_counter timing: strictly positive, and not
            # the parent's inter-arrival bookkeeping (which could be ~0 for
            # the second job of a two-job pool).
            assert outcome.wall_s > 0.01


# ---------------------------------------------------------------------------
class TestPartialTGI:
    @pytest.fixture(scope="class")
    def reference(self, clean_run):
        return ReferenceSet.from_suite_result(
            clean_run.suite("reference"), system_name="SystemG"
        )

    @pytest.fixture(scope="class")
    def partial_point(self):
        job = with_faults(
            quick_jobs()[1],
            node_crash_probability=0.4,
            containment="benchmark",
            seed=11,
        )
        result = CampaignRunner(keep_going=True).run(
            [quick_jobs()[0], job]
        )
        sweep = result.sweep("fire-sweep")
        for suite in sweep.suites:
            if 0 < len(suite.names) < 3:
                return suite
        pytest.fail("fault plan produced no partial suite point")

    def test_strict_calculator_rejects_partial(self, reference, partial_point):
        with pytest.raises(MetricError):
            TGICalculator(reference).compute(partial_point)

    def test_partial_coverage_and_renormalized_weights(
        self, reference, partial_point
    ):
        tgi = TGICalculator(reference, allow_partial=True).compute(partial_point)
        assert tgi.coverage == pytest.approx(len(partial_point.names) / 3)
        assert not tgi.complete
        assert set(tgi.missing) == set(reference.benchmarks) - set(
            partial_point.names
        )
        validate_weights(tgi.weights)  # Section II holds over the survivors
        assert "partial" in str(tgi)

    def test_full_suite_has_unit_coverage(self, reference, clean_run):
        suite = clean_run.sweep("fire-sweep").suites[-1]
        tgi = TGICalculator(reference, allow_partial=True).compute(suite)
        assert tgi.coverage == 1.0 and tgi.complete and tgi.missing == ()

    def test_custom_weights_renormalize(self, reference, partial_point):
        weights = CustomWeights(
            {"HPL": 0.5, "STREAM": 0.3, "IOzone": 0.2}, name="app-mix"
        )
        tgi = TGICalculator(
            reference, weighting=weights, allow_partial=True
        ).compute(partial_point)
        survivors = partial_point.names
        original = {"HPL": 0.5, "STREAM": 0.3, "IOzone": 0.2}
        mass = sum(original[n] for n in survivors)
        for name in survivors:
            assert tgi.weights[name] == pytest.approx(original[name] / mass)

    def test_renormalize_weights_explicit(self):
        out = renormalize_weights(
            {"HPL": 0.5, "STREAM": 0.3, "IOzone": 0.2}, ["HPL", "STREAM"]
        )
        assert out == {
            "HPL": pytest.approx(0.625),
            "STREAM": pytest.approx(0.375),
        }

    def test_renormalize_rejects_unknown_and_empty(self):
        with pytest.raises(WeightError):
            renormalize_weights({"HPL": 1.0}, [])
        with pytest.raises(WeightError):
            renormalize_weights({"HPL": 1.0}, ["STREAM"])

    @given(
        weights=st.lists(
            st.floats(min_value=1e-6, max_value=1.0), min_size=2, max_size=8
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_renormalized_weights_always_validate(self, weights, data):
        names = [f"b{i}" for i in range(len(weights))]
        total = sum(weights)
        full = {n: w / total for n, w in zip(names, weights)}
        keep = data.draw(
            st.lists(st.sampled_from(names), min_size=1, unique=True)
        )
        renormalized = renormalize_weights(full, keep)
        validate_weights(renormalized)  # never raises: Σ=1, all ≥ 0
        assert set(renormalized) == set(keep)

    def test_ranking_shows_coverage_only_when_degraded(
        self, reference, partial_point, clean_run
    ):
        from repro.core import format_ranking, rank_systems

        calculator = TGICalculator(reference, allow_partial=True)
        full = clean_run.sweep("fire-sweep").suites[-1]
        mixed = format_ranking(
            rank_systems(
                [("full-sys", full), ("degraded-sys", partial_point)], calculator
            )
        )
        assert "Coverage" in mixed and "full" in mixed
        clean = format_ranking(rank_systems([("full-sys", full)], calculator))
        assert "Coverage" not in clean


# ---------------------------------------------------------------------------
class TestAtomicWrites:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        from repro.serialization import atomic_write_text

        target = tmp_path / "out.json"
        atomic_write_text(target, "{}\n")
        assert target.read_text() == "{}\n"
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        from repro import serialization

        target = tmp_path / "index.json"
        target.write_text("original")

        def boom(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(serialization.os, "replace", boom)
        with pytest.raises(OSError):
            serialization.atomic_write_text(target, "clobbered")
        assert target.read_text() == "original"
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_perfwatch_store_writes_are_atomic(self, tmp_path):
        from repro.perfwatch.store import HistoryStore, trajectory_path

        from .test_perfwatch import make_record

        store = HistoryStore(tmp_path / ".perfwatch")
        store.append(make_record())
        store.write_trajectory("toy.scn", tmp_path)
        leftovers = [
            p for p in tmp_path.rglob("*") if ".tmp." in p.name
        ]
        assert leftovers == []
        assert json.loads(trajectory_path(tmp_path, "toy.scn").read_text())


# ---------------------------------------------------------------------------
class TestCampaignCLI:
    @pytest.fixture(autouse=True)
    def quick_config(self, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "PAPER_CONFIG", QUICK_CONFIG)

    def test_transient_with_retries_records_retry(self, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "campaign",
                "--retries",
                str(RETRIES),
                "--inject",
                "reference:transient:1",
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["failures"]["jobs_retried"] == 1
        assert manifest["failures"]["retries_total"] == 1
        row = next(j for j in manifest["jobs"] if j["job_id"] == "reference")
        assert row["status"] == "ok" and row["attempts"] == 2

    def test_keep_going_with_permanent_fault_exits_three(self, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "campaign",
                "--workers",
                str(WORKERS),
                "--retries",
                "1",
                "--keep-going",
                "--inject",
                "fire-sweep:flaky:1.0",
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "failed" in captured.err
        manifest = json.loads(manifest_path.read_text())
        assert manifest["failures"]["jobs_failed"] == 1
        statuses = {j["job_id"]: j["status"] for j in manifest["jobs"]}
        assert statuses == {"reference": "ok", "fire-sweep": "failed"}

    def test_degraded_tgi_is_coverage_annotated(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--keep-going",
                "--inject",
                "fire-sweep:benchmark-crash:0.4",
                "--fault-seed",
                "11",
            ]
        )
        assert code == 0  # benchmark containment: the job itself survives
        captured = capsys.readouterr()
        assert "TGI vs" in captured.out
        assert "degraded" in captured.err  # the warning names the damage

    def test_fail_fast_exits_one(self, capsys):
        from repro.cli import main

        code = main(
            ["campaign", "--fail-fast", "--inject", "reference:transient:99"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_inject_spec_exits_one(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--inject", "nonsense"]) == 1
        assert main(["campaign", "--inject", "reference:meteor-strike"]) == 1
        assert main(["campaign", "--inject", "no-such-job:transient"]) == 1

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupt)
        assert cli.main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err
