"""Energy-attribution tests: the per-component breakdown of a run."""

import pytest

from repro.benchmarks import HPLBenchmark, IOzoneBenchmark, StreamBenchmark
from repro.cluster import presets
from repro.power.meter import PERFECT_METER, WallPlugMeter
from repro.sim import ClusterExecutor, breadth_first_placement, RankProgram, compute_phase, idle_phase


@pytest.fixture
def exact_executor(fire):
    return ClusterExecutor(fire, meter=WallPlugMeter(PERFECT_METER, rng=0))


class TestBreakdownConservation:
    def test_components_sum_to_true_energy(self, exact_executor):
        result = HPLBenchmark(sizing=("fixed", 8960), rounds=2).run(exact_executor, 64)
        breakdown = result.record.energy_breakdown
        assert sum(breakdown.values()) == pytest.approx(
            result.record.true_energy_j, rel=1e-9
        )

    def test_expected_component_keys(self, exact_executor):
        result = StreamBenchmark(target_seconds=10).run(exact_executor, 32)
        breakdown = result.record.energy_breakdown
        assert set(breakdown) == {"base", "cpu", "memory", "storage", "nic", "psu_loss"}

    def test_gpu_runs_include_accelerators(self):
        gpu = presets.gpu_cluster()
        executor = ClusterExecutor(gpu, meter=WallPlugMeter(PERFECT_METER, rng=0))
        result = HPLBenchmark(sizing=("fixed", 8960), rounds=1).run(
            executor, gpu.total_cores
        )
        breakdown = result.record.energy_breakdown
        assert "accelerators" in breakdown
        # the Fermi cards dominate a GPU node's HPL energy
        assert breakdown["accelerators"] > breakdown["cpu"]

    def test_all_components_positive(self, exact_executor):
        result = IOzoneBenchmark(target_seconds=10).run(exact_executor, 4)
        assert all(v > 0 for v in result.record.energy_breakdown.values())


class TestBreakdownShape:
    def test_cpu_dominates_hpl_dynamic_energy(self, exact_executor):
        result = HPLBenchmark(sizing=("fixed", 8960), rounds=2).run(exact_executor, 128)
        breakdown = result.record.energy_breakdown
        assert breakdown["cpu"] > breakdown["memory"]
        assert breakdown["cpu"] > breakdown["storage"]

    def test_memory_share_larger_in_stream_than_hpl(self, exact_executor):
        hpl = HPLBenchmark(sizing=("fixed", 8960), rounds=2).run(exact_executor, 128)
        stream = StreamBenchmark(target_seconds=10).run(exact_executor, 128)

        def memory_share(result):
            breakdown = result.record.energy_breakdown
            return breakdown["memory"] / sum(breakdown.values())

        assert memory_share(stream) > memory_share(hpl)

    def test_idle_nodes_attributed(self, fire, exact_executor):
        """A 1-node IOzone run still books the other 7 nodes' idle energy."""
        result = IOzoneBenchmark(target_seconds=10).run(exact_executor, 1)
        breakdown = result.record.energy_breakdown
        # base power alone: >= 8 nodes x 45 W x 10 s
        assert breakdown["base"] >= 8 * 45.0 * 10.0 * 0.99

    def test_psu_loss_fraction_realistic(self, exact_executor):
        result = HPLBenchmark(sizing=("fixed", 8960), rounds=2).run(exact_executor, 64)
        breakdown = result.record.energy_breakdown
        loss_fraction = breakdown["psu_loss"] / sum(breakdown.values())
        assert 0.05 < loss_fraction < 0.3

    def test_active_node_metering_books_fewer_nodes(self, fire):
        system = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="system"
        )
        active = ClusterExecutor(
            fire, meter=WallPlugMeter(PERFECT_METER, rng=0), metering="active-nodes"
        )
        bench = IOzoneBenchmark(target_seconds=10)
        full = bench.run(system, 1).record.energy_breakdown
        partial = bench.run(active, 1).record.energy_breakdown
        assert partial["base"] < 0.2 * full["base"]
