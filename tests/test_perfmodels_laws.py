"""Amdahl/Gustafson/roofline helper tests."""

import pytest

from repro.exceptions import MetricError
from repro.perfmodels import (
    RooflineModel,
    amdahl_speedup,
    arithmetic_intensity,
    gustafson_speedup,
    karp_flatt_serial_fraction,
    parallel_efficiency,
)


class TestAmdahl:
    def test_no_serial_fraction_is_ideal(self):
        assert amdahl_speedup(0.0, 16) == pytest.approx(16.0)

    def test_all_serial_is_one(self):
        assert amdahl_speedup(1.0, 16) == pytest.approx(1.0)

    def test_classic_value(self):
        # 5% serial, 16 processors -> ~9.14x
        assert amdahl_speedup(0.05, 16) == pytest.approx(16 / (0.05 * 16 + 0.95))

    def test_bounded_by_inverse_serial_fraction(self):
        assert amdahl_speedup(0.1, 10_000) < 10.0


class TestGustafson:
    def test_no_serial_fraction(self):
        assert gustafson_speedup(0.0, 64) == pytest.approx(64.0)

    def test_exceeds_amdahl_for_scaled_problems(self):
        s, p = 0.1, 64
        assert gustafson_speedup(s, p) > amdahl_speedup(s, p)


class TestKarpFlatt:
    def test_recovers_serial_fraction(self):
        s = 0.07
        p = 32
        speedup = amdahl_speedup(s, p)
        assert karp_flatt_serial_fraction(speedup, p) == pytest.approx(s)

    def test_rejects_single_processor(self):
        with pytest.raises(MetricError):
            karp_flatt_serial_fraction(1.0, 1)


class TestParallelEfficiency:
    def test_ideal(self):
        assert parallel_efficiency(16.0, 16) == pytest.approx(1.0)

    def test_half(self):
        assert parallel_efficiency(8.0, 16) == pytest.approx(0.5)


class TestRoofline:
    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(100.0, 50.0) == pytest.approx(2.0)

    def test_intensity_rejects_zero_bytes(self):
        with pytest.raises(MetricError):
            arithmetic_intensity(1.0, 0.0)

    def test_triad_is_memory_bound_on_fire(self, fire):
        roof = RooflineModel(node=fire.node)
        # Triad: 2 flops per 24 bytes
        assert roof.is_memory_bound(2 / 24)

    def test_dgemm_is_compute_bound_on_fire(self, fire):
        roof = RooflineModel(node=fire.node)
        # blocked DGEMM with nb=224 has intensity ~ nb/12 flops/byte
        assert not roof.is_memory_bound(224 / 12)

    def test_attainable_below_ridge_scales_with_intensity(self, fire):
        roof = RooflineModel(node=fire.node)
        low = roof.attainable_flops(0.01)
        assert low == pytest.approx(0.01 * roof.memory_bandwidth)

    def test_attainable_caps_at_peak(self, fire):
        roof = RooflineModel(node=fire.node)
        assert roof.attainable_flops(1e6) == roof.peak_flops

    def test_ridge_point_consistency(self, fire):
        roof = RooflineModel(node=fire.node)
        at_ridge = roof.attainable_flops(roof.ridge_point)
        assert at_ridge == pytest.approx(roof.peak_flops)
