"""Curve-shape and weight-sensitivity tests."""

import pytest

from repro.analysis import (
    CurveShape,
    WeightSensitivity,
    characterize_curve,
    dominant_benchmark,
    relative_range,
    sweep_weight_simplex,
)
from repro.exceptions import MetricError


class TestCharacterizeCurve:
    def test_rising(self):
        assert characterize_curve([1, 2, 3, 4]) is CurveShape.RISING

    def test_falling(self):
        assert characterize_curve([4, 3, 2, 1]) is CurveShape.FALLING

    def test_peaked(self):
        assert characterize_curve([1, 3, 5, 4, 2]) is CurveShape.PEAKED

    def test_valley(self):
        assert characterize_curve([5, 2, 1, 3, 6]) is CurveShape.VALLEY

    def test_irregular(self):
        assert characterize_curve([1, 5, 2, 6, 1]) is CurveShape.IRREGULAR

    def test_constant(self):
        assert characterize_curve([2, 2, 2]) is CurveShape.CONSTANT

    def test_tolerance_flattens_jitter(self):
        # tiny dips within tolerance of the span do not break "rising"
        curve = [1.0, 2.0, 1.9999, 3.0]
        assert characterize_curve(curve, rel_tol=0.01) is CurveShape.RISING

    def test_too_short_rejected(self):
        with pytest.raises(MetricError):
            characterize_curve([1.0])


class TestRelativeRange:
    def test_value(self):
        assert relative_range([1.0, 3.0]) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert relative_range([5, 5, 5]) == 0.0

    def test_zero_mean_rejected(self):
        with pytest.raises(MetricError):
            relative_range([-1.0, 1.0])


class TestSimplexSweep:
    def test_count_for_three_benchmarks(self):
        grid = list(sweep_weight_simplex(("a", "b", "c"), steps=10))
        assert len(grid) == 66  # C(12, 2)

    def test_all_valid(self):
        for weights in sweep_weight_simplex(("a", "b"), steps=4):
            assert sum(weights.values()) == pytest.approx(1.0)
            assert all(w >= 0 for w in weights.values())

    def test_vertices_included(self):
        grid = list(sweep_weight_simplex(("a", "b"), steps=2))
        assert {"a": 1.0, "b": 0.0} in grid
        assert {"a": 0.0, "b": 1.0} in grid

    def test_duplicate_names_rejected(self):
        with pytest.raises(MetricError):
            list(sweep_weight_simplex(("a", "a"), steps=2))


class TestDominantBenchmark:
    def test_largest_weight_wins(self):
        assert dominant_benchmark({"HPL": 0.5, "STREAM": 0.3, "IOzone": 0.2}) == "HPL"

    def test_tie_broken_alphabetically(self):
        assert dominant_benchmark({"b": 0.5, "a": 0.5}) == "a"

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            dominant_benchmark({})


class TestWeightSensitivity:
    @pytest.fixture
    def sens(self):
        return WeightSensitivity(ree={"HPL": 0.4, "STREAM": 2.0, "IOzone": 1.0}, steps=10)

    def test_range_is_ree_extremes(self, sens):
        lo, hi = sens.tgi_range()
        assert lo == pytest.approx(0.4)
        assert hi == pytest.approx(2.0)

    def test_extreme_weights_are_vertices(self, sens):
        w_lo, w_hi = sens.extremes()
        assert w_lo["HPL"] == 1.0
        assert w_hi["STREAM"] == 1.0

    def test_grid_values_within_range(self, sens):
        lo, hi = sens.tgi_range()
        for _, tgi in sens.grid():
            assert lo - 1e-9 <= tgi <= hi + 1e-9

    def test_grid_contains_arithmetic_mean_point(self, sens):
        # steps=10 cannot represent 1/3 exactly; use steps=3
        sens3 = WeightSensitivity(ree=sens.ree, steps=3)
        values = [tgi for w, tgi in sens3.grid() if all(abs(v - 1 / 3) < 1e-9 for v in w.values())]
        assert len(values) == 1
        assert values[0] == pytest.approx((0.4 + 2.0 + 1.0) / 3)

    def test_rejects_non_positive_ree(self):
        with pytest.raises(MetricError):
            WeightSensitivity(ree={"a": 0.0})
