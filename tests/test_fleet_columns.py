"""Struct-of-arrays fleet packing tests."""

import numpy as np
import pytest

from repro.cluster import presets
from repro.cluster.generator import generate_fleet
from repro.exceptions import FleetError
from repro.fleet import FleetColumns, is_batchable, require_batchable
from repro.power.node_power import _PSU_SIZING_FACTOR


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(6, era="2011", seed=20)


class TestPack:
    def test_columns_mirror_specs(self, fleet):
        cols = FleetColumns.pack(fleet)
        assert len(cols) == 6
        assert cols.names == tuple(s.name for s in fleet)
        for i, spec in enumerate(fleet):
            node = spec.node
            assert cols.num_nodes[i] == spec.num_nodes
            assert cols.sockets[i] == node.sockets
            assert cols.cpu_cores[i] == node.cpu.cores
            assert cols.clock_hz[i] == node.cpu.base_clock_hz
            assert cols.mem_sustained_bw[i] == node.memory.sustained_bandwidth
            assert cols.storage_write_bw[i] == node.storage.seq_write_bandwidth
            assert cols.nic_latency_s[i] == node.nic.latency_s
            assert cols.base_watts[i] == node.base_watts
            assert cols.psu_rated_w[i] == pytest.approx(
                _PSU_SIZING_FACTOR * node.nominal_max_watts
            )

    def test_derived_columns(self, fleet):
        cols = FleetColumns.pack(fleet)
        for i, spec in enumerate(fleet):
            assert cols.node_cores[i] == spec.node.cores
            assert cols.total_cores[i] == spec.total_cores
            assert cols.node_memory_bytes[i] == spec.node.memory_bytes
            assert cols.node_sustained_bw[i] == pytest.approx(
                spec.node.sustained_memory_bandwidth
            )

    def test_empty_rejected(self):
        with pytest.raises(FleetError):
            FleetColumns.pack([])

    def test_accelerated_rejected(self):
        with pytest.raises(FleetError):
            FleetColumns.pack([presets.gpu_cluster()])


class TestBatchable:
    def test_cpu_only_is_batchable(self, fleet):
        assert all(is_batchable(s) for s in fleet)
        assert is_batchable(presets.fire())

    def test_accelerated_is_not(self):
        gpu = presets.gpu_cluster()
        assert not is_batchable(gpu)
        with pytest.raises(FleetError):
            require_batchable(gpu)

    def test_require_returns_spec(self, fleet):
        assert require_batchable(fleet[0]) is fleet[0]


class TestSlicing:
    def test_take(self, fleet):
        cols = FleetColumns.pack(fleet)
        part = cols.take(2, 5)
        assert len(part) == 3
        assert part.names == cols.names[2:5]
        assert np.array_equal(part.clock_hz, cols.clock_hz[2:5])

    def test_chunks_cover_everything(self, fleet):
        cols = FleetColumns.pack(fleet)
        chunks = list(cols.chunks(4))
        assert [len(c) for c in chunks] == [4, 2]
        assert sum((list(c.names) for c in chunks), []) == list(cols.names)

    def test_bad_chunk_size_rejected(self, fleet):
        cols = FleetColumns.pack(fleet)
        with pytest.raises(FleetError):
            next(cols.chunks(0))

    def test_shape_mismatch_rejected(self, fleet):
        cols = FleetColumns.pack(fleet)
        import dataclasses

        with pytest.raises(FleetError):
            dataclasses.replace(cols, clock_hz=cols.clock_hz[:-1])
