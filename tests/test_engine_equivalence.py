"""Vectorized-vs-reference engine equivalence (hypothesis).

The vectorized sweep engine must be indistinguishable from the event-heap
oracle.  Two strategies probe it:

* *Binary-fraction programs*: durations are multiples of 1/256, so every
  prefix sum both engines compute is exact in float64 and agreement must
  be **interval-exact** — identical counts, bounds, phase objects, and
  makespan, not merely close.
* *Arbitrary-float programs* (reusing the looser generator) check the
  ≤1e-9 contract from the issue on bounds, makespan, and downstream
  energy through the full executor pipeline.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster import presets
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    SimulationEngine,
    barrier,
    breadth_first_placement,
    comm_phase,
    compute_phase,
    idle_phase,
    io_phase,
    memory_phase,
)

#: Multiples of 1/256 are exact binary fractions: sums of them round-trip
#: through float64 without error, so interval bounds must match exactly.
binary_durations = st.integers(min_value=0, max_value=2048).map(lambda n: n / 256.0)
#: Resource fractions on a coarse exact grid.
fractions = st.integers(min_value=0, max_value=16).map(lambda n: n / 16.0)
#: (constructor index, duration, fraction) — mixed phase kinds incl. idle.
phase_specs = st.tuples(st.integers(min_value=0, max_value=4), binary_durations, fractions)


def _build_phase(spec, scale=1.0):
    kind, duration, fraction = spec
    duration *= scale
    if kind == 0:
        return compute_phase(duration, intensity=max(fraction, 1 / 16))
    if kind == 1:
        return memory_phase(duration, memory=fraction)
    if kind == 2:
        return io_phase(duration, storage=fraction)
    if kind == 3:
        return comm_phase(duration, nic=fraction)
    return idle_phase(duration)


@st.composite
def random_programs(draw):
    """Random rank programs: mixed phase kinds, zero-duration phases, a
    shared barrier count, and optionally one skewed straggler rank whose
    phases run 32x longer (scaling by 32 preserves binary exactness)."""
    num_ranks = draw(st.integers(min_value=1, max_value=8))
    num_barriers = draw(st.integers(min_value=0, max_value=4))
    straggler = draw(st.integers(min_value=-1, max_value=num_ranks - 1))
    programs = []
    for rank in range(num_ranks):
        scale = 32.0 if rank == straggler else 1.0
        program = RankProgram(rank=rank)
        for segment in range(num_barriers + 1):
            for spec in draw(st.lists(phase_specs, min_size=0, max_size=3)):
                program.append(_build_phase(spec, scale))
            if segment < num_barriers:
                program.append(barrier())
        programs.append(program)
    return programs


def assert_engines_interval_exact(programs):
    """Both engines must emit identical interval structure."""
    arrays = SimulationEngine(programs, engine="vectorized").run_arrays()
    vectorized = arrays.to_interval_lists()
    reference = SimulationEngine(programs, engine="reference").run()
    ref_makespan = SimulationEngine(programs, engine="reference").makespan(reference)
    assert arrays.makespan == pytest.approx(ref_makespan, rel=1e-9, abs=1e-9)
    assert len(vectorized) == len(reference)
    for rank, (got, want) in enumerate(zip(vectorized, reference)):
        assert len(got) == len(want), f"rank {rank}: interval count differs"
        for iv_v, iv_r in zip(got, want):
            assert iv_v.t_start == pytest.approx(iv_r.t_start, rel=1e-9, abs=1e-9)
            assert iv_v.t_end == pytest.approx(iv_r.t_end, rel=1e-9, abs=1e-9)
            assert iv_v.phase is iv_r.phase, (
                f"rank {rank}: phase object identity lost ({iv_v.phase} vs {iv_r.phase})"
            )


class TestIntervalEquivalence:
    @given(programs=random_programs())
    @settings(max_examples=120, deadline=None)
    def test_interval_exact_agreement(self, programs):
        """Random mixed-kind programs: interval-exact agreement, including
        zero-duration phases (dropped identically) and straggler skew."""
        assert_engines_interval_exact(programs)

    @given(programs=random_programs())
    @settings(max_examples=60, deadline=None)
    def test_columnar_equals_object_view(self, programs):
        """run() (compat view) and run_arrays() describe the same run."""
        engine = SimulationEngine(programs, engine="vectorized")
        arrays = engine.run_arrays()
        lists = engine.run()
        flat_from_arrays = [
            (iv.rank, iv.t_start, iv.t_end, id(iv.phase))
            for per_rank in arrays.to_interval_lists()
            for iv in per_rank
        ]
        flat_from_lists = [
            (iv.rank, iv.t_start, iv.t_end, id(iv.phase))
            for per_rank in lists
            for iv in per_rank
        ]
        assert flat_from_arrays == flat_from_lists
        assert int(arrays.counts_per_rank().sum()) == len(arrays)

    @given(programs=random_programs())
    @settings(max_examples=60, deadline=None)
    def test_makespan_consistency(self, programs):
        """makespan() agrees across engines and both interval forms."""
        vec = SimulationEngine(programs, engine="vectorized")
        ref = SimulationEngine(programs, engine="reference")
        arrays = vec.run_arrays()
        assert vec.makespan(arrays) == arrays.makespan
        assert arrays.makespan == pytest.approx(
            ref.makespan(ref.run()), rel=1e-9, abs=1e-9
        )


class TestDownstreamEnergyEquivalence:
    @given(programs=random_programs())
    @settings(max_examples=25, deadline=None)
    def test_energy_and_makespan_match_through_executor(self, programs):
        """The engines must be interchangeable under the full pipeline:
        same true energy (<=1e-9 relative), same makespan, same breakdown."""
        assume(any(p.busy_time > 0 for p in programs))
        cluster = presets.fire(num_nodes=2)
        placement = breadth_first_placement(cluster, len(programs))
        records = {}
        for engine in ("vectorized", "reference"):
            executor = ClusterExecutor(cluster, rng=7, engine=engine)
            records[engine] = executor.execute(placement, programs, label=engine)
        vec, ref = records["vectorized"], records["reference"]
        assert vec.makespan_s == pytest.approx(ref.makespan_s, rel=1e-9, abs=1e-9)
        assert vec.true_energy_j == pytest.approx(ref.true_energy_j, rel=1e-9)
        assert set(vec.energy_breakdown) == set(ref.energy_breakdown)
        for component, joules in vec.energy_breakdown.items():
            assert joules == pytest.approx(
                ref.energy_breakdown[component], rel=1e-9, abs=1e-9
            )
