"""Real host-kernel tests (fast sizes)."""

import pytest

from repro.exceptions import BenchmarkError
from repro.kernels import (
    Timer,
    file_write_bandwidth,
    lu_solve_gflops,
    stream_kernels,
    triad_bandwidth,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed_s > 0

    def test_unused_timer_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            _ = t.elapsed_s


class TestLinalgKernel:
    def test_solution_is_accurate(self):
        result = lu_solve_gflops(n=200, rng=0)
        # HPL's acceptance threshold is O(10); a healthy solve is O(0.01)
        assert result.residual < 16.0

    def test_reports_positive_gflops(self):
        result = lu_solve_gflops(n=200, rng=0)
        assert result.gflops > 0

    def test_flop_count_matches_hpl_formula(self):
        result = lu_solve_gflops(n=100, rng=0)
        assert result.flops == pytest.approx(2 / 3 * 100**3 + 2 * 100**2)

    def test_time_grows_superlinearly_with_n(self):
        small = lu_solve_gflops(n=150, rng=0)
        large = lu_solve_gflops(n=600, rng=0)
        # 4x n -> 64x flops; even with overheads, time must grow clearly
        assert large.time_s > 2 * small.time_s

    def test_rejects_tiny_n(self):
        with pytest.raises(BenchmarkError):
            lu_solve_gflops(n=1)


class TestStreamKernels:
    def test_triad_bandwidth_positive(self):
        result = triad_bandwidth(array_elements=200_000, iterations=3)
        assert result.bandwidth > 1e8  # any machine does > 100 MB/s

    def test_traffic_accounting(self):
        result = triad_bandwidth(array_elements=100_000, iterations=5)
        assert result.bytes_moved == 5 * 3 * 8 * 100_000

    def test_all_four_kernels_present(self):
        results = stream_kernels(array_elements=100_000, iterations=2)
        assert set(results) == {"copy", "scale", "add", "triad"}

    def test_copy_counts_two_streams(self):
        results = stream_kernels(array_elements=100_000, iterations=2)
        assert results["copy"].bytes_moved == 2 * 2 * 8 * 100_000
        assert results["add"].bytes_moved == 2 * 3 * 8 * 100_000

    def test_rejects_bad_args(self):
        with pytest.raises(BenchmarkError):
            triad_bandwidth(array_elements=0)


class TestIOKernel:
    def test_writes_and_cleans_up(self, tmp_path):
        result = file_write_bandwidth(
            file_bytes=1024 * 1024, record_bytes=64 * 1024, directory=str(tmp_path)
        )
        assert result.bandwidth > 0
        assert list(tmp_path.iterdir()) == []  # temp file removed

    def test_fsync_flag_recorded(self, tmp_path):
        result = file_write_bandwidth(
            file_bytes=256 * 1024, fsync=False, directory=str(tmp_path)
        )
        assert result.fsynced is False

    def test_partial_tail_record(self, tmp_path):
        result = file_write_bandwidth(
            file_bytes=1000, record_bytes=300, directory=str(tmp_path)
        )
        assert result.file_bytes == 1000

    def test_record_larger_than_file_clamped(self, tmp_path):
        result = file_write_bandwidth(
            file_bytes=100, record_bytes=1000, directory=str(tmp_path)
        )
        assert result.record_bytes == 100

    def test_rejects_zero_bytes(self):
        with pytest.raises(BenchmarkError):
            file_write_bandwidth(file_bytes=0)
