"""Batched fleet evaluation: scalar-oracle agreement, memoization, and the
deeper check that the analytic oracle reproduces the *simulator's* ground
truth for full-machine fleet jobs."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.generator import generate_fleet
from repro.exceptions import FleetError
from repro.experiments import PAPER_CONFIG, build_suite
from repro.fleet import (
    FLEET_BENCHMARKS,
    FleetColumns,
    evaluate_fleet,
    evaluate_system,
)

QUICK = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2.0,
    iozone_target_seconds=2.0,
)

_FIELDS = ("performance", "time_s", "power_w", "energy_j", "efficiency")


@pytest.fixture(scope="module")
def mixed_fleet():
    fleet = []
    for era in ("2008", "2011", "2015", "2021"):
        fleet += generate_fleet(3, era=era, seed=13)
    return fleet


class TestBatchedVsScalar:
    def test_all_fields_match_oracle(self, mixed_fleet):
        batched = evaluate_fleet(mixed_fleet, QUICK)
        scalar = evaluate_fleet(mixed_fleet, QUICK, path="reference")
        for b in FLEET_BENCHMARKS:
            for field in _FIELDS:
                got = getattr(batched.scores[b], field)
                want = getattr(scalar.scores[b], field)
                assert np.allclose(got, want, rtol=1e-9, atol=0.0), (b, field)

    def test_reference_semantics_match_oracle(self, mixed_fleet):
        batched = evaluate_fleet(mixed_fleet, QUICK, reference=True)
        scalar = evaluate_fleet(mixed_fleet, QUICK, path="reference", reference=True)
        for b in FLEET_BENCHMARKS:
            got = batched.scores[b].efficiency
            want = scalar.scores[b].efficiency
            assert np.allclose(got, want, rtol=1e-9, atol=0.0), b

    def test_accepts_packed_columns(self, mixed_fleet):
        cols = FleetColumns.pack(mixed_fleet)
        from_cols = evaluate_fleet(cols, QUICK)
        from_specs = evaluate_fleet(mixed_fleet, QUICK)
        for b in FLEET_BENCHMARKS:
            assert np.array_equal(
                from_cols.scores[b].efficiency, from_specs.scores[b].efficiency
            )

    def test_system_accessor_round_trips(self, mixed_fleet):
        evaluation = evaluate_fleet(mixed_fleet, QUICK)
        row = evaluation.system(2)
        oracle = evaluate_system(mixed_fleet[2], QUICK)
        for b in FLEET_BENCHMARKS:
            assert row[b]["efficiency"] == pytest.approx(
                oracle[b]["efficiency"], rel=1e-9
            )


class TestOracleVsSimulation:
    """The analytic path *is* the simulator's truth for fleet jobs.

    A full-machine run packs every node identically with rank-uniform
    programs and no barrier waits, so utilization is piecewise constant and
    the sweep-line energy integral collapses to the closed form the fleet
    path evaluates.  Performance and makespan must agree to float noise,
    and power must match the record's *true* (unmetered) mean.
    """

    @pytest.mark.parametrize("index", [0, 2])
    def test_matches_sim_ground_truth(self, index):
        from repro.sim import ClusterExecutor

        spec = generate_fleet(3, era="2011", seed=7)[index]
        result = build_suite(QUICK).run(
            ClusterExecutor(spec, rng=123), spec.total_cores
        )
        analytic = evaluate_system(spec, QUICK)
        for b in FLEET_BENCHMARKS:
            sim = result[b]
            a = analytic[b]
            assert sim.performance == pytest.approx(a["performance"], rel=1e-9)
            assert sim.time_s == pytest.approx(a["time_s"], rel=1e-9)
            assert sim.record.true_mean_power_w == pytest.approx(
                a["power_w"], rel=1e-9
            )
            # The metered value differs only by the simulated meter's noise.
            assert sim.power_w == pytest.approx(a["power_w"], rel=0.1)


class TestMemoization:
    def test_duplicates_computed_once(self):
        fleet = generate_fleet(4, era="2011", seed=3)
        doubled = fleet + fleet  # names repeat but evaluate doesn't care
        memoized = evaluate_fleet(doubled, QUICK)
        raw = evaluate_fleet(doubled, QUICK, memoize=False)
        for b in FLEET_BENCHMARKS:
            assert memoized.memo_unique[b] == 4
            assert raw.memo_unique[b] == 8
            assert np.array_equal(
                memoized.scores[b].efficiency, raw.scores[b].efficiency
            )

    def test_clones_score_identically(self):
        spec = generate_fleet(1, era="2015", seed=9)[0]
        evaluation = evaluate_fleet([spec] * 5, QUICK)
        for b in FLEET_BENCHMARKS:
            eff = evaluation.scores[b].efficiency
            assert np.all(eff == eff[0])
            assert evaluation.memo_unique[b] == 1


class TestErrors:
    def test_empty_fleet_rejected(self):
        with pytest.raises(FleetError):
            evaluate_fleet([], QUICK)

    def test_unknown_path_rejected(self, mixed_fleet):
        with pytest.raises(FleetError):
            evaluate_fleet(mixed_fleet, QUICK, path="warp")

    def test_reference_path_needs_specs(self, mixed_fleet):
        cols = FleetColumns.pack(mixed_fleet)
        with pytest.raises(FleetError):
            evaluate_fleet(cols, QUICK, path="reference")

    def test_tiny_problem_size_rejected(self, mixed_fleet):
        small = dataclasses.replace(QUICK, hpl_problem_size=16)
        with pytest.raises(FleetError):
            evaluate_fleet(mixed_fleet, small)
        with pytest.raises(FleetError):
            evaluate_system(mixed_fleet[0], small)
