"""Bootstrap / jackknife uncertainty tests."""

import numpy as np
import pytest

from repro.analysis import bootstrap_pearson_ci, jackknife_pearson, pearson
from repro.exceptions import MetricError


class TestBootstrapCI:
    def test_interval_contains_estimate_for_clean_data(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 40)
        y = x + 0.05 * rng.standard_normal(40)
        ci = bootstrap_pearson_ci(x, y, rng=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_deterministic_given_seed(self):
        x = [1, 2, 3, 4, 5, 6, 7, 8]
        y = [2, 1, 4, 3, 6, 5, 8, 7]
        a = bootstrap_pearson_ci(x, y, rng=5)
        b = bootstrap_pearson_ci(x, y, rng=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_tight_relationship_gives_narrow_interval(self):
        x = np.linspace(0, 1, 50)
        exact = bootstrap_pearson_ci(x, 3 * x + 1, rng=0)
        noisy_y = x + np.random.default_rng(0).standard_normal(50)
        noisy = bootstrap_pearson_ci(x, noisy_y, rng=0)
        assert exact.width < noisy.width

    def test_eight_point_interval_is_wide(self):
        """The honesty check on Table II: with only 8 scale points even a
        strong-looking r = 0.58 has a CI spanning tens of points."""
        x = list(range(8))
        y = [61.6, 84.5, 89.9, 90.9, 90.0, 88.2, 86.0, 83.7]  # Fig-2 shape
        ci = bootstrap_pearson_ci(x, y, rng=2)
        assert ci.width > 0.2

    def test_bounds_within_valid_range(self):
        x = [1, 2, 3, 4, 5, 6, 7, 8]
        y = [1, 3, 2, 5, 4, 7, 6, 8]
        ci = bootstrap_pearson_ci(x, y, rng=3)
        assert -1.0 <= ci.low <= ci.high <= 1.0

    def test_contains_helper(self):
        x = np.linspace(0, 1, 30)
        ci = bootstrap_pearson_ci(x, 2 * x, rng=0)
        assert ci.contains(1.0)
        assert not ci.contains(-1.0)

    def test_bad_confidence_rejected(self):
        with pytest.raises(MetricError):
            bootstrap_pearson_ci([1, 2, 3], [1, 2, 3], confidence=1.0)

    def test_too_few_resamples_rejected(self):
        with pytest.raises(MetricError):
            bootstrap_pearson_ci([1, 2, 3], [1, 2, 3], resamples=5)


class TestJackknife:
    def test_values_near_full_sample_for_smooth_data(self):
        x = np.linspace(0, 1, 20)
        y = x + 0.01 * np.sin(10 * x)
        full = pearson(x, y)
        for _, r in jackknife_pearson(x, y):
            assert r == pytest.approx(full, abs=0.02)

    def test_detects_influential_point(self):
        """One outlier manufactures the correlation; removing it collapses
        the coefficient — the jackknife flags this."""
        x = [0, 0.1, 0.05, 0.12, 0.03, 10.0]
        y = [0.02, 0.0, 0.11, 0.07, 0.05, 10.0]
        values = dict(jackknife_pearson(x, y))
        without_outlier = values[5]
        with_outlier = pearson(x, y)
        assert with_outlier > 0.99
        assert without_outlier < 0.7

    def test_entry_count(self):
        out = jackknife_pearson([1, 2, 3, 4], [4, 3, 2, 1])
        assert [i for i, _ in out] == [0, 1, 2, 3]

    def test_needs_three_points(self):
        with pytest.raises(MetricError):
            jackknife_pearson([1, 2], [2, 1])
