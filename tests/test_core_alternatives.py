"""Geometric-TGI tests, including the reference-invariance theorem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GeometricTGICalculator,
    ReferenceSet,
    TGICalculator,
    geometric_tgi_from_components,
    tgi_from_components,
)
from repro.exceptions import MetricError

positive = st.floats(min_value=1e-6, max_value=1e9, allow_nan=False)
BENCHES = ("HPL", "STREAM", "IOzone")


@st.composite
def ee_dicts(draw):
    return {name: draw(positive) for name in BENCHES}


@st.composite
def weight_dicts(draw):
    raw = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in BENCHES]
    total = sum(raw)
    return {name: r / total for name, r in zip(BENCHES, raw)}


class TestGeometricComponents:
    def test_equal_ree_collapses(self):
        ree = {"a": 2.0, "b": 2.0}
        weights = {"a": 0.5, "b": 0.5}
        assert geometric_tgi_from_components(ree, weights) == pytest.approx(2.0)

    def test_below_arithmetic_mean(self):
        """AM-GM: geometric TGI never exceeds the paper's arithmetic TGI."""
        ree = {"a": 0.4, "b": 3.0, "c": 1.1}
        weights = {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3}
        assert geometric_tgi_from_components(ree, weights) <= tgi_from_components(
            ree, weights
        )

    def test_self_reference_is_one(self):
        ree = {name: 1.0 for name in BENCHES}
        weights = {name: 1 / 3 for name in BENCHES}
        assert geometric_tgi_from_components(ree, weights) == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(MetricError):
            geometric_tgi_from_components({"a": 0.0}, {"a": 1.0})

    def test_rejects_coverage_mismatch(self):
        with pytest.raises(MetricError):
            geometric_tgi_from_components({"a": 1.0}, {"b": 1.0})


class TestReferenceInvarianceTheorem:
    @given(
        system_a=ee_dicts(),
        system_b=ee_dicts(),
        ref_1=ee_dicts(),
        ref_2=ee_dicts(),
        weights=weight_dicts(),
    )
    @settings(max_examples=100, deadline=None)
    def test_gm_ratio_independent_of_reference(
        self, system_a, system_b, ref_1, ref_2, weights
    ):
        """GTGI_R(A)/GTGI_R(B) is the same for every reference R."""

        def gtgi(system, ref):
            ree = {n: system[n] / ref[n] for n in BENCHES}
            return geometric_tgi_from_components(ree, weights)

        ratio_1 = gtgi(system_a, ref_1) / gtgi(system_b, ref_1)
        ratio_2 = gtgi(system_a, ref_2) / gtgi(system_b, ref_2)
        assert ratio_1 == pytest.approx(ratio_2, rel=1e-9)

    @given(
        system_a=ee_dicts(),
        system_b=ee_dicts(),
        ref_1=ee_dicts(),
        ref_2=ee_dicts(),
    )
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_mean_lacks_the_property(self, system_a, system_b, ref_1, ref_2):
        """For contrast: the arithmetic ratio does depend on the reference
        (not for every draw, but the invariance must not hold identically —
        we assert only that the geometric ratios matched above while
        arithmetic ones are free to differ; no assertion needed here beyond
        being computable)."""
        weights = {n: 1 / 3 for n in BENCHES}

        def tgi(system, ref):
            ree = {n: system[n] / ref[n] for n in BENCHES}
            return tgi_from_components(ree, weights)

        # computable and positive; the flip *possibility* is demonstrated
        # deterministically in test_reference_sensitivity.py
        assert tgi(system_a, ref_1) > 0
        assert tgi(system_b, ref_2) > 0


class TestGeometricCalculator:
    def test_pipeline_value(self, quick_suite, executor):
        result = quick_suite.run(executor, 32)
        ref = ReferenceSet.from_suite_result(result)
        gm = GeometricTGICalculator(ref).compute_value(result)
        assert gm == pytest.approx(1.0)

    def test_ordering_reference_invariant_end_to_end(self, quick_suite, executor, small_executor, fire_small):
        big = quick_suite.run(executor, 128)
        small = quick_suite.run(small_executor, fire_small.total_cores)
        for ref_source in (big, small):
            ref = ReferenceSet.from_suite_result(ref_source)
            calc = GeometricTGICalculator(ref)
            # the ratio between the two systems is reference-independent
            ratio = calc.compute_value(big) / calc.compute_value(small)
            if ref_source is big:
                first_ratio = ratio
        assert ratio == pytest.approx(first_ratio, rel=1e-9)

    def test_am_gm_ordering_on_real_results(self, quick_suite, executor):
        result = quick_suite.run(executor, 64)
        ref = ReferenceSet.from_suite_result(quick_suite.run(executor, 16))
        am = TGICalculator(ref).compute(result).value
        gm = GeometricTGICalculator(ref).compute_value(result)
        assert gm <= am + 1e-12
