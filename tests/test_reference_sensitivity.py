"""Reference-sensitivity tests: the SPEC-normalization pathology."""

import pytest

from repro.analysis import (
    find_reference_flip,
    ranking_under_references,
    tgi_under_reference,
)
from repro.exceptions import MetricError

# Two systems with crossed strengths: A is a compute machine, B an I/O one.
SYSTEM_A = {"HPL": 400e6, "STREAM": 50e6, "IOzone": 0.4e6}
SYSTEM_B = {"HPL": 150e6, "STREAM": 60e6, "IOzone": 1.6e6}


class TestTgiUnderReference:
    def test_self_reference_is_one(self):
        assert tgi_under_reference(SYSTEM_A, SYSTEM_A) == pytest.approx(1.0)

    def test_custom_weights_respected(self):
        ref = {"HPL": 200e6, "STREAM": 50e6, "IOzone": 0.8e6}
        hpl_only = tgi_under_reference(
            SYSTEM_A, ref, weights={"HPL": 1.0, "STREAM": 0.0, "IOzone": 0.0}
        )
        assert hpl_only == pytest.approx(2.0)

    def test_coverage_mismatch_rejected(self):
        with pytest.raises(MetricError):
            tgi_under_reference(SYSTEM_A, {"HPL": 1.0})

    def test_non_positive_rejected(self):
        with pytest.raises(MetricError):
            tgi_under_reference({"HPL": 0.0}, {"HPL": 1.0})


class TestRankingUnderReferences:
    def test_orderings_per_reference(self):
        systems = {"A": SYSTEM_A, "B": SYSTEM_B}
        references = {
            "weak-io-ref": {"HPL": 300e6, "STREAM": 55e6, "IOzone": 0.1e6},
            "weak-cpu-ref": {"HPL": 50e6, "STREAM": 55e6, "IOzone": 1.0e6},
        }
        rankings = ranking_under_references(systems, references)
        # a reference weak on I/O inflates everyone's IOzone REE; B (the
        # I/O machine) wins there
        assert rankings["weak-io-ref"][0] == "B"
        # a reference weak on CPU hands the win to A
        assert rankings["weak-cpu-ref"][0] == "A"

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            ranking_under_references({}, {})


class TestFindReferenceFlip:
    def test_crossed_systems_flip(self):
        """Systems with crossed strengths can be ordered either way by
        choosing the reference — the non-invariance Smith (1988) warns
        about, inherited by TGI's arithmetic mean of ratios."""
        flip = find_reference_flip(SYSTEM_A, SYSTEM_B)
        assert flip is not None
        pro_a, pro_b = flip
        assert tgi_under_reference(SYSTEM_A, pro_a) > tgi_under_reference(SYSTEM_B, pro_a)
        assert tgi_under_reference(SYSTEM_B, pro_b) > tgi_under_reference(SYSTEM_A, pro_b)

    def test_dominated_system_cannot_flip(self):
        """When A beats B on every benchmark, every REE ratio orders them
        the same way: no reference can rescue B."""
        dominated = {name: 0.5 * value for name, value in SYSTEM_A.items()}
        assert find_reference_flip(SYSTEM_A, dominated) is None

    def test_mismatched_coverage_rejected(self):
        with pytest.raises(MetricError):
            find_reference_flip(SYSTEM_A, {"HPL": 1.0})
