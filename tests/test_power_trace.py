"""Power-trace and piecewise-power tests."""

import numpy as np
import pytest

from repro.exceptions import PowerModelError
from repro.power import PiecewisePower, PowerTrace


class TestPiecewisePower:
    def test_constant_energy(self):
        truth = PiecewisePower.constant(100.0, 60.0)
        assert truth.energy() == pytest.approx(6000.0)

    def test_segment_energy_sums(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.energy() == pytest.approx(1000 + 4000)

    def test_mean_power(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.mean_power() == pytest.approx(5000 / 30)

    def test_max_power(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.max_power() == 200.0

    def test_power_at(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.power_at(5) == 100.0
        assert truth.power_at(15) == 200.0
        assert truth.power_at(30) == 200.0

    def test_power_at_many_matches_scalar(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        times = [0.5, 9.9, 10.1, 29.9]
        many = truth.power_at_many(times)
        assert list(many) == [truth.power_at(t) for t in times]

    def test_rejects_gap(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, 100), (11, 20, 100)])

    def test_rejects_overlap(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, 100), (9, 20, 100)])

    def test_rejects_negative_power(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, -1)])

    def test_rejects_reversed_segment(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(10, 0, 100)])

    def test_drops_zero_length_segments(self):
        truth = PiecewisePower([(0, 10, 100), (10, 10, 500), (10, 20, 100)])
        assert truth.max_power() == 100.0

    def test_query_outside_interval_rejected(self):
        truth = PiecewisePower.constant(100, 10)
        with pytest.raises(PowerModelError):
            truth.power_at(11)

    def test_unsorted_segments_accepted(self):
        truth = PiecewisePower([(10, 20, 200), (0, 10, 100)])
        assert truth.power_at(5) == 100.0


class TestPowerTrace:
    def test_trapezoid_energy(self):
        trace = PowerTrace([0, 1, 2], [100, 200, 100])
        assert trace.energy() == pytest.approx(np.trapezoid([100, 200, 100], [0, 1, 2]))

    def test_mean_power_time_weighted(self):
        trace = PowerTrace([0, 1, 3], [100, 100, 400])
        # energy = 100 + 2*(250) = 600 over 3 s
        assert trace.mean_power() == pytest.approx(600 / 3)

    def test_single_sample(self):
        trace = PowerTrace([5.0], [250.0])
        assert trace.energy() == 0.0
        assert trace.mean_power() == 250.0

    def test_min_max(self):
        trace = PowerTrace([0, 1, 2], [100, 300, 200])
        assert trace.max_power() == 300.0
        assert trace.min_power() == 100.0

    def test_slice(self):
        trace = PowerTrace([0, 1, 2, 3], [10, 20, 30, 40])
        part = trace.slice(1, 2)
        assert list(part.watts) == [20, 30]

    def test_slice_empty_rejected(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(PowerModelError):
            trace.slice(5, 6)

    def test_concat_and_shift(self):
        a = PowerTrace([0, 1], [10, 10])
        b = PowerTrace([0, 1], [20, 20]).shifted(2)
        both = a.concat(b)
        assert len(both) == 4
        assert both.duration == pytest.approx(3.0)

    def test_rejects_conflicting_duplicate_timestamps(self):
        with pytest.raises(PowerModelError, match="conflicting duplicate"):
            PowerTrace([0, 0, 1], [1, 2, 3])

    def test_rejects_negative_power(self):
        with pytest.raises(PowerModelError):
            PowerTrace([0, 1], [5, -5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(PowerModelError):
            PowerTrace([0, 1, 2], [5, 5])

    def test_views_are_read_only(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(ValueError):
            trace.watts[0] = 99


class TestPowerTraceNormalization:
    """Merged meter logs: sorting, dedup, and conflict rejection."""

    def test_unsorted_samples_are_sorted(self):
        trace = PowerTrace([2.0, 0.0, 1.0], [30.0, 10.0, 20.0])
        assert list(trace.times) == [0.0, 1.0, 2.0]
        assert list(trace.watts) == [10.0, 20.0, 30.0]
        # same energy as the pre-sorted construction
        assert trace.energy() == PowerTrace([0, 1, 2], [10, 20, 30]).energy()

    def test_agreeing_duplicates_deduplicated(self):
        # e.g. two meter logs that overlap on one boundary sample
        trace = PowerTrace([0.0, 1.0, 1.0, 2.0], [10.0, 20.0, 20.0, 30.0])
        assert len(trace) == 3
        assert list(trace.times) == [0.0, 1.0, 2.0]
        assert list(trace.watts) == [10.0, 20.0, 30.0]

    def test_unsorted_agreeing_duplicates_deduplicated(self):
        trace = PowerTrace([1.0, 0.0, 1.0], [20.0, 10.0, 20.0])
        assert len(trace) == 2
        assert list(trace.watts) == [10.0, 20.0]

    def test_conflicting_duplicates_report_the_timestamp(self):
        with pytest.raises(PowerModelError, match=r"t=1\.5"):
            PowerTrace([0.0, 1.5, 1.5], [10.0, 20.0, 21.0])

    def test_unsorted_conflicting_duplicates_still_rejected(self):
        # the conflict only becomes adjacent after the stable sort
        with pytest.raises(PowerModelError, match="conflicting duplicate"):
            PowerTrace([1.0, 0.0, 1.0], [20.0, 10.0, 21.0])

    def test_all_samples_identical_collapse_to_one(self):
        trace = PowerTrace([3.0, 3.0, 3.0], [50.0, 50.0, 50.0])
        assert len(trace) == 1
        assert trace.mean_power() == 50.0


class TestPowerTraceResample:
    def test_linear_interpolation(self):
        trace = PowerTrace([0.0, 2.0], [100.0, 300.0])
        out = trace.resample([0.0, 0.5, 1.0, 2.0])
        assert list(out.watts) == [100.0, 150.0, 200.0, 300.0]

    def test_resample_preserves_trapezoid_energy_on_refinement(self):
        trace = PowerTrace([0, 1, 3, 4], [100, 250, 150, 400])
        fine = trace.resample(np.linspace(0.0, 4.0, 401))
        assert fine.energy() == pytest.approx(trace.energy(), rel=1e-9)

    def test_resample_outside_span_rejected(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(PowerModelError, match="outside"):
            trace.resample([0.5, 1.5])

    def test_resample_empty_rejected(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(PowerModelError):
            trace.resample([])


class TestPowerTraceDownsample:
    def _trace(self, n=500):
        rng = np.random.default_rng(5)
        times = np.cumsum(rng.uniform(0.5, 1.5, size=n))
        watts = rng.uniform(100.0, 900.0, size=n)
        return PowerTrace(times, watts)

    def test_keeps_endpoints_and_count(self):
        trace = self._trace()
        small = trace.downsample(40)
        assert len(small) == 40
        assert small.times[0] == trace.times[0]
        assert small.times[-1] == trace.times[-1]
        assert small.duration == trace.duration

    def test_selected_samples_come_from_the_original(self):
        trace = self._trace()
        small = trace.downsample(25)
        assert np.isin(small.times, trace.times).all()
        assert np.isin(small.watts, trace.watts).all()

    def test_deterministic(self):
        trace = self._trace()
        a, b = trace.downsample(40), trace.downsample(40)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.watts, b.watts)

    def test_small_trace_returned_as_copy(self):
        trace = PowerTrace([0, 1, 2], [10, 20, 30])
        copy = trace.downsample(10)
        assert list(copy.times) == [0, 1, 2]
        assert copy is not trace

    def test_requires_at_least_three(self):
        with pytest.raises(PowerModelError, match=">= 3"):
            self._trace().downsample(2)

    def test_downsample_then_resample_round_trip(self):
        """Downsampled shape re-resamples to within the band of the original."""
        trace = self._trace()
        small = trace.downsample(100)
        back = small.resample(trace.times)
        assert len(back) == len(trace)
        assert back.min_power() >= trace.min_power() - 1e-9
        assert back.max_power() <= trace.max_power() + 1e-9


class TestPiecewiseFromArrays:
    def test_adopts_arrays_without_copy(self):
        starts = np.array([0.0, 1.0])
        ends = np.array([1.0, 2.0])
        watts = np.array([100.0, 200.0])
        truth = PiecewisePower.from_arrays(starts, ends, watts)
        assert truth.energy() == pytest.approx(300.0)
        assert truth.watts_array.base is watts  # adopted, not copied

    def test_rejects_empty_arrays(self):
        with pytest.raises(PowerModelError, match="at least one"):
            PiecewisePower.from_arrays(np.empty(0), np.empty(0), np.empty(0))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(PowerModelError, match="differ in length"):
            PiecewisePower.from_arrays(
                np.array([0.0]), np.array([1.0]), np.array([1.0, 2.0])
            )

    def test_rejects_non_1d(self):
        with pytest.raises(PowerModelError, match="1-D"):
            PiecewisePower.from_arrays(
                np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2))
            )

    def test_single_segment(self):
        truth = PiecewisePower.from_arrays(
            np.array([2.0]), np.array([5.0]), np.array([400.0])
        )
        assert truth.t_start == 2.0
        assert truth.duration == 3.0
        assert truth.power_at(3.5) == 400.0

    def test_matches_validating_constructor(self):
        segments = [(0.0, 1.5, 100.0), (1.5, 4.0, 250.0), (4.0, 4.5, 50.0)]
        checked = PiecewisePower(segments)
        adopted = PiecewisePower.from_arrays(
            checked.starts_array.copy(),
            checked.ends_array.copy(),
            checked.watts_array.copy(),
        )
        assert adopted.segments == checked.segments
        assert adopted.energy() == checked.energy()

    def test_array_views_read_only(self):
        truth = PiecewisePower([(0, 1, 100), (1, 2, 200)])
        for view in (truth.starts_array, truth.ends_array, truth.watts_array):
            with pytest.raises(ValueError):
                view[0] = 99.0


class TestPiecewiseResampleDownsample:
    def _curve(self, n=300):
        rng = np.random.default_rng(17)
        widths = rng.uniform(0.05, 1.0, size=n)
        starts = np.concatenate([[0.0], np.cumsum(widths)[:-1]])
        watts = rng.uniform(50.0, 1200.0, size=n)
        return PiecewisePower.from_arrays(starts, starts + widths, watts)

    def test_resample_is_power_at_many(self):
        truth = self._curve()
        times = np.linspace(truth.t_start, truth.t_start + truth.duration, 64)
        np.testing.assert_array_equal(
            truth.resample(times), truth.power_at_many(times)
        )

    def test_downsample_preserves_energy(self):
        truth = self._curve()
        for max_segments in (1, 7, 64, 150):
            coarse = truth.downsample(max_segments)
            assert len(coarse.segments) <= max_segments
            assert coarse.energy() == pytest.approx(truth.energy(), rel=1e-9)
            assert coarse.duration == pytest.approx(truth.duration, rel=1e-12)

    def test_downsample_to_one_segment_is_the_mean(self):
        truth = self._curve()
        coarse = truth.downsample(1)
        (segment,) = coarse.segments
        assert segment[2] == pytest.approx(truth.mean_power(), rel=1e-9)

    def test_downsample_already_coarse_is_a_copy(self):
        truth = PiecewisePower([(0, 1, 100), (1, 2, 200)])
        copy = truth.downsample(10)
        assert copy.segments == truth.segments
        assert copy.watts_array.base is not truth.watts_array.base

    def test_downsample_rejects_zero(self):
        with pytest.raises(PowerModelError, match=">= 1"):
            PiecewisePower.constant(100, 10).downsample(0)

    def test_downsample_bounds_respect_the_data(self):
        truth = self._curve()
        coarse = truth.downsample(32)
        assert coarse.max_power() <= truth.max_power() + 1e-9
        assert float(coarse.watts_array.min()) >= float(truth.watts_array.min()) - 1e-9

    def test_downsample_then_resample_round_trip(self):
        """Coarse means re-integrate to the exact energy on the coarse grid."""
        truth = self._curve()
        coarse = truth.downsample(48)
        mids = (coarse.starts_array + coarse.ends_array) / 2.0
        np.testing.assert_array_equal(coarse.resample(mids), coarse.watts_array)
