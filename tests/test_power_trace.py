"""Power-trace and piecewise-power tests."""

import numpy as np
import pytest

from repro.exceptions import PowerModelError
from repro.power import PiecewisePower, PowerTrace


class TestPiecewisePower:
    def test_constant_energy(self):
        truth = PiecewisePower.constant(100.0, 60.0)
        assert truth.energy() == pytest.approx(6000.0)

    def test_segment_energy_sums(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.energy() == pytest.approx(1000 + 4000)

    def test_mean_power(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.mean_power() == pytest.approx(5000 / 30)

    def test_max_power(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.max_power() == 200.0

    def test_power_at(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        assert truth.power_at(5) == 100.0
        assert truth.power_at(15) == 200.0
        assert truth.power_at(30) == 200.0

    def test_power_at_many_matches_scalar(self):
        truth = PiecewisePower([(0, 10, 100), (10, 30, 200)])
        times = [0.5, 9.9, 10.1, 29.9]
        many = truth.power_at_many(times)
        assert list(many) == [truth.power_at(t) for t in times]

    def test_rejects_gap(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, 100), (11, 20, 100)])

    def test_rejects_overlap(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, 100), (9, 20, 100)])

    def test_rejects_negative_power(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(0, 10, -1)])

    def test_rejects_reversed_segment(self):
        with pytest.raises(PowerModelError):
            PiecewisePower([(10, 0, 100)])

    def test_drops_zero_length_segments(self):
        truth = PiecewisePower([(0, 10, 100), (10, 10, 500), (10, 20, 100)])
        assert truth.max_power() == 100.0

    def test_query_outside_interval_rejected(self):
        truth = PiecewisePower.constant(100, 10)
        with pytest.raises(PowerModelError):
            truth.power_at(11)

    def test_unsorted_segments_accepted(self):
        truth = PiecewisePower([(10, 20, 200), (0, 10, 100)])
        assert truth.power_at(5) == 100.0


class TestPowerTrace:
    def test_trapezoid_energy(self):
        trace = PowerTrace([0, 1, 2], [100, 200, 100])
        assert trace.energy() == pytest.approx(np.trapezoid([100, 200, 100], [0, 1, 2]))

    def test_mean_power_time_weighted(self):
        trace = PowerTrace([0, 1, 3], [100, 100, 400])
        # energy = 100 + 2*(250) = 600 over 3 s
        assert trace.mean_power() == pytest.approx(600 / 3)

    def test_single_sample(self):
        trace = PowerTrace([5.0], [250.0])
        assert trace.energy() == 0.0
        assert trace.mean_power() == 250.0

    def test_min_max(self):
        trace = PowerTrace([0, 1, 2], [100, 300, 200])
        assert trace.max_power() == 300.0
        assert trace.min_power() == 100.0

    def test_slice(self):
        trace = PowerTrace([0, 1, 2, 3], [10, 20, 30, 40])
        part = trace.slice(1, 2)
        assert list(part.watts) == [20, 30]

    def test_slice_empty_rejected(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(PowerModelError):
            trace.slice(5, 6)

    def test_concat_and_shift(self):
        a = PowerTrace([0, 1], [10, 10])
        b = PowerTrace([0, 1], [20, 20]).shifted(2)
        both = a.concat(b)
        assert len(both) == 4
        assert both.duration == pytest.approx(3.0)

    def test_rejects_non_increasing_times(self):
        with pytest.raises(PowerModelError):
            PowerTrace([0, 0, 1], [1, 2, 3])

    def test_rejects_negative_power(self):
        with pytest.raises(PowerModelError):
            PowerTrace([0, 1], [5, -5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(PowerModelError):
            PowerTrace([0, 1, 2], [5, 5])

    def test_views_are_read_only(self):
        trace = PowerTrace([0, 1], [10, 20])
        with pytest.raises(ValueError):
            trace.watts[0] = 99
