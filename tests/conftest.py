"""Shared fixtures.

Expensive artifacts (the full experiment campaign, the reference run) are
session-scoped so the experiment/integration tests pay for them once.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import (
    BenchmarkSuite,
    HPLBenchmark,
    IOzoneBenchmark,
    StreamBenchmark,
)
from repro.cluster import presets
from repro.experiments import PAPER_CONFIG, SharedContext
from repro.sim import ClusterExecutor


@pytest.fixture
def fire():
    """The 8-node system under test."""
    return presets.fire()


@pytest.fixture
def fire_small():
    """A 2-node Fire variant for cheap simulation tests."""
    return presets.fire(num_nodes=2)


@pytest.fixture
def system_g_small():
    """A 4-node SystemG variant for cheap reference tests."""
    return presets.system_g(num_nodes=4)


@pytest.fixture
def executor(fire):
    """Seeded executor on the full Fire cluster."""
    return ClusterExecutor(fire, rng=7)


@pytest.fixture
def small_executor(fire_small):
    """Seeded executor on the 2-node Fire cluster."""
    return ClusterExecutor(fire_small, rng=7)


@pytest.fixture
def quick_suite():
    """A fast three-benchmark suite (short targets, small HPL)."""
    return BenchmarkSuite(
        [
            HPLBenchmark(sizing=("fixed", 4480), rounds=2),
            StreamBenchmark(target_seconds=10, intensity=0.4),
            IOzoneBenchmark(target_seconds=10),
        ]
    )


@pytest.fixture(scope="session")
def paper_context():
    """The full calibrated campaign (reference + Fire sweep), computed once."""
    context = SharedContext(PAPER_CONFIG)
    # Touch both lazily-computed artifacts so every consumer sees them warm.
    _ = context.reference
    _ = context.sweep
    return context
