"""Energy helpers, cooling models, and DVFS tests."""

import pytest

from repro.cluster import presets
from repro.exceptions import MetricError, PowerModelError
from repro.power import (
    COPCooling,
    DVFSModel,
    DVFSOperatingPoint,
    FixedPUECooling,
    PiecewisePower,
    average_power,
    energy_delay_product,
    energy_to_solution,
)


class TestEnergyHelpers:
    def test_edp(self):
        assert energy_delay_product(100.0, 10.0) == pytest.approx(1000.0)

    def test_ed2p(self):
        assert energy_delay_product(100.0, 10.0, weight=2) == pytest.approx(10000.0)

    def test_edp_rejects_zero_weight(self):
        with pytest.raises(MetricError):
            energy_delay_product(1, 1, weight=0)

    def test_average_power(self):
        assert average_power(6000.0, 60.0) == pytest.approx(100.0)

    def test_average_power_rejects_zero_duration(self):
        with pytest.raises(MetricError):
            average_power(100.0, 0.0)

    def test_energy_to_solution(self):
        assert energy_to_solution(250.0, 4.0) == pytest.approx(1000.0)


class TestCooling:
    def test_fixed_pue(self):
        cooling = FixedPUECooling(pue=1.7)
        assert cooling.facility_watts(1000) == pytest.approx(1700)

    def test_pue_below_one_rejected(self):
        with pytest.raises(PowerModelError):
            FixedPUECooling(pue=0.9)

    def test_unity_pue_is_free_cooling(self):
        assert FixedPUECooling(pue=1.0).facility_watts(1234) == pytest.approx(1234)

    def test_cop_cooling(self):
        cooling = COPCooling(cop=4.0, overhead_watts=100)
        assert cooling.facility_watts(1000) == pytest.approx(1000 * 1.25 + 100)

    def test_cop_effective_pue(self):
        cooling = COPCooling(cop=4.0)
        assert cooling.effective_pue(1000) == pytest.approx(1.25)

    def test_apply_lifts_whole_curve(self):
        truth = PiecewisePower([(0, 10, 100), (10, 20, 200)])
        lifted = FixedPUECooling(pue=2.0).apply(truth)
        assert lifted.energy() == pytest.approx(2 * truth.energy())
        assert lifted.duration == pytest.approx(truth.duration)


class TestDVFS:
    @pytest.fixture
    def ladder(self):
        points = (
            DVFSOperatingPoint(frequency_hz=2.3e9, voltage_v=1.20),
            DVFSOperatingPoint(frequency_hz=1.8e9, voltage_v=1.05),
            DVFSOperatingPoint(frequency_hz=1.2e9, voltage_v=0.95),
        )
        return DVFSModel(nominal=points[0], points=points)

    def test_dynamic_scale_at_nominal_is_one(self, ladder):
        assert ladder.dynamic_power_scale(ladder.points[0]) == pytest.approx(1.0)

    def test_lower_point_saves_power(self, ladder):
        assert ladder.dynamic_power_scale(ladder.points[2]) < 0.5

    def test_scale_cpu_rescales_clock_and_power(self, ladder):
        cpu = presets.fire().node.cpu
        scaled = ladder.scale_cpu(cpu, ladder.points[1])
        assert scaled.base_clock_hz == pytest.approx(1.8e9)
        assert scaled.tdp_watts < cpu.tdp_watts
        assert scaled.idle_watts < cpu.idle_watts
        assert scaled.peak_flops < cpu.peak_flops

    def test_scale_cpu_rejects_foreign_point(self, ladder):
        cpu = presets.fire().node.cpu
        foreign = DVFSOperatingPoint(frequency_hz=3.0e9, voltage_v=1.3)
        with pytest.raises(PowerModelError):
            ladder.scale_cpu(cpu, foreign)

    def test_points_must_descend(self):
        points = (
            DVFSOperatingPoint(frequency_hz=1.2e9, voltage_v=0.95),
            DVFSOperatingPoint(frequency_hz=2.3e9, voltage_v=1.20),
        )
        with pytest.raises(PowerModelError):
            DVFSModel(nominal=points[1], points=points)

    def test_nominal_must_be_in_ladder(self):
        points = (DVFSOperatingPoint(frequency_hz=2.3e9, voltage_v=1.20),)
        with pytest.raises(PowerModelError):
            DVFSModel(
                nominal=DVFSOperatingPoint(frequency_hz=2.0e9, voltage_v=1.1),
                points=points,
            )
