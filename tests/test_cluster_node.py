"""Node and cluster assembly tests."""

import pytest

from repro.cluster import ClusterSpec, presets
from repro.cluster.topology import ring_topology, star_topology
from repro.exceptions import SpecError


class TestNodeSpec:
    def test_cores(self, fire):
        assert fire.node.cores == 16

    def test_peak_flops(self, fire):
        # 16 cores x 2.3 GHz x 4 flops/cycle
        assert fire.node.peak_flops == pytest.approx(147.2e9)

    def test_memory_bytes(self, fire):
        assert fire.node.memory_bytes == pytest.approx(32 * 2**30)

    def test_nominal_envelope_ordering(self, fire):
        node = fire.node
        assert 0 < node.nominal_idle_watts < node.nominal_max_watts

    def test_accelerator_aggregation(self):
        gpu_node = presets.gpu_cluster().node
        assert gpu_node.accelerator_peak_flops == pytest.approx(2 * 515e9)
        assert gpu_node.total_peak_flops > gpu_node.peak_flops

    def test_no_accelerators_on_paper_systems(self, fire):
        assert fire.node.accelerators == ()
        assert fire.node.accelerator_peak_flops == 0.0


class TestClusterSpec:
    def test_total_cores(self, fire):
        assert fire.total_cores == 128

    def test_peak_flops(self, fire):
        assert fire.peak_flops == pytest.approx(1177.6e9)

    def test_default_topology_is_star(self, fire):
        assert fire.topology.name.startswith("star")

    def test_topology_size_mismatch_rejected(self, fire):
        with pytest.raises(SpecError):
            ClusterSpec(name="bad", node=fire.node, num_nodes=8, topology=star_topology(4))

    def test_with_nodes_resizes(self, fire):
        small = fire.with_nodes(2)
        assert small.num_nodes == 2
        assert small.total_cores == 32
        assert small.topology.num_nodes == 2

    def test_with_nodes_rejects_zero(self, fire):
        with pytest.raises(SpecError):
            fire.with_nodes(0)

    def test_custom_topology_accepted(self, fire):
        ring = ClusterSpec(name="ringed", node=fire.node, num_nodes=8, topology=ring_topology(8))
        assert ring.topology.name.startswith("ring")

    def test_aggregates_scale_linearly(self, fire):
        double = fire.with_nodes(16)
        assert double.peak_flops == pytest.approx(2 * fire.peak_flops)
        assert double.nominal_idle_watts == pytest.approx(2 * fire.nominal_idle_watts)

    def test_str_contains_name(self, fire):
        assert "Fire" in str(fire)


class TestPresets:
    def test_fire_matches_paper(self, fire):
        """Section IV: 8 nodes, 2x Opteron 6134 @ 2.3 GHz, 128 cores, 32 GB."""
        assert fire.num_nodes == 8
        assert fire.total_cores == 128
        assert fire.node.sockets == 2
        assert fire.node.cpu.base_clock_hz == pytest.approx(2.3e9)
        assert "6134" in fire.node.cpu.model

    def test_system_g_matches_paper(self):
        """Section IV: 128 nodes used, 1024 cores, 2x 2.8 GHz quad-core."""
        g = presets.system_g()
        assert g.num_nodes == 128
        assert g.total_cores == 1024
        assert g.node.cpu.cores == 4
        assert g.node.cpu.base_clock_hz == pytest.approx(2.8e9)

    def test_system_g_uses_qdr_ib(self):
        assert "InfiniBand" in presets.system_g().node.nic.name

    def test_presets_are_fresh_instances(self):
        assert presets.fire() is not presets.fire()

    def test_gpu_cluster_has_accelerators(self):
        gpu = presets.gpu_cluster()
        assert len(gpu.node.accelerators) == 2

    def test_modern_cluster_peaks_higher_per_node(self, fire):
        modern = presets.modern_cluster()
        assert modern.node.peak_flops > 10 * fire.node.peak_flops
