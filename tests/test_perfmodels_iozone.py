"""IOzone performance-model tests."""

import pytest

from repro.exceptions import BenchmarkError
from repro.perfmodels import IOzoneModel


@pytest.fixture
def model(fire):
    return IOzoneModel(cluster=fire)


class TestDeviceRate:
    def test_below_raw_device(self, model, fire):
        assert model.device_rate() < fire.node.storage.seq_write_bandwidth

    def test_filesystem_efficiency_applied(self, model, fire):
        assert model.device_rate() == pytest.approx(
            fire.node.storage.seq_write_bandwidth * 0.92
        )


class TestCacheWindow:
    def test_default_window_quarter_of_ram(self, model, fire):
        assert model.effective_cache_window() == pytest.approx(
            0.25 * fire.node.memory_bytes
        )

    def test_explicit_window_respected(self, fire):
        model = IOzoneModel(cluster=fire, cache_window_bytes=1e9)
        assert model.effective_cache_window() == 1e9

    def test_small_file_inflated_rate(self, fire):
        """A file inside the cache window reports near-memory bandwidth —
        the classic IOzone artifact."""
        model = IOzoneModel(cluster=fire, cache_window_bytes=8e9)
        pred = model.predict(1, file_bytes=4e9)
        assert pred.per_node_bandwidth == pytest.approx(model.cache_bandwidth)

    def test_huge_file_approaches_device_rate(self, model):
        pred = model.predict(1, file_bytes=100 * model.effective_cache_window())
        assert pred.per_node_bandwidth == pytest.approx(model.device_rate(), rel=0.05)

    def test_measured_rate_between_device_and_cache(self, model):
        pred = model.predict(1, file_bytes=2 * model.effective_cache_window())
        assert model.device_rate() < pred.per_node_bandwidth < model.cache_bandwidth


class TestPrediction:
    def test_aggregate_linear_in_nodes(self, model):
        p1 = model.predict(1, file_bytes=64e9)
        p8 = model.predict(8, file_bytes=64e9)
        assert p8.aggregate_bandwidth == pytest.approx(8 * p1.aggregate_bandwidth)

    def test_time_independent_of_node_count(self, model):
        t1 = model.predict(1, file_bytes=64e9).time_s
        t8 = model.predict(8, file_bytes=64e9).time_s
        assert t1 == pytest.approx(t8)

    def test_node_overflow_rejected(self, model):
        with pytest.raises(BenchmarkError):
            model.predict(9, file_bytes=1e9)

    def test_zero_file_rejected(self, model):
        with pytest.raises(BenchmarkError):
            model.predict(1, file_bytes=0)

    def test_file_size_for_time_roundtrip(self, model):
        size = model.file_size_for_time(45.0)
        pred = model.predict(1, file_bytes=size)
        assert pred.time_s == pytest.approx(45.0, rel=1e-6)

    def test_file_size_for_short_time_inside_window(self, fire):
        model = IOzoneModel(cluster=fire, cache_window_bytes=8e9)
        size = model.file_size_for_time(1.0)  # 1 s at cache speed = 2 GB
        assert size == pytest.approx(2e9)


class TestValidation:
    def test_bad_filesystem_efficiency(self, fire):
        with pytest.raises(BenchmarkError):
            IOzoneModel(cluster=fire, filesystem_efficiency=0.0)

    def test_bad_cache_bandwidth(self, fire):
        with pytest.raises(BenchmarkError):
            IOzoneModel(cluster=fire, cache_bandwidth=0.0)
