"""Campaign timeline capture, the fleet dashboard, and the CLI contract.

End-to-end half of the timeline tests: campaigns write per-job artifacts
without disturbing fingerprints, `tgi dashboard` renders one
self-contained HTML file, and every ``--json`` mode keeps stdout pure.
"""

import dataclasses
import json

import pytest

from repro import journal as jrnl
from repro import timeline as tline
from repro import viz
from repro.campaign import CampaignRunner
from repro.campaign.jobs import CampaignJob, ClusterRef
from repro.cli import main
from repro.experiments import PAPER_CONFIG

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


def _jobs(count=2):
    return [
        CampaignJob(
            job_id=f"fire-{i:02d}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=1),
            core_counts=(8,),
            seed=i,
            config=QUICK_CONFIG,
        )
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One journaled + timeline-armed campaign, shared across this module."""
    root = tmp_path_factory.mktemp("campaign")
    journal = root / "run.journal"
    timeline_dir = root / "timelines"
    result = CampaignRunner(journal=journal, timeline=timeline_dir).run(
        _jobs(), label="dash-test"
    )
    return result, journal, timeline_dir


class TestCampaignCapture:
    def test_artifacts_written_per_job(self, campaign):
        result, _, timeline_dir = campaign
        paths = tline.discover_artifacts(timeline_dir)
        assert [p.name for p in paths] == [
            "fire-00.timeline.json",
            "fire-01.timeline.json",
        ]
        for doc in tline.load_artifacts(timeline_dir):
            assert doc["runs"], "each job must capture at least one run"
            for run in doc["runs"]:
                assert run["audit"]["ok"]

    def test_manifest_timeline_block_is_volatile(self, campaign):
        result, _, _ = campaign
        block = result.manifest["timeline"]
        assert block["artifacts"] == 2
        assert block["version"] == tline.TIMELINE_SCHEMA_VERSION
        # fingerprint invariance: a bare run of the same jobs matches
        bare = CampaignRunner().run(_jobs(), label="dash-test")
        assert bare.manifest["timeline"] is None
        assert result.manifest["fingerprint"] == bare.manifest["fingerprint"]

    def test_journal_records_capture_pointers(self, campaign):
        _, journal, timeline_dir = campaign
        events = [e for e in jrnl.read_events(journal) if e["event"] == "timeline.captured"]
        assert [e["job"] for e in events] == ["fire-00", "fire-01"]
        for event in events:
            assert event["runs"] >= 1
            assert event["energy_j"] > 0
            assert str(timeline_dir) in event["path"]
        # the new event type passes full schema validation
        assert not jrnl.validate_events(jrnl.read_events(journal))

    def test_failed_jobs_write_no_artifact(self, tmp_path):
        from repro.faults import FaultPlan

        jobs = _jobs(1)
        jobs[0] = dataclasses.replace(
            jobs[0], faults=FaultPlan(node_crash_probability=1.0, seed=1)
        )
        result = CampaignRunner(
            timeline=tmp_path / "tl", keep_going=True
        ).run(jobs, label="crash")
        assert result.failed
        assert tline.discover_artifacts(tmp_path / "tl") == []


class TestDashboard:
    def test_renders_self_contained_html(self, campaign):
        result, journal, timeline_dir = campaign
        artifacts = tline.load_artifacts(timeline_dir)
        state = jrnl.replay_journal(journal)
        html = tline.render_dashboard(
            artifacts,
            title="Test fleet",
            manifest=result.manifest,
            journal_text=jrnl.render_progress(jrnl.progress_from_state(state)),
        )
        assert html.startswith("<!DOCTYPE html>")
        # self-contained: no network fetches, no scripts
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html
        for marker in ("Fleet ranking", "fire-00", "fire-01", "<svg", "Journal summary"):
            assert marker in html, f"missing dashboard section: {marker}"

    def test_escapes_hostile_labels(self, campaign):
        _, _, timeline_dir = campaign
        artifacts = tline.load_artifacts(timeline_dir)
        artifacts[0]["job_id"] = "<script>alert(1)</script>"
        artifacts[0]["runs"][0]["label"] = "<img onerror=x>"
        html = tline.render_dashboard(artifacts)
        assert "<script>alert" not in html
        assert "<img onerror" not in html

    def test_perfwatch_section(self, campaign):
        _, _, timeline_dir = campaign
        artifacts = tline.load_artifacts(timeline_dir)
        trajectory = {
            "perfwatch_version": 1,
            "scenario": "sim.timeline_overhead",
            "records": [
                {
                    "wall_s": [0.5, 0.6],
                    "metrics": {
                        "armed_overhead_fraction": {
                            "value": 0.01, "unit": "", "direction": "lower",
                        }
                    },
                }
            ],
        }
        html = tline.render_dashboard(artifacts, perfwatch=[trajectory])
        assert "sim.timeline_overhead" in html


class TestCLI:
    def test_dashboard_verb_writes_html(self, campaign, tmp_path, capsys):
        result, journal, timeline_dir = campaign
        manifest_path = tmp_path / "manifest.json"
        result.write_manifest(manifest_path)
        out_path = tmp_path / "fleet.html"
        code = main(
            [
                "dashboard",
                "--timeline", str(timeline_dir),
                "--manifest", str(manifest_path),
                "--journal", str(journal),
                "-o", str(out_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""  # product went to the file, not stdout
        html = out_path.read_text()
        assert "Fleet ranking" in html
        assert "http://" not in html and "https://" not in html

    def test_dashboard_to_stdout(self, campaign, capsys):
        _, _, timeline_dir = campaign
        assert main(["dashboard", "--timeline", str(timeline_dir)]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("<!DOCTYPE html>")

    def test_dashboard_missing_dir_exits_one(self, tmp_path, capsys):
        assert main(["dashboard", "--timeline", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_journal_summary_json_stdout_is_pure(self, campaign, capsys):
        _, journal, _ = campaign
        assert main(["journal", "summary", str(journal), "--json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout parses as one JSON document
        assert doc["total"] == 2 and doc["done"] == 2 and doc["complete"]
        assert doc["status"] == "ok"

    def test_journal_report_json_stdout_is_pure(self, campaign, capsys):
        _, journal, _ = campaign
        assert main(["journal", "report", str(journal), "--json"]) == 0
        json.loads(capsys.readouterr().out)

    def test_bench_report_json_stdout_is_pure(self, tmp_path, capsys):
        assert main(
            ["bench", "report", "--json", "--history", str(tmp_path / "hist")]
        ) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert "no history" in captured.err

    def test_campaign_parser_accepts_timeline(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["campaign", "--timeline", "tl"])
        assert args.timeline == "tl"
        args = build_parser().parse_args(
            ["dashboard", "--timeline", "tl", "-o", "x.html"]
        )
        assert args.command == "dashboard" and args.output == "x.html"

    def test_tail_renders_timeline_events(self, campaign, capsys):
        _, journal, _ = campaign
        assert main(["tail", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "timeline.captured" in out
        # one suite point = 3 benchmark runs captured per job
        assert "runs=3" in out


class TestVizHeadlessGuard:
    def test_sets_agg_when_headless_and_matplotlib_present(self, monkeypatch):
        env = {}
        monkeypatch.setattr(viz, "_matplotlib_available", lambda: True)
        assert viz.ensure_headless_backend(env) is True
        assert env["MPLBACKEND"] == "Agg"

    def test_respects_existing_display(self, monkeypatch):
        monkeypatch.setattr(viz, "_matplotlib_available", lambda: True)
        env = {"DISPLAY": ":0"}
        assert viz.ensure_headless_backend(env) is False
        assert "MPLBACKEND" not in env

    def test_respects_user_backend_choice(self, monkeypatch):
        monkeypatch.setattr(viz, "_matplotlib_available", lambda: True)
        env = {"MPLBACKEND": "TkAgg"}
        assert viz.ensure_headless_backend(env) is False
        assert env["MPLBACKEND"] == "TkAgg"

    def test_noop_without_matplotlib(self, monkeypatch):
        monkeypatch.setattr(viz, "_matplotlib_available", lambda: False)
        env = {}
        assert viz.ensure_headless_backend(env) is False
        assert env == {}
