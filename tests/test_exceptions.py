"""Exception-hierarchy tests: one except clause catches the library."""

import pytest

from repro import exceptions


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exceptions.__all__:
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError)

    def test_weight_error_is_metric_error(self):
        assert issubclass(exceptions.WeightError, exceptions.MetricError)

    def test_reference_mismatch_is_metric_error(self):
        assert issubclass(exceptions.ReferenceMismatchError, exceptions.MetricError)

    def test_placement_error_is_simulation_error(self):
        assert issubclass(exceptions.PlacementError, exceptions.SimulationError)

    def test_catching_base_catches_everything_raised_by_library(self, fire):
        """A representative failure from each layer lands under ReproError."""
        from repro.cluster.cpu import CPUSpec
        from repro.core import validate_weights
        from repro.perfmodels import HPLModel
        from repro.power import PiecewisePower
        from repro.sim import breadth_first_placement

        failures = [
            lambda: CPUSpec(
                model="x", cores=0, base_clock_hz=1, flops_per_cycle=1,
                tdp_watts=1, idle_watts=0,
            ),
            lambda: PiecewisePower([]),
            lambda: breadth_first_placement(fire, 10_000),
            lambda: HPLModel(cluster=fire).predict(100, 100_000),
            lambda: validate_weights({"a": 2.0}),
        ]
        for fail in failures:
            with pytest.raises(exceptions.ReproError):
                fail()

    def test_library_errors_are_not_value_errors(self):
        """Library failures are distinguishable from stdlib ones."""
        with pytest.raises(exceptions.ReproError):
            try:
                exceptions.ReproError("x").args
                raise exceptions.MetricError("boom")
            except ValueError:  # pragma: no cover - must not trigger
                pytest.fail("library error was a ValueError")
