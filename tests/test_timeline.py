"""Power-timeline capture, audit, downsampling, lenses, and artifacts.

The heart of the file is the hypothesis property test: for random rank
programs under **every** engine x integration x metering combination, the
captured columnar timeline must conserve energy — the timeline integral
matches ``PiecewisePower.energy()`` and the reported TGI inputs within
1e-9 relative (the audit's tolerance), and the per-component /
per-node decompositions close against the total.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import timeline as tline
from repro.cluster import presets
from repro.exceptions import TimelineError
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    barrier,
    breadth_first_placement,
    compute_phase,
    io_phase,
    memory_phase,
)

# ---------------------------------------------------------------------------
# Workload strategy: small mixed programs with exact binary durations.

binary_durations = st.integers(min_value=1, max_value=512).map(lambda n: n / 256.0)
fractions = st.integers(min_value=1, max_value=16).map(lambda n: n / 16.0)
phase_specs = st.tuples(
    st.integers(min_value=0, max_value=2), binary_durations, fractions
)


def _build_phase(spec):
    kind, duration, fraction = spec
    if kind == 0:
        return compute_phase(duration, intensity=fraction)
    if kind == 1:
        return memory_phase(duration, memory=fraction)
    return io_phase(duration, storage=fraction)


@st.composite
def small_programs(draw):
    num_ranks = draw(st.integers(min_value=1, max_value=12))
    num_barriers = draw(st.integers(min_value=0, max_value=2))
    programs = []
    for rank in range(num_ranks):
        program = RankProgram(rank=rank)
        for segment in range(num_barriers + 1):
            specs = draw(st.lists(phase_specs, min_size=1, max_size=3))
            for spec in specs:
                program.append(_build_phase(spec))
            if segment < num_barriers:
                program.append(barrier())
        programs.append(program)
    return programs


_MODE_COMBOS = [
    (engine, integration, metering)
    for engine in ClusterExecutor.ENGINE_MODES
    for integration in ClusterExecutor.INTEGRATION_MODES
    for metering in ClusterExecutor.METERING_MODES
]


def _run_captured(programs, engine, integration, metering):
    cluster = presets.fire(4)
    executor = ClusterExecutor(
        cluster, rng=7, engine=engine, integration=integration, metering=metering
    )
    placement = breadth_first_placement(cluster, len(programs))
    with tline.collecting() as captured:
        record = executor.execute(placement, programs)
    assert len(captured) == 1
    return record, captured[0]


class TestConservationAudit:
    @pytest.mark.parametrize("engine,integration,metering", _MODE_COMBOS)
    @given(programs=small_programs())
    @settings(max_examples=15, deadline=None)
    def test_audit_passes_in_every_mode(
        self, programs, engine, integration, metering
    ):
        """Random programs, all 8 mode combos: conservation within 1e-9."""
        record, timeline = _run_captured(programs, engine, integration, metering)
        report = tline.audit_run_timeline(timeline)
        assert report.ok, (
            f"audit failed under {engine}/{integration}/{metering}: "
            f"{report.as_dict()}"
        )
        assert report.worst <= 1e-9
        # The timeline's totals ARE the reported TGI inputs.
        assert timeline.true_energy_j == record.true_energy_j
        assert timeline.measured_energy_j == record.measured_energy_j
        assert timeline.makespan_s == record.makespan_s

    @given(programs=small_programs())
    @settings(max_examples=10, deadline=None)
    def test_component_and_node_closure(self, programs):
        """Component and per-node energies both sum back to the total."""
        _, timeline = _run_captured(programs, "vectorized", "vectorized", "system")
        total = timeline.energy_j
        components = timeline.component_energies()
        assert sum(components.values()) == pytest.approx(total, rel=1e-9)
        node_total = float(timeline.node_energies().sum())
        idle = timeline.idle_nodes * timeline.idle_wall_w * timeline.makespan_s
        assert node_total + idle == pytest.approx(total, rel=1e-9)

    def test_audit_detects_a_cooked_timeline(self):
        """Corrupting the captured totals must fail the audit."""
        programs = [RankProgram(rank=0, phases=[compute_phase(4.0)])]
        _, timeline = _run_captured(programs, "vectorized", "vectorized", "system")
        timeline.total_watts = timeline.total_watts * 1.01
        timeline._grid = None
        report = tline.audit_run_timeline(timeline)
        assert not report.ok


class TestCaptureSink:
    def test_disarmed_is_a_noop(self):
        assert not tline.capturing()
        tline.record(object())  # silently dropped, nothing raised
        programs = [RankProgram(rank=0, phases=[compute_phase(1.0)])]
        cluster = presets.fire(2)
        executor = ClusterExecutor(cluster, rng=7)
        placement = breadth_first_placement(cluster, 1)
        executor.execute(placement, programs)  # no sink, no capture

    def test_collecting_scopes_the_sink(self):
        with tline.collecting() as captured:
            assert tline.capturing()
            tline.record("something")
        assert not tline.capturing()
        assert captured == ["something"]

    def test_double_attach_rejected(self):
        sink = tline.MemorySink()
        tline.attach_sink(sink)
        try:
            with pytest.raises(TimelineError):
                tline.attach_sink(tline.MemorySink())
        finally:
            tline.detach_sink()
        assert tline.ambient_sink() is None


class TestDownsample:
    def _curve(self):
        rng = np.random.default_rng(11)
        widths = rng.uniform(0.1, 2.0, size=200)
        starts = np.concatenate([[0.0], np.cumsum(widths)[:-1]])
        ends = starts + widths
        watts = rng.uniform(100.0, 900.0, size=200)
        return starts, ends, watts

    def test_minmax_bins_preserve_energy(self):
        starts, ends, watts = self._curve()
        exact = float(np.dot(ends - starts, watts))
        for bins in (3, 16, 96):
            binned = tline.minmax_bins(starts, ends, watts, bins)
            edges = binned["edges"]
            rebuilt = float(np.dot(np.diff(edges), binned["w_mean"]))
            assert rebuilt == pytest.approx(exact, rel=1e-9)
            # The band bounds the mean, and both bound the data range.
            assert np.all(binned["w_min"] <= binned["w_mean"] + 1e-12)
            assert np.all(binned["w_mean"] <= binned["w_max"] + 1e-12)
            assert binned["w_min"].min() >= watts.min() - 1e-12
            assert binned["w_max"].max() <= watts.max() + 1e-12

    def test_minmax_band_covers_every_overlapping_segment(self):
        # A narrow spike entirely inside one bin must surface in w_max.
        starts = np.array([0.0, 10.0, 10.1])
        ends = np.array([10.0, 10.1, 20.0])
        watts = np.array([100.0, 5000.0, 100.0])
        binned = tline.minmax_bins(starts, ends, watts, 4)
        assert binned["w_max"].max() == 5000.0

    def test_lttb_is_deterministic_and_keeps_endpoints(self):
        rng = np.random.default_rng(3)
        times = np.cumsum(rng.uniform(0.5, 1.5, size=500))
        values = rng.uniform(0.0, 1.0, size=500)
        a = tline.lttb_indices(times, values, 50)
        b = tline.lttb_indices(times, values, 50)
        np.testing.assert_array_equal(a, b)
        assert a[0] == 0 and a[-1] == 499
        assert len(a) == 50
        assert np.all(np.diff(a) > 0)

    def test_lttb_small_inputs_pass_through(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([5.0, 7.0, 6.0])
        np.testing.assert_array_equal(
            tline.lttb_indices(times, values, 10), [0, 1, 2]
        )


class TestLenses:
    def _timeline(self):
        programs = [
            RankProgram(
                rank=r, phases=[compute_phase(5.0, intensity=1.0), barrier()]
            )
            for r in range(16)
        ]
        _, timeline = _run_captured(programs, "vectorized", "vectorized", "system")
        return timeline

    def test_scan_shape_and_determinism(self):
        timeline = self._timeline()
        scans = tline.scan_run(timeline)
        assert [s["lens"] for s in scans] == [
            "idle_dwell", "psu_saturation", "power_spike", "meter_drift",
        ]
        for scan in scans:
            assert set(scan) == {"lens", "value", "threshold", "flagged", "detail"}
            assert isinstance(scan["flagged"], bool)
        assert scans == tline.scan_run(timeline)

    def test_threshold_override_flips_flags(self):
        timeline = self._timeline()
        relaxed = tline.scan_run(timeline, {"meter_drift": 1e9})
        strict = tline.scan_run(timeline, {"meter_drift": 0.0})
        assert not relaxed[3]["flagged"]
        # measured never equals true exactly with a noisy meter
        assert strict[3]["flagged"] == (timeline.measured_energy_j != timeline.true_energy_j)


class TestArtifacts:
    def _timelines(self):
        programs = [
            RankProgram(rank=r, phases=[compute_phase(3.0 + r)]) for r in range(4)
        ]
        _, timeline = _run_captured(programs, "vectorized", "vectorized", "system")
        return [timeline]

    def test_write_read_round_trip(self, tmp_path):
        timelines = self._timelines()
        path = tline.write_job_artifact(
            tmp_path, job_id="fire a/b", timelines=timelines
        )
        assert path.name == "fire_a_b.timeline.json"  # filesystem-safe id
        doc = tline.read_job_artifact(path)
        assert doc["job_id"] == "fire a/b"
        (run,) = doc["runs"]
        assert run["audit"]["ok"]
        assert len(run["total"]["w_mean"]) == 96
        assert run["true_energy_j"] == timelines[0].true_energy_j
        # binned means re-integrate to the exact energy (within rounding:
        # watts are stored at milliwatt precision)
        edges = np.linspace(run["total"]["t0"], run["total"]["t1"], 97)
        rebuilt = float(np.dot(np.diff(edges), run["total"]["w_mean"]))
        assert rebuilt == pytest.approx(run["energy_j"], rel=1e-4)

    def test_version_and_structure_validation(self, tmp_path):
        bad = tmp_path / "x.timeline.json"
        bad.write_text(json.dumps({"timeline_version": 99, "job_id": "x", "runs": []}))
        with pytest.raises(TimelineError, match="version"):
            tline.read_job_artifact(bad)
        bad.write_text(json.dumps({"timeline_version": 1}))
        with pytest.raises(TimelineError, match="job_id"):
            tline.read_job_artifact(bad)
        bad.write_text("{ not json")
        with pytest.raises(TimelineError, match="unreadable"):
            tline.read_job_artifact(bad)

    def test_empty_job_rejected(self, tmp_path):
        with pytest.raises(TimelineError, match="captured no timelines"):
            tline.write_job_artifact(tmp_path, job_id="empty", timelines=[])

    def test_discover_and_load(self, tmp_path):
        with pytest.raises(TimelineError, match="not found"):
            tline.discover_artifacts(tmp_path / "missing")
        with pytest.raises(TimelineError, match="no .*artifacts"):
            tline.load_artifacts(tmp_path)
        tline.write_job_artifact(tmp_path, job_id="j1", timelines=self._timelines())
        assert len(tline.load_artifacts(tmp_path)) == 1


class TestFleetAggregator:
    def test_ranking_rows(self, tmp_path):
        for rank_count in (2, 6):
            programs = [
                RankProgram(rank=r, phases=[compute_phase(4.0)])
                for r in range(rank_count)
            ]
            _, timeline = _run_captured(
                programs, "vectorized", "vectorized", "system"
            )
            tline.write_job_artifact(
                tmp_path, job_id=f"job-{rank_count}", timelines=[timeline]
            )
        agg = tline.FleetAggregator()
        agg.add_directory(tmp_path)
        rows = agg.rows()
        assert agg.runs_total == 2
        assert agg.audits_failed == 0
        assert [r["rank"] for r in rows] == [1, 2]
        # greenest first: fewer busy ranks -> less energy
        assert rows[0]["energy_j"] <= rows[1]["energy_j"]
        assert all(r["audit_ok"] for r in rows)
