"""ASCII table-rendering tests."""

import pytest

from repro.analysis import render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["Name", "Value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = render_table(["Name", "Value"], [["a", 5], ["b", 12345]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("    5")
        assert rows[1].endswith("12345")

    def test_label_column_left_aligned(self):
        text = render_table(["Name", "V"], [["a", 1], ["long-name", 2]])
        assert text.splitlines()[2].startswith("a ")

    def test_wrong_cell_count_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_no_rows_is_fine(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_align_right_from_override(self):
        text = render_table(["A", "B"], [["x", "y"]], align_right_from=99)
        assert "x" in text
