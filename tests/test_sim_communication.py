"""Communication cost-model tests."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim import CommunicationModel


@pytest.fixture
def comm(fire):
    return CommunicationModel(cluster=fire)


class TestPointToPoint:
    def test_intra_node_cheaper_than_inter(self, comm):
        intra = comm.p2p_time(1e6, 0, 0)
        inter = comm.p2p_time(1e6, 0, 1)
        assert intra < inter

    def test_alpha_beta_structure(self, comm, fire):
        nic = fire.node.nic
        hops = fire.topology.hops(0, 1)
        expected = hops * nic.latency_s + 1e6 / nic.bandwidth
        assert comm.p2p_time(1e6, 0, 1) == pytest.approx(expected)

    def test_zero_bytes_is_pure_latency(self, comm, fire):
        t = comm.p2p_time(0, 0, 1)
        assert t == pytest.approx(fire.topology.hops(0, 1) * fire.node.nic.latency_s)

    def test_negative_bytes_rejected(self, comm):
        with pytest.raises(SimulationError):
            comm.p2p_time(-1, 0, 1)


class TestCollectives:
    def test_all_zero_for_single_rank(self, comm):
        assert comm.broadcast_time(1e6, 1) == 0.0
        assert comm.allreduce_time(1e6, 1) == 0.0
        assert comm.allgather_time(1e6, 1) == 0.0
        assert comm.alltoall_time(1e6, 1) == 0.0
        assert comm.barrier_time(1) == 0.0

    def test_broadcast_log_rounds(self, comm):
        t8 = comm.broadcast_time(1e6, 8)
        t64 = comm.broadcast_time(1e6, 64)
        assert t64 == pytest.approx(2 * t8)  # log2 64 = 2 * log2 8

    def test_allreduce_grows_with_ranks(self, comm):
        times = [comm.allreduce_time(1e6, p) for p in (2, 4, 16, 64)]
        assert times == sorted(times)

    def test_allreduce_bandwidth_term_bounded(self, comm, fire):
        """The 2m(p-1)/(p beta) term approaches 2m/beta from below."""
        m = 1e8
        bound = 2 * m / fire.node.nic.bandwidth
        t = comm.allreduce_time(m, 1024 if fire.total_cores >= 1024 else 128)
        latency = 2 * math.log2(128) * comm.effective_latency()
        assert t - latency < bound

    def test_alltoall_linear_in_ranks(self, comm):
        t4 = comm.alltoall_time(1e5, 4)
        t16 = comm.alltoall_time(1e5, 16)
        assert t16 == pytest.approx(5 * t4)  # (16-1)/(4-1)

    def test_allgather_total_volume(self, comm, fire):
        p = 8
        per_rank = 1e6
        t = comm.allgather_time(per_rank, p)
        volume_time = (p - 1) / p * per_rank * p / fire.node.nic.bandwidth
        assert t == pytest.approx((p - 1) * comm.effective_latency() + volume_time)

    def test_barrier_log_scaling(self, comm):
        assert comm.barrier_time(128) == pytest.approx(
            7 * comm.effective_latency()
        )

    def test_single_node_cluster_latency(self, fire):
        single = fire.with_nodes(1)
        comm = CommunicationModel(cluster=single)
        assert comm.effective_latency() < 1e-6  # shared-memory latency


class TestBatchForms:
    """The vectorized batch methods must match the scalars elementwise."""

    sizes = [0.0, 1.0, 512.0, 1e5, 1e6, 3.7e8]

    @pytest.mark.parametrize("op", CommunicationModel.COLLECTIVE_OPS)
    @pytest.mark.parametrize("num_ranks", [1, 2, 7, 64])
    def test_collective_times_match_scalars(self, comm, op, num_ranks):
        scalar = getattr(comm, f"{op}_time")
        batch = comm.collective_times(op, self.sizes, num_ranks)
        assert batch.shape == (len(self.sizes),)
        for got, m in zip(batch, self.sizes):
            assert got == pytest.approx(scalar(m, num_ranks), rel=1e-12, abs=0.0)

    def test_collective_times_unknown_op(self, comm):
        with pytest.raises(SimulationError, match="op must be one of"):
            comm.collective_times("gossip", [1.0], 4)

    def test_collective_times_negative_bytes(self, comm):
        with pytest.raises(SimulationError):
            comm.collective_times("broadcast", [1.0, -2.0], 4)

    def test_p2p_times_match_scalars(self, comm, fire):
        nodes = fire.num_nodes
        m = np.array(self.sizes)
        a = np.arange(len(self.sizes)) % nodes
        b = (np.arange(len(self.sizes)) * 3 + 1) % nodes
        batch = comm.p2p_times(m, a, b)
        for k in range(len(self.sizes)):
            assert batch[k] == pytest.approx(
                comm.p2p_time(float(m[k]), int(a[k]), int(b[k])), rel=1e-12, abs=0.0
            )

    def test_p2p_times_broadcasts_scalar_endpoints(self, comm):
        batch = comm.p2p_times(self.sizes, 0, 1)
        assert batch.shape == (len(self.sizes),)
        assert batch[0] == pytest.approx(comm.p2p_time(0.0, 0, 1))

    def test_p2p_times_intra_node(self, comm):
        batch = comm.p2p_times([1e6], 2, 2)
        assert batch[0] == pytest.approx(comm.p2p_time(1e6, 2, 2))

    def test_p2p_times_negative_bytes(self, comm):
        with pytest.raises(SimulationError):
            comm.p2p_times([-1.0], 0, 1)
