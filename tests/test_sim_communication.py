"""Communication cost-model tests."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.sim import CommunicationModel


@pytest.fixture
def comm(fire):
    return CommunicationModel(cluster=fire)


class TestPointToPoint:
    def test_intra_node_cheaper_than_inter(self, comm):
        intra = comm.p2p_time(1e6, 0, 0)
        inter = comm.p2p_time(1e6, 0, 1)
        assert intra < inter

    def test_alpha_beta_structure(self, comm, fire):
        nic = fire.node.nic
        hops = fire.topology.hops(0, 1)
        expected = hops * nic.latency_s + 1e6 / nic.bandwidth
        assert comm.p2p_time(1e6, 0, 1) == pytest.approx(expected)

    def test_zero_bytes_is_pure_latency(self, comm, fire):
        t = comm.p2p_time(0, 0, 1)
        assert t == pytest.approx(fire.topology.hops(0, 1) * fire.node.nic.latency_s)

    def test_negative_bytes_rejected(self, comm):
        with pytest.raises(SimulationError):
            comm.p2p_time(-1, 0, 1)


class TestCollectives:
    def test_all_zero_for_single_rank(self, comm):
        assert comm.broadcast_time(1e6, 1) == 0.0
        assert comm.allreduce_time(1e6, 1) == 0.0
        assert comm.allgather_time(1e6, 1) == 0.0
        assert comm.alltoall_time(1e6, 1) == 0.0
        assert comm.barrier_time(1) == 0.0

    def test_broadcast_log_rounds(self, comm):
        t8 = comm.broadcast_time(1e6, 8)
        t64 = comm.broadcast_time(1e6, 64)
        assert t64 == pytest.approx(2 * t8)  # log2 64 = 2 * log2 8

    def test_allreduce_grows_with_ranks(self, comm):
        times = [comm.allreduce_time(1e6, p) for p in (2, 4, 16, 64)]
        assert times == sorted(times)

    def test_allreduce_bandwidth_term_bounded(self, comm, fire):
        """The 2m(p-1)/(p beta) term approaches 2m/beta from below."""
        m = 1e8
        bound = 2 * m / fire.node.nic.bandwidth
        t = comm.allreduce_time(m, 1024 if fire.total_cores >= 1024 else 128)
        latency = 2 * math.log2(128) * comm.effective_latency()
        assert t - latency < bound

    def test_alltoall_linear_in_ranks(self, comm):
        t4 = comm.alltoall_time(1e5, 4)
        t16 = comm.alltoall_time(1e5, 16)
        assert t16 == pytest.approx(5 * t4)  # (16-1)/(4-1)

    def test_allgather_total_volume(self, comm, fire):
        p = 8
        per_rank = 1e6
        t = comm.allgather_time(per_rank, p)
        volume_time = (p - 1) / p * per_rank * p / fire.node.nic.bandwidth
        assert t == pytest.approx((p - 1) * comm.effective_latency() + volume_time)

    def test_barrier_log_scaling(self, comm):
        assert comm.barrier_time(128) == pytest.approx(
            7 * comm.effective_latency()
        )

    def test_single_node_cluster_latency(self, fire):
        single = fire.with_nodes(1)
        comm = CommunicationModel(cluster=single)
        assert comm.effective_latency() < 1e-6  # shared-memory latency
