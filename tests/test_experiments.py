"""Experiment-driver tests: every table/figure reproduces the paper's shape.

These are the headline reproduction assertions.  They run against the
session-scoped calibrated campaign (``paper_context``) so the whole module
costs one campaign.
"""

import numpy as np
import pytest

from repro.analysis import CurveShape, characterize_curve, pearson
from repro.exceptions import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.curves import run_fig2_hpl, run_fig3_stream, run_fig4_iozone
from repro.experiments.tables import run_table1_reference, run_table2_pcc
from repro.experiments.tgi_curves import run_fig5_tgi_am, run_fig6_tgi_weighted


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2",
            "table2ci", "capability",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_run_experiment_with_context(self, paper_context):
        result = run_experiment("fig4", paper_context)
        assert result.benchmark == "IOzone"


class TestFig2HPL:
    def test_shape_is_peaked(self, paper_context):
        """Figure 2: HPL's EE rises with process count, then rolls off."""
        fig2 = run_fig2_hpl(paper_context)
        assert fig2.shape is CurveShape.PEAKED

    def test_x_axis_is_process_sweep(self, paper_context):
        fig2 = run_fig2_hpl(paper_context)
        assert fig2.x == (16, 32, 48, 64, 80, 96, 112, 128)

    def test_ee_band_is_era_plausible(self, paper_context):
        """2010 Opteron cluster MFLOPS/W band: tens to low hundreds."""
        fig2 = run_fig2_hpl(paper_context)
        assert all(20 < v < 500 for v in fig2.efficiency)

    def test_format_renders(self, paper_context):
        text = run_fig2_hpl(paper_context).format()
        assert "Figure 2" in text and "HPL" in text


class TestFig3Stream:
    def test_mostly_rising(self, paper_context):
        """Figure 3: STREAM's EE rises steeply, saturating at the end."""
        fig3 = run_fig3_stream(paper_context)
        ee = np.array(fig3.efficiency)
        assert (np.diff(ee)[:-1] > 0).all()  # strictly rising until the last point
        assert ee[-1] > 0.9 * ee.max()  # the tail saturates, it does not crash

    def test_power_below_hpl(self, paper_context):
        """The paper's power ordering: HPL draws the most."""
        fig2 = run_fig2_hpl(paper_context)
        fig3 = run_fig3_stream(paper_context)
        assert max(fig3.power_w) < max(fig2.power_w)


class TestFig4IOzone:
    def test_monotone_rising(self, paper_context):
        """Figure 4: aggregate write EE grows with node count as the idle
        cluster's power floor is amortized."""
        fig4 = run_fig4_iozone(paper_context)
        assert fig4.shape is CurveShape.RISING

    def test_x_axis_is_nodes(self, paper_context):
        assert run_fig4_iozone(paper_context).x == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_lowest_power_of_suite(self, paper_context):
        fig3 = run_fig3_stream(paper_context)
        fig4 = run_fig4_iozone(paper_context)
        assert max(fig4.power_w) < min(fig3.power_w)


class TestFig5TGI:
    def test_tgi_rises_with_scale(self, paper_context):
        fig5 = run_fig5_tgi_am(paper_context)
        values = fig5.series.values
        assert values[-1] > values[0]

    def test_tgi_bounded_by_ree_extremes(self, paper_context):
        fig5 = run_fig5_tgi_am(paper_context)
        for result in fig5.series.results:
            assert min(result.ree.values()) <= result.value <= max(result.ree.values())

    def test_hpl_has_least_ree_at_scale(self, paper_context):
        """In the calibrated campaign HPL (strong-scaled on GigE) is the
        least-efficient subsystem relative to the reference at full scale."""
        fig5 = run_fig5_tgi_am(paper_context)
        assert fig5.series.results[-1].least_efficient_benchmark == "HPL"

    def test_tgi_follows_iozone_trend(self, paper_context):
        """Section IV-B: 'TGI follows a similar trend to the energy
        efficiency of IOzone'."""
        fig5 = run_fig5_tgi_am(paper_context)
        iozone_ee = paper_context.sweep.efficiency_series("IOzone")
        assert pearson(fig5.series.values, iozone_ee) > 0.95


class TestFig6Weighted:
    def test_all_four_series_present(self, paper_context):
        fig6 = run_fig6_tgi_weighted(paper_context)
        assert set(fig6.series_by_weighting) == {
            "arithmetic-mean", "time", "energy", "power",
        }

    def test_weightings_disagree(self, paper_context):
        fig6 = run_fig6_tgi_weighted(paper_context)
        am = fig6.series_by_weighting["arithmetic-mean"].values
        en = fig6.series_by_weighting["energy"].values
        assert not np.allclose(am, en)

    def test_format_renders(self, paper_context):
        assert "Figure 6" in run_fig6_tgi_weighted(paper_context).format()


class TestTable1:
    def test_benchmark_rows_present(self, paper_context):
        table1 = run_table1_reference(paper_context)
        assert set(table1.suite_result.names) == {"HPL", "STREAM", "IOzone"}

    def test_hpl_performance_band(self, paper_context):
        """Paper's Table I (OCR-garbled '8. TFLOPS') reconstructed as
        high-single-digit TFLOPS on 1024 Harpertown cores."""
        hpl = run_table1_reference(paper_context).suite_result["HPL"]
        assert 6e12 < hpl.performance < 11.5e12

    def test_power_ordering_matches_paper(self, paper_context):
        """Table I orders power HPL > STREAM > IOzone."""
        suite = run_table1_reference(paper_context).suite_result
        powers = suite.powers_w
        assert powers["HPL"] > powers["STREAM"] > powers["IOzone"]

    def test_format_renders(self, paper_context):
        assert "Table I" in run_table1_reference(paper_context).format()


class TestTable2:
    """The paper's headline correlations (Section IV-B prose + Table II)."""

    @pytest.fixture(scope="class")
    def table2(self, paper_context):
        return run_table2_pcc(paper_context)

    def test_am_ordering(self, table2):
        """AM TGI: IOzone (~.99) and STREAM (~.96) high, HPL (~.58) low."""
        am = {b: table2.pcc(b, "arithmetic-mean") for b in ("IOzone", "STREAM", "HPL")}
        assert am["IOzone"] > 0.95
        assert am["STREAM"] > 0.9
        assert am["HPL"] < 0.75
        assert am["HPL"] < am["STREAM"]
        assert am["HPL"] < am["IOzone"]

    def test_am_hpl_matches_paper_value(self, table2):
        """The paper quotes .58 for HPL; the calibrated model lands there."""
        assert table2.pcc("HPL", "arithmetic-mean") == pytest.approx(0.58, abs=0.08)

    def test_time_weights_similar_to_am(self, table2):
        """Section IV-B: time weights correlate like the arithmetic mean."""
        for benchmark in ("IOzone", "STREAM", "HPL"):
            delta = abs(
                table2.pcc(benchmark, "time") - table2.pcc(benchmark, "arithmetic-mean")
            )
            assert delta < 0.08

    def test_energy_and_power_weights_favor_hpl(self, table2):
        """Section IV-B: energy/power weights correlate *higher* with HPL —
        the undesired property of Eqs. 14-15."""
        am_hpl = table2.pcc("HPL", "arithmetic-mean")
        assert table2.pcc("HPL", "energy") > am_hpl
        assert table2.pcc("HPL", "power") > am_hpl

    def test_format_renders(self, table2):
        text = table2.format()
        assert "Table II" in text and "IOzone" in text


class TestTable2Uncertainty:
    @pytest.fixture(scope="class")
    def result(self, paper_context):
        from repro.experiments.uncertainty import run_table2_uncertainty

        return run_table2_uncertainty(paper_context)

    def test_estimates_match_table2(self, paper_context, result):
        table2 = run_table2_pcc(paper_context)
        for name in ("IOzone", "STREAM", "HPL"):
            assert result.intervals[name].estimate == pytest.approx(
                table2.pcc(name, "arithmetic-mean")
            )

    def test_hpl_is_the_fragile_coefficient(self, result):
        """The extension's point: HPL's .58 has a huge CI; the near-unity
        coefficients do not."""
        fragile = result.fragile_benchmarks()
        assert "HPL" in fragile
        assert "IOzone" not in fragile

    def test_intervals_contain_estimates(self, result):
        for ci in result.intervals.values():
            assert ci.low <= ci.estimate <= ci.high

    def test_deterministic(self, paper_context):
        from repro.experiments.uncertainty import run_table2_uncertainty

        a = run_table2_uncertainty(paper_context)
        b = run_table2_uncertainty(paper_context)
        for name in a.intervals:
            assert a.intervals[name].low == b.intervals[name].low

    def test_format_renders(self, result):
        text = result.format()
        assert "bootstrap CI" in text and "HPL" in text
