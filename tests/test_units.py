"""Unit-conversion and formatting tests."""

import math

import pytest

from repro import units


class TestConversions:
    def test_gflops(self):
        assert units.gflops(1.5) == 1.5e9

    def test_tflops(self):
        assert units.tflops(2) == 2e12

    def test_mflops(self):
        assert units.mflops(250) == 2.5e8

    def test_mbps(self):
        assert units.mbps(100) == 1e8

    def test_gbps(self):
        assert units.gbps(3.2) == 3.2e9

    def test_identity_helpers(self):
        assert units.flops(123.0) == 123.0
        assert units.bytes_per_second(5) == 5.0

    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(1520) == pytest.approx(1.52)

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_binary_prefixes(self):
        assert units.GIB == 2**30
        assert units.KIB * units.KIB == units.MIB


class TestFormatting:
    def test_si_format_giga(self):
        assert units.si_format(1.234e9, "FLOPS") == "1.23 GFLOPS"

    def test_si_format_below_kilo(self):
        assert units.si_format(999, "W") == "999.00 W"

    def test_si_format_negative(self):
        assert units.si_format(-2e6, "B/s") == "-2.00 MB/s"

    def test_si_format_non_finite(self):
        assert "inf" in units.si_format(math.inf, "W")

    def test_format_flops(self):
        assert units.format_flops(901e9) == "901.00 GFLOPS"

    def test_format_power_kilowatts(self):
        assert units.format_power(1520) == "1.52 kW"

    def test_format_energy(self):
        assert units.format_energy(3.6e6) == "3.60 MJ"

    def test_format_time_seconds(self):
        assert units.format_time(45.0) == "45.0 s"

    def test_format_time_minutes(self):
        assert units.format_time(600) == "10.0 min"

    def test_format_time_hours(self):
        assert units.format_time(7200) == "2.0 h"

    def test_format_bytes_gib(self):
        assert units.format_bytes(32 * units.GIB) == "32.0 GiB"

    def test_format_bytes_small(self):
        assert units.format_bytes(512) == "512 B"

    def test_precision_parameter(self):
        assert units.si_format(1.23456e9, "FLOPS", precision=4) == "1.2346 GFLOPS"
