"""PSU efficiency-curve tests."""

import pytest

from repro.exceptions import PowerModelError
from repro.power import IDEAL_PSU, PSUModel


class TestPSUModel:
    def test_efficiency_interpolates(self):
        psu = PSUModel(rated_watts=1000)
        # halfway between (0.10, 0.75) and (0.20, 0.83)
        assert psu.efficiency(150) == pytest.approx(0.79)

    def test_wall_watts_exceed_dc(self):
        psu = PSUModel(rated_watts=400)
        assert psu.wall_watts(200) > 200

    def test_zero_load_zero_wall(self):
        assert PSUModel(rated_watts=400).wall_watts(0) == 0.0

    def test_light_load_less_efficient_than_half_load(self):
        psu = PSUModel(rated_watts=1000)
        assert psu.efficiency(50) < psu.efficiency(500)

    def test_overload_clamps_to_full_load(self):
        psu = PSUModel(rated_watts=100)
        assert psu.efficiency(500) == pytest.approx(psu.efficiency(100))

    def test_rejects_negative_dc(self):
        with pytest.raises(PowerModelError):
            PSUModel(rated_watts=100).efficiency(-1)

    def test_ideal_psu_is_lossless(self):
        assert IDEAL_PSU.wall_watts(123.4) == pytest.approx(123.4)

    def test_curve_must_be_sorted(self):
        with pytest.raises(PowerModelError):
            PSUModel(rated_watts=100, curve=((0.0, 0.8), (0.6, 0.9), (0.5, 0.85), (1.0, 0.8)))

    def test_curve_must_span_unit_interval(self):
        with pytest.raises(PowerModelError):
            PSUModel(rated_watts=100, curve=((0.1, 0.8), (1.0, 0.85)))

    def test_curve_efficiency_bounds(self):
        with pytest.raises(PowerModelError):
            PSUModel(rated_watts=100, curve=((0.0, 0.0), (1.0, 0.9)))
        with pytest.raises(PowerModelError):
            PSUModel(rated_watts=100, curve=((0.0, 0.5), (1.0, 1.2)))

    def test_wall_power_monotone_in_dc(self):
        psu = PSUModel(rated_watts=1000)
        walls = [psu.wall_watts(dc) for dc in (10, 50, 100, 300, 600, 900, 1000)]
        assert walls == sorted(walls)
