"""Desired-property tests (Section III, Eqs. 5 and 13-15)."""

import pytest

from repro.core import (
    ReferenceSet,
    energy_weighted_identity,
    inverse_energy_property_holds,
    power_weighted_identity,
    time_weighted_identity,
)
from repro.exceptions import MetricError


@pytest.fixture
def suite_result(quick_suite, executor):
    return quick_suite.run(executor, 64)


@pytest.fixture
def reference(quick_suite, small_executor, fire_small):
    ref = quick_suite.run(small_executor, fire_small.total_cores)
    return ReferenceSet.from_suite_result(ref, system_name="mini-ref")


class TestInverseEnergyProperty:
    def test_performance_per_watt_has_it(self):
        """EE = (work/t)/(E/t) = work/E: scaling E by k scales EE by 1/k."""

        def perf_per_watt(work, time_s, energy_j):
            return (work / time_s) / (energy_j / time_s)

        assert inverse_energy_property_holds(perf_per_watt)

    def test_inverse_edp_has_it(self):
        def inv_edp(work, time_s, energy_j):
            return 1.0 / (energy_j * time_s)

        assert inverse_energy_property_holds(inv_edp)

    def test_raw_performance_lacks_it(self):
        """Plain FLOPS ignores energy entirely — the property fails."""

        def raw_perf(work, time_s, energy_j):
            return work / time_s

        assert not inverse_energy_property_holds(raw_perf)

    def test_energy_squared_metric_lacks_it(self):
        def too_strong(work, time_s, energy_j):
            return work / energy_j**2

        assert not inverse_energy_property_holds(too_strong)

    def test_rejects_non_positive_base(self):
        with pytest.raises(MetricError):
            inverse_energy_property_holds(lambda w, t, e: 1.0, energy_j=0.0)


class TestWeightedIdentities:
    def test_eq13_time_weights(self, suite_result, reference):
        left, right = time_weighted_identity(suite_result, reference)
        assert left == pytest.approx(right, rel=1e-9)

    def test_eq14_energy_weights(self, suite_result, reference):
        left, right = energy_weighted_identity(suite_result, reference)
        assert left == pytest.approx(right, rel=1e-9)

    def test_eq15_power_weights(self, suite_result, reference):
        left, right = power_weighted_identity(suite_result, reference)
        assert left == pytest.approx(right, rel=1e-9)

    def test_energy_cancellation_is_real(self, suite_result, reference):
        """Eq. 14's closed form depends only on total energy: scaling ONE
        benchmark's energy while keeping M_i and t_i changes TGI_e only
        through the denominator sum — verify the structure numerically by
        recomputing the right-hand side with perturbed per-benchmark
        energies that keep the total fixed."""
        data = {
            r.benchmark: (r.performance, r.time_s, r.energy_j)
            for r in suite_result.results
        }
        total_energy = sum(e for _, _, e in data.values())
        rhs = sum(
            m * t / reference.efficiency(name) for name, (m, t, _) in data.items()
        ) / total_energy
        _, right = energy_weighted_identity(suite_result, reference)
        assert right == pytest.approx(rhs)
