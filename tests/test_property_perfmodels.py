"""Property-based tests on the performance models (hypothesis).

Specs are generated over wide parameter ranges so the invariants hold for
*any* plausible machine, not just the calibrated presets.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import presets
from repro.cluster.cluster import ClusterSpec
from repro.perfmodels import HPLModel, IOzoneModel, StreamModel


@st.composite
def fire_variants(draw):
    """Fire-shaped clusters with randomized memory/disk/NIC parameters."""
    fire = presets.fire()
    mem = dataclasses.replace(
        fire.node.memory,
        stream_efficiency=draw(st.floats(min_value=0.1, max_value=0.9)),
        cores_to_saturate=draw(st.integers(min_value=1, max_value=8)),
        channel_bandwidth=draw(st.floats(min_value=1e9, max_value=4e10)),
    )
    sto = dataclasses.replace(
        fire.node.storage,
        seq_write_bandwidth=draw(st.floats(min_value=2e7, max_value=1e9)),
    )
    nic = dataclasses.replace(
        fire.node.nic,
        latency_s=draw(st.floats(min_value=1e-6, max_value=1e-4)),
        bandwidth=draw(st.floats(min_value=5e7, max_value=5e9)),
    )
    node = dataclasses.replace(fire.node, memory=mem, storage=sto, nic=nic)
    return ClusterSpec(name="variant", node=node, num_nodes=8)


class TestStreamProperties:
    @given(cluster=fire_variants(), k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_node_bandwidth_bounded_and_positive(self, cluster, k):
        model = StreamModel(cluster=cluster)
        bw = model.node_bandwidth(k)
        assert 0 < bw <= cluster.node.sustained_memory_bandwidth * (1 + 1e-9)

    @given(cluster=fire_variants())
    @settings(max_examples=50, deadline=None)
    def test_node_bandwidth_monotone_in_ranks(self, cluster):
        model = StreamModel(cluster=cluster)
        rates = [model.node_bandwidth(k) for k in range(1, 17)]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))

    @given(
        cluster=fire_variants(),
        p=st.sampled_from([16, 32, 64, 128]),
        iters=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_time_linear_in_iterations(self, cluster, p, iters):
        model = StreamModel(cluster=cluster)
        t1 = model.predict(p, iterations=1).time_s
        tn = model.predict(p, iterations=iters).time_s
        assert tn == pytest.approx(iters * t1, rel=1e-9)


class TestHPLProperties:
    @given(
        cluster=fire_variants(),
        n=st.integers(min_value=1, max_value=200),
        p=st.sampled_from([1, 16, 64, 128]),
    )
    @settings(max_examples=50, deadline=None)
    def test_performance_positive_and_below_peak(self, cluster, n, p):
        model = HPLModel(cluster=cluster)
        pred = model.predict(n * 224, p)
        assert 0 < pred.performance_flops < cluster.peak_flops

    @given(cluster=fire_variants(), p=st.sampled_from([16, 64, 128]))
    @settings(max_examples=50, deadline=None)
    def test_time_components_non_negative(self, cluster, p):
        pred = HPLModel(cluster=cluster).predict(20160, p)
        assert pred.compute_time_s > 0
        assert pred.comm_volume_time_s >= 0
        assert pred.comm_latency_time_s >= 0
        assert 0 < pred.parallel_efficiency <= 1

    @given(cluster=fire_variants(), n=st.integers(min_value=5, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_bigger_matrix_takes_longer(self, cluster, n):
        model = HPLModel(cluster=cluster)
        small = model.predict(n * 224, 64)
        large = model.predict((n + 10) * 224, 64)
        assert large.total_time_s > small.total_time_s


class TestIOzoneProperties:
    @given(
        cluster=fire_variants(),
        file_gb=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_measured_rate_between_device_and_cache(self, cluster, file_gb):
        model = IOzoneModel(cluster=cluster)
        pred = model.predict(1, file_bytes=file_gb * 1e9)
        assert model.device_rate() - 1e-9 <= pred.per_node_bandwidth
        assert pred.per_node_bandwidth <= model.cache_bandwidth + 1e-9

    @given(
        cluster=fire_variants(),
        nodes=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_aggregate_exactly_linear_in_nodes(self, cluster, nodes):
        model = IOzoneModel(cluster=cluster)
        one = model.predict(1, file_bytes=64e9)
        many = model.predict(nodes, file_bytes=64e9)
        assert many.aggregate_bandwidth == pytest.approx(
            nodes * one.aggregate_bandwidth, rel=1e-9
        )

    @given(
        cluster=fire_variants(),
        seconds=st.floats(min_value=5.0, max_value=600.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_file_size_for_time_inverts_predict(self, cluster, seconds):
        model = IOzoneModel(cluster=cluster)
        size = model.file_size_for_time(seconds)
        pred = model.predict(1, file_bytes=size)
        assert pred.time_s == pytest.approx(seconds, rel=1e-6)
