"""Sharded-scheduler tests: planning, stealing, parity, crash resume.

The contracts pinned here:

* shard assignment is a pure function of the cache key — every run (and
  host) that agrees on the jobs agrees on the plan, and the plan is a
  partition: every pending job lands in exactly one shard;
* scheduler manifests are fingerprint-identical to plain
  :class:`CampaignRunner` manifests for the same jobs — inline, pooled,
  resumed, or fault-injected, "how it ran" never leaks into "what it
  computed";
* work stealing drains skewed shards: a single worker slot with several
  planned shards finishes everything and journals each steal;
* failure policy matches the runner: fail-fast raises
  :class:`CampaignExecutionError`, keep-going records the damage;
* resume demands its inputs (journal + cache), rejects journals from a
  different campaign, and rejects jobs whose definition changed since the
  crash (key mismatch);
* the crash drill: killing the run after *every* journal event, then
  resuming, always reconverges to the uninterrupted fingerprint, never
  re-executes a job whose result was durably published (``job.stored``),
  and extends the same journal under the original run id.
"""

import dataclasses

import pytest

from repro import journal as jrnl
from repro.campaign import (
    CampaignJob,
    CampaignRunner,
    ClusterRef,
    InlineTransport,
    ResultCache,
    ShardedCampaignScheduler,
    cache_key,
    plan_shards,
    shard_of,
)
from repro.exceptions import CampaignExecutionError, ReproError
from repro.faults import FaultPlan
from repro.experiments import PAPER_CONFIG

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    core_counts=(16,),
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


LABEL = "campaign"


def _jobs(n=3, *, faulty=(), transient_failures=1, seed=7):
    """n quick jobs; ids listed in ``faulty`` get a transient-fault plan."""
    return [
        CampaignJob(
            job_id=f"j{i}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=2),
            core_counts=(16,),
            seed=i,
            config=QUICK_CONFIG,
            faults=FaultPlan(transient_failures=transient_failures, seed=seed)
            if f"j{i}" in faulty
            else None,
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _no_leaked_ambient():
    jrnl.detach()
    yield
    assert jrnl.ambient() is None, "test leaked an ambient journal writer"
    jrnl.detach()


@pytest.fixture(scope="module")
def reference_fingerprint():
    """The plain-runner fingerprint every scheduler variant must match."""
    result = CampaignRunner(workers=1).run(_jobs(3), label=LABEL)
    return result.manifest["fingerprint"]


# ---------------------------------------------------------------------------
# Planning


class TestShardPlanning:
    def test_shard_of_is_deterministic_and_in_range(self):
        keys = [cache_key(job) for job in _jobs(6)]
        for key in keys:
            for n in (1, 2, 3, 7):
                shard = shard_of(key, n)
                assert 0 <= shard < n
                assert shard == shard_of(key, n)  # pure

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ReproError):
            shard_of("ab" * 32, 0)

    def test_plan_is_a_partition(self):
        keys = [cache_key(job) for job in _jobs(8)]
        plan = plan_shards(keys, 3)
        seen = sorted(p for members in plan.assignments for p in members)
        assert seen == list(range(len(keys)))  # every position exactly once
        assert plan.jobs == len(keys)
        assert plan.num_shards == 3

    def test_plan_is_stable_across_calls_and_job_order(self):
        keys = [cache_key(job) for job in _jobs(8)]
        plan = plan_shards(keys, 4)
        assert plan == plan_shards(keys, 4)
        # shard membership is per-key, not per-position
        by_key = {key: shard_of(key, 4) for key in keys}
        for shard, members in enumerate(plan.assignments):
            for position in members:
                assert by_key[keys[position]] == shard

    def test_empty_shards_are_allowed(self):
        plan = plan_shards([cache_key(_jobs(1)[0])], 5)
        assert sum(plan.sizes) == 1
        assert plan.sizes.count(0) == 4


# ---------------------------------------------------------------------------
# Parity with the runner


class TestSchedulerParity:
    def test_inline_fingerprint_matches_runner(self, reference_fingerprint):
        result = ShardedCampaignScheduler(workers=1, shards=2).run(
            _jobs(3), label=LABEL
        )
        assert result.manifest["fingerprint"] == reference_fingerprint
        assert result.manifest["sharding"]["shards"] == 2
        assert result.manifest["sharding"]["transport"] == "inline"
        assert result.manifest["sharding"]["resumed"] is False

    def test_pool_fingerprint_matches_runner(self, reference_fingerprint, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = ShardedCampaignScheduler(workers=2, cache=cache).run(
            _jobs(3), label=LABEL
        )
        assert result.manifest["fingerprint"] == reference_fingerprint
        assert result.manifest["sharding"]["transport"] == "process-pool"
        # every computed payload was published worker-side
        assert len(cache) == 3

    def test_plan_block_covers_every_pending_job(self, tmp_path):
        result = ShardedCampaignScheduler(workers=1, shards=3).run(
            _jobs(4), label="plan"
        )
        planned = sorted(
            job_id for shard in result.manifest["sharding"]["plan"] for job_id in shard
        )
        assert planned == [f"j{i}" for i in range(4)]

    def test_failfast_raises_like_runner(self):
        jobs = _jobs(3, faulty=("j1",), transient_failures=99)
        with pytest.raises(CampaignExecutionError) as excinfo:
            ShardedCampaignScheduler(workers=1).run(jobs, label="boom")
        assert excinfo.value.failures[0]["job_id"] == "j1"

    def test_keep_going_records_failures(self):
        jobs = _jobs(3, faulty=("j1",), transient_failures=99)
        result = ShardedCampaignScheduler(workers=1, keep_going=True).run(
            jobs, label="limp"
        )
        assert [o.job.job_id for o in result.failed] == ["j1"]
        assert result.manifest["failures"]["jobs_failed"] == 1

    def test_retry_parity_with_faults(self):
        # Fault plans are part of the job definition (and so the key), so
        # the reference here is the plain runner on the SAME faulty jobs.
        jobs = _jobs(3, faulty=("j2",), transient_failures=1)
        reference = CampaignRunner(workers=1, retries=1).run(jobs, label=LABEL)
        result = ShardedCampaignScheduler(workers=1, retries=1).run(
            jobs, label=LABEL
        )
        assert result.manifest["fingerprint"] == reference.manifest["fingerprint"]
        assert result.outcomes[2].attempts == 2

    def test_explicit_transport_is_used(self):
        transport = InlineTransport()
        result = ShardedCampaignScheduler(
            workers=4, shards=2, transport=transport
        ).run(_jobs(2), label="custom")
        assert result.manifest["sharding"]["transport"] == "inline"

    def test_constructor_validation(self):
        with pytest.raises(ReproError):
            ShardedCampaignScheduler(workers=0)
        with pytest.raises(ReproError):
            ShardedCampaignScheduler(shards=-1)
        with pytest.raises(ReproError):
            ShardedCampaignScheduler(retries=-1)


# ---------------------------------------------------------------------------
# Work stealing


class TestWorkStealing:
    def test_single_slot_steals_across_shards(self, tmp_path):
        """One worker slot, several shards: it drains its home, then steals."""
        path = tmp_path / "steal.jsonl"
        result = ShardedCampaignScheduler(workers=1, shards=3, journal=path).run(
            _jobs(5), label="steal"
        )
        sharding = result.manifest["sharding"]
        occupied = sum(1 for shard in sharding["plan"] if shard)
        assert sharding["stolen"] >= occupied - 1  # every non-home shard is robbed
        events = jrnl.read_events(path)
        steals = [e for e in events if e["event"] == "job.stolen"]
        assert len(steals) == sharding["stolen"]
        for steal in steals:
            assert steal["from_shard"] != steal["by_shard"]
        assert jrnl.validate_events(events) == []

    def test_no_steals_needed_with_one_shard(self, tmp_path):
        result = ShardedCampaignScheduler(workers=1, shards=1).run(
            _jobs(3), label="home"
        )
        assert result.manifest["sharding"]["stolen"] == 0


# ---------------------------------------------------------------------------
# Resume: input validation


class TestResumeValidation:
    def test_resume_needs_a_journal(self, tmp_path):
        scheduler = ShardedCampaignScheduler(cache=ResultCache(tmp_path / "c"))
        with pytest.raises(ReproError, match="needs a journal"):
            scheduler.run(_jobs(2), resume=True)

    def test_resume_needs_the_cache(self, tmp_path):
        scheduler = ShardedCampaignScheduler(journal=tmp_path / "r.jsonl")
        with pytest.raises(ReproError, match="cache"):
            scheduler.run(_jobs(2), resume=True)

    def test_resume_needs_an_existing_journal_file(self, tmp_path):
        scheduler = ShardedCampaignScheduler(
            cache=ResultCache(tmp_path / "c"), journal=tmp_path / "missing.jsonl"
        )
        with pytest.raises(ReproError, match="does not exist"):
            scheduler.run(_jobs(2), resume=True)

    def test_resume_rejects_foreign_journal(self, tmp_path):
        path = tmp_path / "other.jsonl"
        writer = jrnl.JournalWriter(path, label="other")
        writer.emit("run.start", label="other", jobs=1, workers=1,
                    retries_allowed=0, keep_going=False, cache_enabled=True)
        writer.emit("job.scheduled", job="stranger", key="ab" * 32, index=0)
        writer.close()
        scheduler = ShardedCampaignScheduler(
            cache=ResultCache(tmp_path / "c"), journal=path
        )
        with pytest.raises(ReproError, match="stranger"):
            scheduler.run(_jobs(2), resume=True)

    def test_resume_rejects_changed_job_definition(self, tmp_path):
        """Same id, different key: the job changed since the crash."""
        cache = ResultCache(tmp_path / "c")
        path = tmp_path / "r.jsonl"
        ShardedCampaignScheduler(cache=cache, journal=path).run(
            _jobs(2), label="orig"
        )
        changed = [
            dataclasses.replace(job, seed=job.seed + 100) for job in _jobs(2)
        ]
        scheduler = ShardedCampaignScheduler(cache=cache, journal=path)
        with pytest.raises(ReproError, match="definition changed"):
            scheduler.run(changed, resume=True)

    def test_resume_rejects_empty_journal(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        scheduler = ShardedCampaignScheduler(
            cache=ResultCache(tmp_path / "c"), journal=path
        )
        with pytest.raises(ReproError, match="no run.start"):
            scheduler.run(_jobs(2), resume=True)


# ---------------------------------------------------------------------------
# Resume: behavior


class TestResume:
    def test_resume_of_completed_run_recovers_everything(
        self, reference_fingerprint, tmp_path
    ):
        cache = ResultCache(tmp_path / "c")
        path = tmp_path / "r.jsonl"
        first = ShardedCampaignScheduler(cache=cache, journal=path).run(
            _jobs(3), label=LABEL
        )
        second = ShardedCampaignScheduler(cache=cache, journal=path).run(
            _jobs(3), label=LABEL, resume=True
        )
        assert second.manifest["fingerprint"] == reference_fingerprint
        sharding = second.manifest["sharding"]
        assert sharding["resumed"] is True
        assert sharding["jobs_recovered"] == 3
        assert all(o.cache_status == "hit" for o in second.outcomes)
        state = jrnl.replay(jrnl.read_events(path))
        assert state.resumes == 1
        assert state.run_id == first.manifest["journal"]["run_id"]

    def test_crash_then_resume_reconverges(self, reference_fingerprint, tmp_path):
        """Kill the run mid-flight; resume finishes it, same fingerprint."""
        cache = ResultCache(tmp_path / "c")
        path = tmp_path / "r.jsonl"
        crasher = jrnl.CrashingJournalWriter(path, crash_after=8, label=LABEL)
        with pytest.raises(jrnl.SimulatedCrash):
            ShardedCampaignScheduler(cache=cache, journal=crasher).run(
                _jobs(3), label=LABEL
            )
        # the torn run has no run.stop: the crash detector's signal
        state = jrnl.replay(jrnl.read_events(path))
        assert state.started and not state.stopped
        result = ShardedCampaignScheduler(cache=cache, journal=path).run(
            _jobs(3), label=LABEL, resume=True
        )
        assert result.manifest["fingerprint"] == reference_fingerprint
        final = jrnl.replay(jrnl.read_events(path))
        assert final.stopped and final.stop_status == "ok"
        assert final.resumes == 1
        assert final.run_id == state.run_id  # same run, extended journal

    def test_kill_at_every_journal_event_then_resume(self, tmp_path):
        """The resume drill, exhaustively: crash after every single event.

        The byte-offset truncation test proves any torn journal *parses*;
        this proves any torn journal *resumes* — for every possible
        crash point k, the resumed run reconverges to the uninterrupted
        fingerprint, keeps the original run id, and never re-executes a
        job whose ``job.stored`` event (durable publication) predates the
        crash.
        """
        jobs = _jobs(2)
        # Size the drill (and take the reference fingerprint) from a clean
        # uninterrupted run, anchored to the plain runner first.
        probe_path = tmp_path / "probe.jsonl"
        probe = ShardedCampaignScheduler(
            cache=ResultCache(tmp_path / "probe-cache"), journal=probe_path
        ).run(jobs, label=LABEL)
        reference_fingerprint = probe.manifest["fingerprint"]
        runner_result = CampaignRunner(workers=1).run(jobs, label=LABEL)
        assert reference_fingerprint == runner_result.manifest["fingerprint"]
        total_events = len(jrnl.read_events(probe_path))
        assert total_events >= 8

        for crash_after in range(1, total_events):
            root = tmp_path / f"k{crash_after}"
            root.mkdir()
            cache = ResultCache(root / "cache")
            path = root / "r.jsonl"
            crasher = jrnl.CrashingJournalWriter(
                path, crash_after=crash_after, label=LABEL
            )
            with pytest.raises(jrnl.SimulatedCrash):
                ShardedCampaignScheduler(cache=cache, journal=crasher).run(
                    jobs, label=LABEL
                )
            torn = jrnl.read_events(path)
            assert len(torn) == crash_after
            stored_before_crash = {
                e["job"] for e in torn if e["event"] == "job.stored"
            }
            result = ShardedCampaignScheduler(cache=cache, journal=path).run(
                jobs, label=LABEL, resume=True
            )
            assert result.manifest["fingerprint"] == reference_fingerprint, (
                f"fingerprint diverged at crash_after={crash_after}"
            )
            events = jrnl.read_events(path)
            assert jrnl.validate_events(events) == []
            state = jrnl.replay(events)
            assert state.stopped and state.stop_status == "ok"
            assert state.resumes == 1
            assert len({e["run_id"] for e in events}) == 1
            for job_id in stored_before_crash:
                starts = [
                    e
                    for e in events
                    if e["event"] == "job.started" and e["job"] == job_id
                ]
                assert len(starts) == 1, (
                    f"{job_id} re-executed despite durable publication "
                    f"(crash_after={crash_after})"
                )

    def test_resume_under_fault_injection(self, tmp_path):
        """Node-crash-style transient faults + a mid-run kill still reconverge."""
        jobs = _jobs(3, faulty=("j0", "j2"), transient_failures=1)
        reference = CampaignRunner(workers=1, retries=1).run(jobs, label=LABEL)
        cache = ResultCache(tmp_path / "c")
        path = tmp_path / "r.jsonl"
        crasher = jrnl.CrashingJournalWriter(path, crash_after=10, label=LABEL)
        with pytest.raises(jrnl.SimulatedCrash):
            ShardedCampaignScheduler(cache=cache, journal=crasher, retries=1).run(
                jobs, label=LABEL
            )
        result = ShardedCampaignScheduler(cache=cache, journal=path, retries=1).run(
            jobs, label=LABEL, resume=True
        )
        assert result.manifest["fingerprint"] == reference.manifest["fingerprint"]
        events = jrnl.read_events(path)
        assert jrnl.validate_events(events) == []
        assert any(e["event"] == "fault.injected" for e in events)
