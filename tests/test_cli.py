"""CLI tests (fast paths; `run`/`rank` are exercised in the bench suite)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_takes_experiment(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"

    def test_rank_default_cores(self):
        args = build_parser().parse_args(["rank"])
        assert args.cores == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2"):
            assert exp_id in out

    def test_specs_prints_presets(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Fire" in out and "SystemG" in out

    def test_run_unknown_experiment_exits_one(self, capsys):
        # Library errors must not escape as tracebacks: one line on
        # stderr, exit code 1.
        assert main(["run", "fig99"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "fig99" in err


class TestExtendedCommands:
    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "TGI range" in out
        assert "minimized by weighting" in out

    def test_archive_round_trip(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        assert main(["archive", str(path)]) == 0
        from repro.core import TGICalculator
        from repro.serialization import (
            load_json,
            reference_from_dict,
            sweep_result_from_dict,
        )

        data = load_json(path)
        sweep = sweep_result_from_dict(data["sweep"])
        reference = reference_from_dict(data["reference"])
        series = TGICalculator(reference).compute_series(sweep)
        assert len(series) == 8
        assert series.values[-1] > series.values[0]

    def test_run_with_plot_renders_chart(self, capsys):
        assert main(["run", "fig4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "* IOzone" in out  # chart legend

    def test_run_table_with_plot_has_no_chart(self, capsys):
        assert main(["run", "table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_rank_command(self, capsys):
        assert main(["rank"]) == 0
        out = capsys.readouterr().out
        # all four presets ranked, greener machines first
        for name in ("ModernEPYC", "FermiGPU", "Fire", "SystemG"):
            assert name in out
        lines = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert lines[0].startswith("1")

    def test_rank_with_profile(self, capsys):
        assert main(["rank", "--profile", "cfd"]) == 0
        captured = capsys.readouterr()
        assert "Rank" in captured.out
        assert "CFD" in captured.err  # profile note is status output

    def test_rank_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["rank", "--profile", "raytracing"])

    def test_run_capability(self, capsys):
        assert main(["run", "capability"]) == 0
        out = capsys.readouterr().out
        assert "Rmax" in out and "MFLOPS/W" in out

    def test_suite_command(self, capsys):
        assert main(["suite", "--system", "fire", "--cores", "32", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Fire @ 32 cores" in out
        assert "HPL" in out and "psu_loss" in out

    def test_suite_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["suite", "--system", "bluegene"])


class TestCampaignCommand:
    @pytest.fixture
    def quick_config(self, monkeypatch):
        """Shrink the campaign the CLI runs so the test costs seconds."""
        import dataclasses

        import repro.cli
        from repro.experiments import PAPER_CONFIG

        quick = dataclasses.replace(
            PAPER_CONFIG,
            core_counts=(16, 32),
            hpl_problem_size=4480,
            hpl_rounds=2,
            stream_target_seconds=5,
            iozone_target_seconds=5,
        )
        monkeypatch.setattr(repro.cli, "PAPER_CONFIG", quick)
        return quick

    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.manifest is None
        assert args.fleet == 0

    def test_parser_rejects_unknown_era(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--fleet", "2", "--era", "1995"])

    def test_campaign_prints_summary_table(self, quick_config, capsys):
        assert main(["campaign"]) == 0
        captured = capsys.readouterr()
        assert "Campaign: 2 jobs" in captured.out
        assert "reference" in captured.out and "fire-sweep" in captured.out
        assert "uncached" in captured.out  # no cache dir given
        assert "manifest fingerprint:" in captured.out
        # status/bookkeeping goes to stderr
        assert "caching disabled" in captured.err

    def test_campaign_cache_and_manifest_flow(self, quick_config, tmp_path, capsys):
        from repro.campaign import load_manifest, manifest_fingerprint

        cache_dir = tmp_path / "cache"
        manifest_path = tmp_path / "manifest.json"
        cold_args = [
            "campaign",
            "--cache-dir",
            str(cache_dir),
            "--manifest",
            str(manifest_path),
        ]
        assert main(cold_args) == 0
        captured = capsys.readouterr()
        assert "computed" in captured.out
        assert "0/2 hits" in captured.err
        assert f"manifest written to {manifest_path}" in captured.err

        manifest = load_manifest(manifest_path)
        assert manifest["fingerprint"] == manifest_fingerprint(manifest)
        assert [row["cache_status"] for row in manifest["jobs"]] == [
            "computed",
            "computed",
        ]

        # warm rerun: everything comes out of the cache
        assert main(["campaign", "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr()
        assert "2/2 hits" in warm.err
        assert "0 misses" in warm.err

    def test_quiet_silences_status_but_not_results(self, quick_config, capsys):
        assert main(["--quiet", "campaign"]) == 0
        captured = capsys.readouterr()
        assert "Campaign: 2 jobs" in captured.out
        assert captured.err == ""

    def test_campaign_telemetry_flag(self, quick_config, tmp_path, capsys):
        import json

        telemetry_path = tmp_path / "telemetry.json"
        assert main(["campaign", "--telemetry", str(telemetry_path)]) == 0
        captured = capsys.readouterr()
        assert "Energy attribution" in captured.out
        assert f"telemetry written to {telemetry_path}" in captured.err

        data = json.loads(telemetry_path.read_text())
        span_names = {s["name"] for s in data["spans"]}
        assert {
            "campaign.run",
            "job.serialize",
            "job.cache_probe",
            "job.execute",
            "job.store",
            "benchmark.run",
        } <= span_names
        # each weight family sums to 1 per (job, scale point) — Eqs. 10-12
        sums = {}
        for row in data["attribution"]:
            key = (row["job_id"], row["cores"])
            for family in ("time_weight", "energy_weight", "power_weight"):
                sums.setdefault((key, family), 0.0)
                sums[(key, family)] += row[family]
        assert all(abs(total - 1.0) < 1e-9 for total in sums.values())
        # Prometheus text dump lands beside the JSON
        prom = telemetry_path.with_suffix(".prom")
        assert "# TYPE tgi_benchmark_runs_total counter" in prom.read_text()

    def test_trace_renders_saved_export(self, quick_config, tmp_path, capsys):
        telemetry_path = tmp_path / "telemetry.json"
        assert main(["campaign", "--telemetry", str(telemetry_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--input", str(telemetry_path), "--top", "3"]) == 0
        captured = capsys.readouterr()
        assert "campaign.run" in captured.out
        assert "└─" in captured.out  # tree rendering
        assert "Top 3 slowest spans" in captured.out
        assert "Energy attribution" in captured.out

    def test_trace_rejects_unknown_version(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"telemetry_version": 99, "spans": []}))
        assert main(["trace", "--input", str(bad)]) == 1
        assert "not supported" in capsys.readouterr().err
