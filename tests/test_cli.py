"""CLI tests (fast paths; `run`/`rank` are exercised in the bench suite)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_takes_experiment(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"

    def test_rank_default_cores(self):
        args = build_parser().parse_args(["rank"])
        assert args.cores == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2"):
            assert exp_id in out

    def test_specs_prints_presets(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Fire" in out and "SystemG" in out

    def test_run_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99"])


class TestExtendedCommands:
    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "TGI range" in out
        assert "minimized by weighting" in out

    def test_archive_round_trip(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        assert main(["archive", str(path)]) == 0
        from repro.core import TGICalculator
        from repro.serialization import (
            load_json,
            reference_from_dict,
            sweep_result_from_dict,
        )

        data = load_json(path)
        sweep = sweep_result_from_dict(data["sweep"])
        reference = reference_from_dict(data["reference"])
        series = TGICalculator(reference).compute_series(sweep)
        assert len(series) == 8
        assert series.values[-1] > series.values[0]

    def test_run_with_plot_renders_chart(self, capsys):
        assert main(["run", "fig4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "* IOzone" in out  # chart legend

    def test_run_table_with_plot_has_no_chart(self, capsys):
        assert main(["run", "table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_rank_command(self, capsys):
        assert main(["rank"]) == 0
        out = capsys.readouterr().out
        # all four presets ranked, greener machines first
        for name in ("ModernEPYC", "FermiGPU", "Fire", "SystemG"):
            assert name in out
        lines = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert lines[0].startswith("1")

    def test_rank_with_profile(self, capsys):
        assert main(["rank", "--profile", "cfd"]) == 0
        out = capsys.readouterr().out
        assert "CFD" in out and "Rank" in out

    def test_rank_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["rank", "--profile", "raytracing"])

    def test_run_capability(self, capsys):
        assert main(["run", "capability"]) == 0
        out = capsys.readouterr().out
        assert "Rmax" in out and "MFLOPS/W" in out

    def test_suite_command(self, capsys):
        assert main(["suite", "--system", "fire", "--cores", "32", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Fire @ 32 cores" in out
        assert "HPL" in out and "psu_loss" in out

    def test_suite_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["suite", "--system", "bluegene"])
