"""Campaign executor tests: jobs, determinism, manifests, caching.

The determinism tests are the contract the ISSUE demands: the same campaign
run serial vs. parallel, and cold vs. warm-cache, yields byte-identical
manifests modulo the volatile timing fields, and identical result payloads.
All campaigns here use a deliberately tiny config so the whole module costs
a few seconds.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignJob,
    CampaignRunner,
    ClusterRef,
    ResultCache,
    cache_key,
    execute_job,
    fleet_jobs,
    job_from_dict,
    job_to_dict,
    load_manifest,
    manifest_core,
    manifest_fingerprint,
    paper_jobs,
    payload_sweep,
)
from repro.cluster.generator import generate_fleet
from repro.exceptions import ReproError
from repro.experiments import PAPER_CONFIG, SharedContext

#: A cheap config: 2-point sweep, small HPL, short targets.
QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    core_counts=(16, 32),
    hpl_problem_size=4480,
    hpl_rounds=2,
    stream_target_seconds=5,
    iozone_target_seconds=5,
)


def quick_jobs():
    return paper_jobs(QUICK_CONFIG)


@pytest.fixture(scope="module")
def cold_run():
    """One serial, uncached campaign shared by the comparison tests."""
    return CampaignRunner(workers=1).run(quick_jobs())


class TestClusterRef:
    def test_preset_resolves(self):
        spec = ClusterRef(kind="preset", name="fire").resolve()
        assert spec.name == "Fire"
        assert spec.num_nodes == 8

    def test_preset_num_nodes_override(self):
        spec = ClusterRef(kind="preset", name="system_g", num_nodes=4).resolve()
        assert spec.num_nodes == 4

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError):
            ClusterRef(kind="preset", name="cray1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            ClusterRef(kind="imaginary")

    def test_generated_ref_matches_fleet_member(self):
        fleet = generate_fleet(3, era="2011", seed=42)
        jobs = fleet_jobs(3, era="2011", fleet_seed=42)
        for cluster, job in zip(fleet, jobs):
            assert job.cluster.resolve() == cluster


class TestCampaignJob:
    def test_empty_id_rejected(self):
        with pytest.raises(ReproError):
            CampaignJob(job_id="")

    def test_negative_cores_rejected(self):
        with pytest.raises(ReproError):
            CampaignJob(job_id="j", core_counts=(-1,))

    def test_job_roundtrips_through_dict(self):
        job = quick_jobs()[1]
        assert job_from_dict(job_to_dict(job)) == job

    def test_roundtrip_preserves_cache_key(self):
        job = quick_jobs()[0]
        assert cache_key(job_from_dict(job_to_dict(job))) == cache_key(job)


class TestExecuteJob:
    def test_payload_rebuilds_sweep(self):
        job = CampaignJob(
            job_id="j",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=2),
            core_counts=(8, 16),
            seed=7,
            config=QUICK_CONFIG,
        )
        payload = execute_job(job)
        assert payload["cluster_name"] == "Fire"
        sweep = payload_sweep(payload)
        assert sweep.cores == [8, 16]
        assert all(e > 0 for e in sweep.efficiency_series("HPL"))

    def test_empty_core_counts_means_full_machine(self):
        job = CampaignJob(
            job_id="j",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=2),
            seed=7,
            config=QUICK_CONFIG,
        )
        sweep = payload_sweep(execute_job(job))
        assert sweep.cores == [32]  # 2 nodes x 16 cores

    def test_execution_is_deterministic(self):
        job = quick_jobs()[1]
        assert execute_job(job) == execute_job(job)

    def test_bad_payload_version_rejected(self):
        with pytest.raises(ReproError):
            payload_sweep({"payload_version": 99, "sweep": {}})


class TestRunnerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ReproError):
            CampaignRunner(workers=0)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ReproError):
            CampaignRunner().run([])

    def test_duplicate_job_ids_rejected(self):
        job = quick_jobs()[0]
        with pytest.raises(ReproError):
            CampaignRunner().run([job, job])

    def test_unknown_job_id_lookup(self, cold_run):
        with pytest.raises(KeyError):
            cold_run["nope"]

    def test_suite_accessor_rejects_multi_point_jobs(self, cold_run):
        with pytest.raises(ReproError):
            cold_run.suite("fire-sweep")


class TestDeterminism:
    def test_serial_vs_parallel_payloads_identical(self, cold_run):
        parallel = CampaignRunner(workers=2).run(quick_jobs())
        assert [o.payload for o in parallel] == [o.payload for o in cold_run]

    def test_serial_vs_parallel_manifest_core_byte_identical(self, cold_run):
        parallel = CampaignRunner(workers=2).run(quick_jobs())
        serial_bytes = json.dumps(manifest_core(cold_run.manifest), sort_keys=True)
        parallel_bytes = json.dumps(manifest_core(parallel.manifest), sort_keys=True)
        assert serial_bytes == parallel_bytes
        assert manifest_fingerprint(cold_run.manifest) == manifest_fingerprint(
            parallel.manifest
        )

    def test_cold_vs_warm_cache_manifests_agree(self, tmp_path, cold_run):
        jobs = quick_jobs()
        cold = CampaignRunner(workers=1, cache=ResultCache(tmp_path)).run(jobs)
        warm = CampaignRunner(workers=1, cache=ResultCache(tmp_path)).run(jobs)
        assert warm.manifest["cache_run"]["hit_rate"] >= 0.9  # all hits, in fact
        assert [o.cache_status for o in warm] == ["hit", "hit"]
        assert [o.payload for o in warm] == [o.payload for o in cold]
        # byte-identical modulo volatile fields, and identical to uncached runs
        assert json.dumps(manifest_core(warm.manifest), sort_keys=True) == json.dumps(
            manifest_core(cold.manifest), sort_keys=True
        )
        assert manifest_fingerprint(warm.manifest) == manifest_fingerprint(
            cold_run.manifest
        )

    def test_rng_stream_isolation_between_jobs(self, cold_run):
        """Jobs seed fresh executors: running one job alone gives the same
        numbers as running it inside a larger campaign."""
        alone = execute_job(quick_jobs()[1])
        assert alone == cold_run["fire-sweep"].payload


class TestManifest:
    def test_schema_fields(self, cold_run):
        manifest = cold_run.manifest
        assert manifest["manifest_version"] == 1
        assert manifest["cache_enabled"] is False
        assert manifest["cache"] is None
        assert {"jobs", "attempts", "hits", "misses", "invalidations", "hit_rate"} == set(
            manifest["cache_run"]
        )
        assert manifest["telemetry"] is None  # no session active in tests
        assert len(manifest["jobs"]) == 2
        row = manifest["jobs"][1]
        assert row["job_id"] == "fire-sweep"
        assert len(row["key"]) == 64
        assert len(row["payload_sha256"]) == 64
        assert row["cluster_name"] == "Fire"
        assert row["cache_status"] == "uncached"
        assert row["wall_s"] >= 0
        assert job_from_dict(row["spec"]) == quick_jobs()[1]

    def test_fingerprint_is_recomputable(self, cold_run):
        manifest = cold_run.manifest
        assert manifest["fingerprint"] == manifest_fingerprint(manifest)

    def test_write_and_load_roundtrip(self, tmp_path, cold_run):
        path = tmp_path / "manifest.json"
        cold_run.write_manifest(path)
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(cold_run.manifest))  # via-JSON equality

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"manifest_version": 99}))
        with pytest.raises(ReproError):
            load_manifest(path)

    def test_cache_statuses_reported_when_caching(self, tmp_path):
        result = CampaignRunner(workers=1, cache=ResultCache(tmp_path)).run(quick_jobs())
        assert [j["cache_status"] for j in result.manifest["jobs"]] == [
            "computed",
            "computed",
        ]
        assert result.manifest["cache"]["puts"] == 2


class TestSharedContextIntegration:
    def test_campaign_backed_context_matches_serial(self, cold_run):
        serial = SharedContext(QUICK_CONFIG)
        backed = SharedContext(QUICK_CONFIG, campaign=CampaignRunner(workers=1))
        for bench in ("HPL", "STREAM", "IOzone"):
            assert np.array_equal(
                serial.sweep.efficiency_series(bench),
                backed.sweep.efficiency_series(bench),
            )
        assert serial.reference.as_dict() == backed.reference.as_dict()
        assert serial.reference.system_name == backed.reference.system_name

    def test_context_reuses_one_campaign_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        context = SharedContext(QUICK_CONFIG, campaign=CampaignRunner(cache=cache))
        _ = context.reference
        _ = context.sweep
        # both artifacts came from the same two-job campaign run
        assert cache.stats.puts == 2
        assert cache.stats.hits == 0
