"""HPL performance-model tests."""

import pytest

from repro.exceptions import BenchmarkError
from repro.perfmodels import HPLModel


@pytest.fixture
def model(fire):
    return HPLModel(cluster=fire)


class TestFlopCount:
    def test_formula(self):
        n = 1000
        assert HPLModel.flop_count(n) == pytest.approx(2 / 3 * n**3 + 2 * n**2)

    def test_rejects_zero(self):
        with pytest.raises(BenchmarkError):
            HPLModel.flop_count(0)


class TestProblemSizing:
    def test_memory_sizing_is_block_multiple(self, model):
        n = model.problem_size_from_memory(memory_fraction=0.8)
        assert n % model.block_size == 0

    def test_memory_sizing_fits_memory(self, model, fire):
        n = model.problem_size_from_memory(memory_fraction=0.8)
        assert 8 * n * n <= 0.8 * fire.total_memory_bytes

    def test_memory_sizing_is_tight(self, model, fire):
        """One more block row must overflow the budget."""
        n = model.problem_size_from_memory(memory_fraction=0.8)
        n_next = n + model.block_size
        assert 8 * n_next * n_next > 0.8 * fire.total_memory_bytes

    def test_subset_of_nodes(self, model):
        n_all = model.problem_size_from_memory(memory_fraction=0.8)
        n_one = model.problem_size_from_memory(memory_fraction=0.8, nodes=1)
        assert n_one < n_all

    def test_time_targeted_sizing(self, model):
        n = model.problem_size_for_time(120.0, 64)
        t = model.predict(n, 64).total_time_s
        # bisection resolves to one block, so the achieved time is close
        assert t == pytest.approx(120.0, rel=0.15)

    def test_rejects_zero_fraction(self, model):
        with pytest.raises(BenchmarkError):
            model.problem_size_from_memory(memory_fraction=0.0)


class TestPrediction:
    def test_single_rank_has_no_comm(self, model):
        pred = model.predict(4480, 1)
        assert pred.comm_time_s == 0.0
        assert pred.parallel_efficiency == 1.0

    def test_performance_below_peak(self, model, fire):
        pred = model.predict(36288, 128)
        assert pred.performance_flops < fire.peak_flops

    def test_compute_time_scales_inverse_in_ranks_without_contention(self, model):
        t16 = model.predict(36288, 16, ranks_per_node=2).compute_time_s
        t32 = model.predict(36288, 32, ranks_per_node=4).compute_time_s
        assert t16 == pytest.approx(2 * t32)

    def test_contention_slows_packed_nodes(self, model):
        free = model.predict(36288, 64, ranks_per_node=4)
        packed = model.predict(36288, 64, ranks_per_node=16)
        assert packed.compute_time_s > free.compute_time_s

    def test_contention_factor_boundary(self, model):
        assert model.contention_factor(4) == pytest.approx(1.0)
        assert model.contention_factor(16) > model.contention_factor(12) > 1.0

    def test_contention_factor_rejects_overflow(self, model):
        with pytest.raises(BenchmarkError):
            model.contention_factor(17)

    def test_comm_volume_shrinks_with_sqrt_p(self, model):
        """Per-rank broadcast volume ~ N^2 log p / sqrt p."""
        v16 = model.predict(36288, 16).comm_volume_time_s
        v64 = model.predict(36288, 64).comm_volume_time_s
        # ratio = (log2 64 / log2 16) * (4/8) = (6/4) * 0.5 = 0.75
        assert v64 / v16 == pytest.approx(0.75, rel=1e-6)

    def test_strong_scaling_efficiency_declines(self, model):
        effs = [model.predict(20160, p).parallel_efficiency for p in (16, 32, 64, 128)]
        assert effs == sorted(effs, reverse=True)

    def test_too_many_ranks_rejected(self, model):
        with pytest.raises(BenchmarkError):
            model.predict(4480, 1000)

    def test_faster_network_means_faster_run(self, fire):
        from repro.cluster import presets

        gige_pred = HPLModel(cluster=fire).predict(36288, 128)
        ib_pred = HPLModel(cluster=presets.system_g(num_nodes=8)).predict(36288, 64)
        # not directly comparable systems; just assert IB comm share smaller
        assert (
            ib_pred.comm_time_s / ib_pred.total_time_s
            < gige_pred.comm_time_s / gige_pred.total_time_s
        )

    def test_capability_run_efficiency_band(self, model, fire):
        """Memory-sized HPL on Fire should land at a plausible fraction of
        peak (the paper's capability quote is ~76 %; GigE costs some of
        that — accept a broad band and pin the exact value in
        EXPERIMENTS.md)."""
        n = model.problem_size_from_memory(memory_fraction=0.8)
        pred = model.predict(n, 128, ranks_per_node=16)
        fraction = pred.performance_flops / fire.peak_flops
        assert 0.35 < fraction < 0.9


class TestValidation:
    def test_bad_dgemm_efficiency(self, fire):
        with pytest.raises(BenchmarkError):
            HPLModel(cluster=fire, dgemm_efficiency=0.0)
        with pytest.raises(BenchmarkError):
            HPLModel(cluster=fire, dgemm_efficiency=1.5)

    def test_bad_block_size(self, fire):
        with pytest.raises(BenchmarkError):
            HPLModel(cluster=fire, block_size=0)

    def test_negative_contention_slope(self, fire):
        with pytest.raises(BenchmarkError):
            HPLModel(cluster=fire, contention_slope=-1)
