"""End-to-end integration tests across the whole stack.

Each test runs the genuine pipeline: hardware spec -> benchmark compile ->
discrete-event simulation -> component power -> PSU -> meter -> trace ->
EE -> REE -> weights -> TGI -> analysis.
"""

import numpy as np
import pytest

from repro import (
    ArithmeticMeanWeights,
    BenchmarkSuite,
    ClusterExecutor,
    CustomWeights,
    EnergyWeights,
    HPLBenchmark,
    IOzoneBenchmark,
    ReferenceSet,
    ScalingSweep,
    StreamBenchmark,
    TGICalculator,
    presets,
    rank_systems,
)
from repro.analysis import pearson
from repro.core import InverseEDP
from repro.power import FixedPUECooling, PiecewisePower


class TestFullPipeline:
    def test_quickstart_flow(self):
        """The README quickstart, verified."""
        fire = presets.fire()
        executor = ClusterExecutor(fire, rng=7)
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 8960), rounds=2),
                StreamBenchmark(target_seconds=15),
                IOzoneBenchmark(target_seconds=15),
            ]
        )
        result = suite.run(executor, 64)
        sysg = presets.system_g(num_nodes=8)
        ref_exec = ClusterExecutor(sysg, rng=1)
        ref_result = suite.run(ref_exec, sysg.total_cores)
        reference = ReferenceSet.from_suite_result(ref_result, system_name="SystemG-8")
        tgi = TGICalculator(reference).compute(result)
        assert tgi.value > 0
        assert set(tgi.ree) == {"HPL", "STREAM", "IOzone"}

    def test_determinism_end_to_end(self):
        """Identical seeds produce bit-identical TGI."""

        def run_once():
            fire = presets.fire()
            executor = ClusterExecutor(fire, rng=1234)
            suite = BenchmarkSuite(
                [
                    HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                    StreamBenchmark(target_seconds=5),
                    IOzoneBenchmark(target_seconds=5),
                ]
            )
            result = suite.run(executor, 32)
            ref = ReferenceSet.from_suite_result(result)
            return TGICalculator(ref, weighting=EnergyWeights()).compute(result)

        a, b = run_once(), run_once()
        assert a.value == b.value
        assert a.weights == b.weights

    def test_meter_error_does_not_break_ordering(self):
        """Two meters with different gain errors may disagree on absolute
        EE but must agree on which system is greener when the gap is real."""
        fire = presets.fire()
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
            ]
        )
        sysg = presets.system_g(num_nodes=8)
        for seed in (0, 99):
            fire_res = suite.run(ClusterExecutor(fire, rng=seed), 128)
            sysg_res = suite.run(ClusterExecutor(sysg, rng=seed + 1), 64)
            ref = ReferenceSet.from_suite_result(sysg_res, system_name="SystemG-8")
            ranking = rank_systems(
                [("Fire", fire_res), ("SystemG-8", sysg_res)], TGICalculator(ref)
            )
            # Fire (2010 DDR3 system) beats the FB-DIMM reference
            assert ranking[0].system_name == "Fire"

    def test_cross_generation_ranking(self):
        """A modern system must out-TGI both 2008-2010 systems."""
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 8960), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
            ]
        )
        sysg = presets.system_g(num_nodes=4)
        ref_res = suite.run(ClusterExecutor(sysg, rng=1), sysg.total_cores)
        ref = ReferenceSet.from_suite_result(ref_res, system_name="SystemG-4")
        entries = []
        for cluster in (presets.fire(num_nodes=4), presets.modern_cluster(num_nodes=4)):
            res = suite.run(ClusterExecutor(cluster, rng=2), cluster.total_cores)
            entries.append((cluster.name, res))
        ranking = rank_systems(entries, TGICalculator(ref))
        assert ranking[0].system_name == "ModernEPYC"

    def test_edp_based_tgi_pipeline(self):
        """Section II's metric-agnosticism, end to end."""
        fire = presets.fire(num_nodes=2)
        executor = ClusterExecutor(fire, rng=5)
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
            ]
        )
        result = suite.run(executor, 32)
        ref = ReferenceSet.from_suite_result(result, metric=InverseEDP())
        tgi = TGICalculator(ref, metric=InverseEDP()).compute(result)
        assert tgi.value == pytest.approx(1.0)

    def test_center_wide_tgi_with_cooling(self):
        """The paper's future-work extension: adding a PUE factor scales
        every benchmark's power identically, so REE (both systems cooled
        alike) and hence TGI are unchanged — while absolute EE drops."""
        fire = presets.fire(num_nodes=2)
        executor = ClusterExecutor(fire, rng=5)
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                StreamBenchmark(target_seconds=5),
            ]
        )
        result = suite.run(executor, 16)
        pue = 1.8
        it_ee = {r.benchmark: r.energy_efficiency for r in result}
        facility_ee = {
            r.benchmark: r.performance / (pue * r.power_w) for r in result
        }
        for name in it_ee:
            assert facility_ee[name] == pytest.approx(it_ee[name] / pue)

    def test_weight_choice_can_flip_a_ranking(self):
        """The flexibility claim of Section II: with REEs that disagree
        across subsystems, user weights decide the winner."""
        ree_a = {"HPL": 2.0, "STREAM": 0.5, "IOzone": 1.0}
        ree_b = {"HPL": 0.5, "STREAM": 2.0, "IOzone": 1.0}
        from repro.core import tgi_from_components

        cpu_heavy = {"HPL": 0.8, "STREAM": 0.1, "IOzone": 0.1}
        mem_heavy = {"HPL": 0.1, "STREAM": 0.8, "IOzone": 0.1}
        assert tgi_from_components(ree_a, cpu_heavy) > tgi_from_components(ree_b, cpu_heavy)
        assert tgi_from_components(ree_a, mem_heavy) < tgi_from_components(ree_b, mem_heavy)

    def test_sweep_and_correlation_machinery(self):
        """Mini Table II on a 2-node cluster: machinery holds off the
        calibrated path too."""
        fire = presets.fire(num_nodes=2)
        executor = ClusterExecutor(fire, rng=3)
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
            ]
        )
        sweep = ScalingSweep(suite, [4, 8, 16, 32]).run(executor)
        ref = ReferenceSet.from_suite_result(sweep.suites[0])
        series = TGICalculator(ref).compute_series(sweep)
        r = pearson(series.values, sweep.efficiency_series("IOzone"))
        assert -1.0 <= r <= 1.0
