"""Result-cache tests: canonical keying and the hit/miss/invalidation books."""

import dataclasses
import json

import pytest

from repro.campaign import CampaignJob, ClusterRef, ResultCache, cache_key, canonical_json
from repro.exceptions import ReproError
from repro.experiments import PAPER_CONFIG


@pytest.fixture
def job():
    return CampaignJob(job_id="j1", cluster=ClusterRef(kind="preset", name="fire"))


class TestCanonicalJson:
    def test_dataclasses_become_sorted_objects(self, job):
        text = canonical_json(job)
        data = json.loads(text)
        assert data["job_id"] == "j1"
        assert data["cluster"]["name"] == "fire"
        # canonical form: no whitespace, keys sorted
        assert " " not in text
        assert list(data) == sorted(data)

    def test_tuples_and_lists_agree(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_rejects_unserializable_values(self):
        with pytest.raises(ReproError):
            canonical_json(object())

    def test_key_is_stable_across_calls(self, job):
        assert cache_key(job) == cache_key(job)

    def test_key_changes_with_any_field(self, job):
        assert cache_key(job) != cache_key(dataclasses.replace(job, seed=1))
        assert cache_key(job) != cache_key(
            dataclasses.replace(job, config=dataclasses.replace(PAPER_CONFIG, hpl_rounds=5))
        )

    def test_key_is_sha256_hex(self, job):
        key = cache_key(job)
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestResultCache:
    def test_miss_then_put_then_hit(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = cache_key(job)
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_entry_path_is_content_addressed(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = cache_key(job)
        path = cache.put(key, {"x": 1})
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.exists()

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.put("cd" + "0" * 62, {"x": 2})
        assert len(cache) == 2
        assert "ab" + "0" * 62 in cache
        assert "ef" + "0" * 62 not in cache

    def test_stale_code_version_is_invalidated(self, tmp_path):
        key = "ab" + "0" * 62
        old = ResultCache(tmp_path, code_version="0.9.0")
        old.put(key, {"x": 1})
        new = ResultCache(tmp_path, code_version="1.0.0")
        assert new.get(key) is None
        assert new.stats.invalidations == 1
        assert new.stats.hits == 0
        # the stale entry was dropped, so the rerun repopulates cleanly
        new.put(key, {"x": 2})
        assert new.get(key) == {"x": 2}

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.put(key, {"x": 1})
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not path.exists()

    def test_key_mismatch_inside_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = "ab" + "0" * 62
        key_b = "cd" + "0" * 62
        path_a = cache.put(key_a, {"x": 1})
        # simulate a mis-filed entry
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path_a.read_text())
        assert cache.get(key_b) is None
        assert cache.stats.invalidations == 1

    def test_hit_rate_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.get(key)  # miss
        cache.put(key, {"x": 1})
        cache.get(key)  # hit
        cache.get(key)  # hit
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        snapshot = cache.stats.as_dict()
        assert snapshot["hits"] == 2
        assert snapshot["misses"] == 1
        assert snapshot["invalidations"] == 0

    def test_default_code_version_is_library_version(self, tmp_path):
        import repro

        assert ResultCache(tmp_path).code_version == repro.__version__
