"""Result-cache tests: canonical keying, the hit/miss/invalidation books,
validation-aware membership, and multi-process sharing.

The concurrency contracts pinned here:

* ``put`` stages under a per-writer unique name, so concurrent writers of
  the same key (different processes, one cache directory) can never tear
  each other's entries or crash on a vanished staging file;
* readers racing those writers see either a miss or a complete valid
  entry — never a torn read, never a spurious invalidation;
* ``in`` / ``len`` report *usable* entries (valid for this cache's code
  version), without touching the stats books or deleting anything.
"""

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign import CampaignJob, ClusterRef, ResultCache, cache_key, canonical_json
from repro.exceptions import ReproError
from repro.experiments import PAPER_CONFIG


@pytest.fixture
def job():
    return CampaignJob(job_id="j1", cluster=ClusterRef(kind="preset", name="fire"))


class TestCanonicalJson:
    def test_dataclasses_become_sorted_objects(self, job):
        text = canonical_json(job)
        data = json.loads(text)
        assert data["job_id"] == "j1"
        assert data["cluster"]["name"] == "fire"
        # canonical form: no whitespace, keys sorted
        assert " " not in text
        assert list(data) == sorted(data)

    def test_tuples_and_lists_agree(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_rejects_unserializable_values(self):
        with pytest.raises(ReproError):
            canonical_json(object())

    def test_key_is_stable_across_calls(self, job):
        assert cache_key(job) == cache_key(job)

    def test_key_changes_with_any_field(self, job):
        assert cache_key(job) != cache_key(dataclasses.replace(job, seed=1))
        assert cache_key(job) != cache_key(
            dataclasses.replace(job, config=dataclasses.replace(PAPER_CONFIG, hpl_rounds=5))
        )

    def test_key_is_sha256_hex(self, job):
        key = cache_key(job)
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestResultCache:
    def test_miss_then_put_then_hit(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = cache_key(job)
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_entry_path_is_content_addressed(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = cache_key(job)
        path = cache.put(key, {"x": 1})
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.exists()

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.put("cd" + "0" * 62, {"x": 2})
        assert len(cache) == 2
        assert "ab" + "0" * 62 in cache
        assert "ef" + "0" * 62 not in cache

    def test_stale_code_version_is_invalidated(self, tmp_path):
        key = "ab" + "0" * 62
        old = ResultCache(tmp_path, code_version="0.9.0")
        old.put(key, {"x": 1})
        new = ResultCache(tmp_path, code_version="1.0.0")
        assert new.get(key) is None
        assert new.stats.invalidations == 1
        assert new.stats.hits == 0
        # the stale entry was dropped, so the rerun repopulates cleanly
        new.put(key, {"x": 2})
        assert new.get(key) == {"x": 2}

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.put(key, {"x": 1})
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not path.exists()

    def test_key_mismatch_inside_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = "ab" + "0" * 62
        key_b = "cd" + "0" * 62
        path_a = cache.put(key_a, {"x": 1})
        # simulate a mis-filed entry
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path_a.read_text())
        assert cache.get(key_b) is None
        assert cache.stats.invalidations == 1

    def test_hit_rate_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.get(key)  # miss
        cache.put(key, {"x": 1})
        cache.get(key)  # hit
        cache.get(key)  # hit
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        snapshot = cache.stats.as_dict()
        assert snapshot["hits"] == 2
        assert snapshot["misses"] == 1
        assert snapshot["invalidations"] == 0

    def test_default_code_version_is_library_version(self, tmp_path):
        import repro

        assert ResultCache(tmp_path).code_version == repro.__version__


class TestValidationAwareMembership:
    """``in`` / ``len`` answer "is this entry usable?", not "does a file exist?"."""

    def test_corrupt_entry_is_not_a_member(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.put(key, {"x": 1})
        path.write_text("{not json")
        assert key not in cache
        assert len(cache) == 0
        # membership checks are read-only: no deletion, no stats mutation
        assert path.exists()
        assert cache.stats.misses == 0
        assert cache.stats.invalidations == 0
        assert cache.stats.lookups == 0

    def test_stale_code_version_is_not_a_member(self, tmp_path):
        key = "ab" + "0" * 62
        ResultCache(tmp_path, code_version="0.9.0").put(key, {"x": 1})
        new = ResultCache(tmp_path, code_version="1.0.0")
        assert key not in new
        assert len(new) == 0
        assert new.path_for(key).exists()  # still there for get() to reap
        # ... while the writer of that version still counts it
        old = ResultCache(tmp_path, code_version="0.9.0")
        assert key in old
        assert len(old) == 1

    def test_misfiled_entry_is_not_a_member(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = "ab" + "0" * 62
        key_b = "cd" + "0" * 62
        path_a = cache.put(key_a, {"x": 1})
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path_a.read_text())
        assert key_a in cache
        assert key_b not in cache
        assert len(cache) == 1

    def test_empty_cache_is_falsy_but_real(self, tmp_path):
        """``len`` makes an empty cache falsy — callers must test ``is not None``."""
        cache = ResultCache(tmp_path)
        assert not cache
        assert cache is not None

    def test_put_leaves_no_staging_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(10):
            cache.put(f"{i:02d}" + "0" * 62, {"x": i})
        stray = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
        assert stray == []
        assert len(cache) == 10


# ---------------------------------------------------------------------------
# Multi-process sharing


def _payload_for(key):
    """Deterministic per-key payload, bulky enough to make torn reads visible."""
    return {"key": key, "blob": key * 40, "n": int(key[:2], 16)}


def _stress_worker(cache_dir, keys, rounds):
    """Hammer one shared cache dir: probe, publish on miss, verify, repeat.

    Runs in a separate process.  Returns (stats dict, error strings) —
    assertions happen in the parent so failures surface as test failures,
    not opaque pool crashes.
    """
    cache = ResultCache(cache_dir)
    errors = []
    for _ in range(rounds):
        for key in keys:
            try:
                value = cache.get(key)
                if value is None:
                    cache.put(key, _payload_for(key))
                    value = cache.get(key)
                if value != _payload_for(key):
                    errors.append(f"torn or foreign payload under {key[:8]}")
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                errors.append(f"{type(exc).__name__}: {exc}")
    return cache.stats.as_dict(), errors


class TestSharedCacheStress:
    def test_eight_processes_same_keys_one_directory(self, tmp_path):
        """≥8 writers racing on the same keys: no tears, no lost puts."""
        num_workers = 8
        keys = [f"{i:02x}" * 32 for i in range(6)]
        with ProcessPoolExecutor(max_workers=num_workers) as pool:
            outcomes = list(
                pool.map(
                    _stress_worker,
                    [str(tmp_path)] * num_workers,
                    [keys] * num_workers,
                    [5] * num_workers,
                )
            )
        for stats, errors in outcomes:
            assert errors == []
            # a racing reader may only ever see miss-or-valid: any torn
            # read would have surfaced as an invalidation
            assert stats["invalidations"] == 0
            assert stats["hits"] + stats["misses"] > 0
        # every key ends durably present and valid, exactly once
        survivor = ResultCache(tmp_path)
        assert len(survivor) == len(keys)
        for key in keys:
            assert survivor.get(key) == _payload_for(key)
        # at least one worker published each key; duplicates are benign
        total_puts = sum(stats["puts"] for stats, _ in outcomes)
        assert total_puts >= len(keys)
        stray = [
            p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"
        ]
        assert stray == []  # all staging files were renamed or reaped

    def test_two_caches_one_directory_interleaved(self, tmp_path):
        """Same-process sharing: two handles on one dir see each other's puts."""
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        a.put(key, {"x": 1})
        assert b.get(key) == {"x": 1}
        assert b.stats.hits == 1
        assert a.stats.puts == 1
        assert key in a and key in b
