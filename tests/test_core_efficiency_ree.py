"""Efficiency-metric (Eq. 2) and REE (Eq. 3) tests."""

import pytest

from repro.core import (
    InverseEDP,
    PerformancePerWatt,
    ReferenceSet,
    energy_efficiency,
    relative_efficiency,
)
from repro.exceptions import MetricError, ReferenceMismatchError


class TestEnergyEfficiency:
    def test_eq2(self):
        assert energy_efficiency(901e9, 2136.0) == pytest.approx(901e9 / 2136.0)

    def test_rejects_zero_power(self):
        with pytest.raises(MetricError):
            energy_efficiency(1e9, 0.0)

    def test_rejects_negative_performance(self):
        with pytest.raises(MetricError):
            energy_efficiency(-1.0, 100.0)

    def test_flops_per_watt_equals_flop_per_joule(self):
        """Eq. 5: (FLOP/s) / (J/s) = FLOP/J."""
        flops_rate, watts, seconds = 2e12, 4000.0, 100.0
        total_flop = flops_rate * seconds
        total_joules = watts * seconds
        assert energy_efficiency(flops_rate, watts) == pytest.approx(
            total_flop / total_joules
        )


class TestMetricObjects:
    def test_perf_per_watt_on_result(self, quick_suite, executor):
        result = quick_suite.run(executor, 16)["STREAM"]
        metric = PerformancePerWatt()
        assert metric.value(result) == pytest.approx(result.performance / result.power_w)

    def test_inverse_edp_on_result(self, quick_suite, executor):
        result = quick_suite.run(executor, 16)["STREAM"]
        metric = InverseEDP()
        assert metric.value(result) == pytest.approx(
            1.0 / (result.energy_j * result.time_s)
        )

    def test_inverse_ed2p_weight(self, quick_suite, executor):
        result = quick_suite.run(executor, 16)["STREAM"]
        assert InverseEDP(weight=2).value(result) < InverseEDP(weight=1).value(result)

    def test_inverse_edp_rejects_bad_weight(self):
        with pytest.raises(MetricError):
            InverseEDP(weight=0)


class TestRelativeEfficiency:
    def test_eq3(self):
        assert relative_efficiency(400e6, 200e6) == pytest.approx(2.0)

    def test_rejects_zero_reference(self):
        with pytest.raises(MetricError):
            relative_efficiency(1.0, 0.0)


class TestReferenceSet:
    def test_from_dict(self):
        ref = ReferenceSet({"HPL": 2e8, "STREAM": 2.5e7}, system_name="SystemG")
        assert ref.efficiency("HPL") == 2e8
        assert ref.benchmarks == ["HPL", "STREAM"]

    def test_relative(self):
        ref = ReferenceSet({"HPL": 2e8})
        assert ref.relative("HPL", 4e8) == pytest.approx(2.0)

    def test_missing_benchmark_raises(self):
        ref = ReferenceSet({"HPL": 2e8})
        with pytest.raises(ReferenceMismatchError):
            ref.efficiency("STREAM")

    def test_check_covers(self):
        ref = ReferenceSet({"HPL": 2e8, "STREAM": 1.0})
        ref.check_covers(["HPL"])
        with pytest.raises(ReferenceMismatchError):
            ref.check_covers(["HPL", "IOzone"])

    def test_rejects_non_positive_reference(self):
        with pytest.raises(MetricError):
            ReferenceSet({"HPL": 0.0})

    def test_rejects_empty(self):
        with pytest.raises(MetricError):
            ReferenceSet({})

    def test_from_suite_result(self, quick_suite, executor):
        suite_result = quick_suite.run(executor, 16)
        ref = ReferenceSet.from_suite_result(suite_result, system_name="Fire")
        for r in suite_result:
            assert ref.efficiency(r.benchmark) == pytest.approx(r.energy_efficiency)

    def test_from_suite_result_with_edp_metric(self, quick_suite, executor):
        suite_result = quick_suite.run(executor, 16)
        ref = ReferenceSet.from_suite_result(suite_result, metric=InverseEDP())
        for r in suite_result:
            assert ref.efficiency(r.benchmark) == pytest.approx(
                1.0 / (r.energy_j * r.time_s)
            )

    def test_as_dict_is_copy(self):
        ref = ReferenceSet({"HPL": 1.0})
        d = ref.as_dict()
        d["HPL"] = 99.0
        assert ref.efficiency("HPL") == 1.0
