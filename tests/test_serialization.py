"""Serialization round-trip tests."""

import pytest

from repro.benchmarks import ScalingSweep
from repro.core import ReferenceSet, TGICalculator
from repro.exceptions import ReproError
from repro.serialization import (
    FORMAT_VERSION,
    benchmark_result_from_dict,
    benchmark_result_to_dict,
    load_json,
    reference_from_dict,
    reference_to_dict,
    save_json,
    suite_result_from_dict,
    suite_result_to_dict,
    sweep_result_from_dict,
    sweep_result_to_dict,
    trace_to_csv,
)


@pytest.fixture
def suite_result(quick_suite, executor):
    return quick_suite.run(executor, 32)


class TestBenchmarkResultRoundTrip:
    def test_scalar_fields_preserved(self, suite_result):
        original = suite_result["STREAM"]
        restored = benchmark_result_from_dict(benchmark_result_to_dict(original))
        assert restored.benchmark == original.benchmark
        assert restored.performance == original.performance
        assert restored.scale == original.scale
        assert restored.details == original.details

    def test_derived_quantities_preserved(self, suite_result):
        original = suite_result["HPL"]
        restored = benchmark_result_from_dict(benchmark_result_to_dict(original))
        assert restored.time_s == pytest.approx(original.time_s)
        assert restored.power_w == pytest.approx(original.power_w)
        assert restored.energy_j == pytest.approx(original.energy_j)
        assert restored.energy_efficiency == pytest.approx(original.energy_efficiency)

    def test_truth_and_trace_preserved(self, suite_result):
        original = suite_result["IOzone"]
        restored = benchmark_result_from_dict(benchmark_result_to_dict(original))
        assert restored.record.true_energy_j == pytest.approx(
            original.record.true_energy_j
        )
        assert len(restored.record.trace) == len(original.record.trace)

    def test_cluster_reattachment(self, suite_result, fire):
        data = benchmark_result_to_dict(suite_result["HPL"])
        restored = benchmark_result_from_dict(data, cluster=fire)
        assert restored.record.cluster is fire

    def test_version_check(self, suite_result):
        data = benchmark_result_to_dict(suite_result["HPL"])
        data["format_version"] = 99
        with pytest.raises(ReproError, match="version"):
            benchmark_result_from_dict(data)


class TestSuiteAndSweepRoundTrip:
    def test_suite_round_trip(self, suite_result):
        restored = suite_result_from_dict(suite_result_to_dict(suite_result))
        assert restored.names == suite_result.names
        assert restored.cores == suite_result.cores
        assert restored.efficiencies == pytest.approx(suite_result.efficiencies)

    def test_sweep_round_trip_preserves_tgi(self, quick_suite, executor):
        """The acid test: TGI computed from the archive equals TGI computed
        live, bit for bit on every series value."""
        sweep = ScalingSweep(quick_suite, [16, 32]).run(executor)
        ref = ReferenceSet.from_suite_result(sweep.suites[0], system_name="self")
        live = TGICalculator(ref).compute_series(sweep).values
        restored_sweep = sweep_result_from_dict(sweep_result_to_dict(sweep))
        restored_ref = reference_from_dict(reference_to_dict(ref))
        archived = TGICalculator(restored_ref).compute_series(restored_sweep).values
        assert (live == archived).all()

    def test_json_file_round_trip(self, suite_result, tmp_path):
        path = tmp_path / "suite.json"
        save_json(suite_result_to_dict(suite_result), path)
        restored = suite_result_from_dict(load_json(path))
        assert restored.performances == suite_result.performances


class TestReferenceRoundTrip:
    def test_round_trip(self):
        ref = ReferenceSet({"HPL": 2.26e8, "STREAM": 2.6e7}, system_name="SystemG")
        restored = reference_from_dict(reference_to_dict(ref))
        assert restored.system_name == "SystemG"
        assert restored.as_dict() == ref.as_dict()


class TestTraceCSV:
    def test_csv_format(self, suite_result, tmp_path):
        path = tmp_path / "meter.csv"
        trace = suite_result["STREAM"].record.trace
        trace_to_csv(trace, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time_s,watts"
        assert len(lines) == len(trace) + 1
        t, w = lines[1].split(",")
        assert float(w) > 0

    def test_csv_round_trip(self, suite_result, tmp_path):
        from repro.serialization import trace_from_csv

        path = tmp_path / "meter.csv"
        trace = suite_result["HPL"].record.trace
        trace_to_csv(trace, path)
        restored = trace_from_csv(path)
        assert len(restored) == len(trace)
        # CSV stores 0.1 W / 1 ms resolution; energy agrees to that grain
        assert restored.energy() == pytest.approx(trace.energy(), rel=1e-3)

    def test_csv_missing_header_rejected(self, tmp_path):
        from repro.serialization import trace_from_csv

        path = tmp_path / "bad.csv"
        path.write_text("1,2\n3,4\n")
        with pytest.raises(ReproError, match="header"):
            trace_from_csv(path)

    def test_csv_malformed_row_rejected(self, tmp_path):
        from repro.serialization import trace_from_csv

        path = tmp_path / "bad.csv"
        path.write_text("time_s,watts\n1.0,2.0,3.0\n")
        with pytest.raises(ReproError):
            trace_from_csv(path)
