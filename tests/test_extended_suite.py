"""Tests for the extended suite members (RandomAccess, b_eff) and the
five-benchmark TGI they enable ("TGI is not limited by the number of
benchmarks", Section IV-A)."""

import pytest

from repro.benchmarks import (
    BenchmarkSuite,
    EffectiveBandwidthBenchmark,
    HPLBenchmark,
    IOzoneBenchmark,
    RandomAccessBenchmark,
    StreamBenchmark,
)
from repro.cluster import presets
from repro.core import ReferenceSet, TGICalculator
from repro.exceptions import BenchmarkError
from repro.perfmodels import EffectiveBandwidthModel, RandomAccessModel
from repro.sim import ClusterExecutor


class TestRandomAccessModel:
    @pytest.fixture
    def model(self, fire):
        return RandomAccessModel(cluster=fire)

    def test_per_core_rate_is_latency_bound(self, model, fire):
        expected = 6.0 / fire.node.memory.access_latency_s
        assert model.per_core_rate() == pytest.approx(expected)

    def test_node_rate_saturates(self, model, fire):
        full = model.node_memory_rate(fire.node.cores)
        # 2 sockets x 3 cores' worth of misses
        assert full == pytest.approx(2 * 3 * model.per_core_rate())

    def test_single_node_is_memory_bound(self, model):
        pred = model.predict(8, ranks_per_node=8)
        assert not pred.network_limited

    def test_multi_node_on_gige_is_network_bound(self, model):
        """The classic GUPS cliff: bucketed exchanges over GigE throttle
        the update rate far below the DRAM-latency bound."""
        pred = model.predict(128)
        assert pred.network_limited
        assert pred.updates_per_second < 0.2 * pred.memory_bound_rate

    def test_updates_for_time_roundtrip(self, model):
        updates = model.updates_for_time(30.0, 64)
        pred = model.predict(64, updates_per_rank=updates)
        assert pred.time_s == pytest.approx(30.0, rel=1e-6)

    def test_gups_unit(self, model):
        pred = model.predict(16)
        assert pred.gups == pytest.approx(pred.updates_per_second / 1e9)

    def test_overflow_rejected(self, model, fire):
        with pytest.raises(BenchmarkError):
            model.predict(fire.total_cores + 1)


class TestEffectiveBandwidthModel:
    @pytest.fixture
    def model(self, fire):
        return EffectiveBandwidthModel(cluster=fire)

    def test_per_rank_below_link_rate(self, model, fire):
        bw = model.per_rank_bandwidth(16)  # 2 ranks/node share the link
        assert bw < fire.node.nic.bandwidth

    def test_sharing_reduces_per_rank_bandwidth(self, model):
        spread = model.per_rank_bandwidth(16)   # 2 per node
        packed = model.per_rank_bandwidth(128)  # 16 per node
        assert packed < spread

    def test_small_messages_latency_dominated(self, fire):
        tiny = EffectiveBandwidthModel(cluster=fire, message_sizes=(100.0,))
        huge = EffectiveBandwidthModel(cluster=fire, message_sizes=(8e6,))
        assert tiny.per_rank_bandwidth(8) < huge.per_rank_bandwidth(8)

    def test_rounds_for_time(self, model):
        rounds = model.rounds_for_time(20.0, 32)
        pred = model.predict(32, rounds=rounds)
        assert pred.time_s == pytest.approx(20.0, rel=0.1)

    def test_empty_ladder_rejected(self, fire):
        with pytest.raises(BenchmarkError):
            EffectiveBandwidthModel(cluster=fire, message_sizes=())


class TestExtendedBenchmarks:
    def test_randomaccess_runs(self, executor):
        result = RandomAccessBenchmark(target_seconds=10).run(executor, 64)
        assert result.benchmark == "RandomAccess"
        assert result.performance > 0
        assert result.time_s == pytest.approx(10.0, rel=0.1)

    def test_beff_runs(self, executor):
        result = EffectiveBandwidthBenchmark(target_seconds=10).run(executor, 64)
        assert result.benchmark == "b_eff"
        assert result.time_s == pytest.approx(10.0, rel=0.1)

    def test_beff_power_below_compute(self, executor):
        """Network-bound ranks burn far less CPU than HPL's compute."""
        beff = EffectiveBandwidthBenchmark(target_seconds=10).run(executor, 128)
        hpl = HPLBenchmark(sizing=("fixed", 8960), rounds=1).run(executor, 128)
        assert beff.power_w < hpl.power_w

    def test_randomaccess_power_between_io_and_stream(self, executor):
        gups = RandomAccessBenchmark(target_seconds=10).run(executor, 128)
        io = IOzoneBenchmark(target_seconds=10).run(executor, 8)
        stream = StreamBenchmark(target_seconds=10).run(executor, 128)
        assert io.power_w < gups.power_w < stream.power_w


class TestFiveBenchmarkTGI:
    def test_five_member_suite_tgi(self, fire_small):
        """The TGI pipeline is agnostic to suite size: five members, one
        number, reference invariant preserved."""
        suite = BenchmarkSuite(
            [
                HPLBenchmark(sizing=("fixed", 4480), rounds=1),
                StreamBenchmark(target_seconds=5),
                IOzoneBenchmark(target_seconds=5),
                RandomAccessBenchmark(target_seconds=5),
                EffectiveBandwidthBenchmark(target_seconds=5),
            ]
        )
        executor = ClusterExecutor(fire_small, rng=3)
        result = suite.run(executor, fire_small.total_cores)
        assert len(result) == 5
        ref = ReferenceSet.from_suite_result(result)
        tgi = TGICalculator(ref).compute(result)
        assert tgi.value == pytest.approx(1.0)
        assert all(w == pytest.approx(1 / 5) for w in tgi.weights.values())
