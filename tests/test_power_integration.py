"""Vectorized sweep-line integration vs. the scalar reference oracle.

The executor ships two power-integration pipelines (see
``repro/sim/executor.py``): the vectorized sweep-line path every campaign
runs on, and the original midpoint-scan implementation kept as
``integration="reference"``.  These tests pin the two to each other —
energy, component attribution, and the power curve itself must agree to
within float-summation noise (<= 1e-9 relative) over randomized
placements, barrier-heavy programs, accelerator nodes, and both metering
boundaries — and exercise the batched struct-of-arrays power APIs and the
breakpoint-snapping guarantees directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import presets
from repro.exceptions import PowerModelError, SimulationError
from repro.power import (
    NodePowerModel,
    NodeUtilization,
    NodeUtilizationArray,
    PiecewisePower,
    PSUModel,
)
from repro.power.meter import PERFECT_METER, WallPlugMeter
from repro.sim import (
    ClusterExecutor,
    RankProgram,
    barrier,
    breadth_first_placement,
    comm_phase,
    compute_phase,
    idle_phase,
    io_phase,
    memory_phase,
    packed_placement,
)
from repro.sim.executor import _EPS, _snap_cuts

# ---------------------------------------------------------------------------
# program generation
#
# Durations are drawn from a 1 ms grid: coarse enough that *distinct* logical
# breakpoints stay far apart, while float accumulation across phases still
# produces near-duplicate cuts within _EPS on different ranks — exactly the
# input the snapping logic exists for.

_DURATION = st.integers(min_value=1, max_value=3000).map(lambda n: n / 1000.0)
_FRACTION = st.integers(min_value=0, max_value=100).map(lambda n: n / 100.0)


@st.composite
def _phase(draw):
    kind = draw(st.sampled_from(["compute", "memory", "io", "comm", "idle"]))
    d = draw(_DURATION)
    if kind == "compute":
        return compute_phase(d, memory=draw(_FRACTION) * 0.2)
    if kind == "memory":
        return memory_phase(d, memory=draw(_FRACTION))
    if kind == "io":
        return io_phase(d, storage=draw(_FRACTION))
    if kind == "comm":
        return comm_phase(d, nic=draw(_FRACTION))
    return idle_phase(d)


@st.composite
def _programs(draw, max_ranks=24):
    """Rank programs in barrier-separated rounds (equal barrier counts)."""
    num_ranks = draw(st.integers(min_value=1, max_value=max_ranks))
    rounds = draw(st.integers(min_value=1, max_value=3))
    programs = []
    for rank in range(num_ranks):
        phases = []
        for rd in range(rounds):
            phases.extend(draw(st.lists(_phase(), min_size=1, max_size=3)))
            if rd < rounds - 1:
                phases.append(barrier())
        programs.append(RankProgram(rank=rank, phases=phases))
    return programs


def _both_records(cluster, placement, programs, metering):
    records = {}
    for mode in ClusterExecutor.INTEGRATION_MODES:
        executor = ClusterExecutor(
            cluster,
            meter=WallPlugMeter(PERFECT_METER, rng=0),
            metering=metering,
            integration=mode,
        )
        records[mode] = executor.execute(placement, programs, label=mode)
    return records["vectorized"], records["reference"]


def _assert_equivalent(vec, ref):
    assert vec.true_energy_j == pytest.approx(ref.true_energy_j, rel=1e-9)
    assert set(vec.energy_breakdown) == set(ref.energy_breakdown)
    for component, ref_joules in ref.energy_breakdown.items():
        assert vec.energy_breakdown[component] == pytest.approx(
            ref_joules, rel=1e-9, abs=1e-9
        ), component
    # The curves themselves: sample at the vectorized truth's segment
    # midpoints (skipping slivers where midpoint membership is itself
    # float-ambiguous) — both paths must report the same watts.
    mids = np.array(
        [(t0 + t1) / 2 for t0, t1, _ in vec.truth.segments if t1 - t0 > 1e-6]
    )
    if mids.size:
        np.testing.assert_allclose(
            vec.truth.power_at_many(mids),
            ref.truth.power_at_many(mids),
            rtol=1e-9,
            atol=1e-9,
        )


class TestEquivalence:
    """Property: the sweep-line pipeline equals the scalar oracle."""

    @given(programs=_programs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_fire_cluster(self, programs, data):
        cluster = presets.fire(4)
        place = data.draw(
            st.sampled_from([breadth_first_placement, packed_placement])
        )
        metering = data.draw(st.sampled_from(ClusterExecutor.METERING_MODES))
        placement = place(cluster, len(programs))
        vec, ref = _both_records(cluster, placement, programs, metering)
        _assert_equivalent(vec, ref)

    @given(programs=_programs(max_ranks=12))
    @settings(max_examples=15, deadline=None)
    def test_accelerator_cluster(self, programs):
        cluster = presets.gpu_cluster(2)
        placement = breadth_first_placement(cluster, len(programs))
        vec, ref = _both_records(cluster, placement, programs, "system")
        _assert_equivalent(vec, ref)
        assert "accelerators" in vec.energy_breakdown

    def test_barrier_heavy_program(self):
        """Barrier waits create many staggered sub-EPS-adjacent cuts."""
        cluster = presets.fire(4)
        programs = []
        for rank in range(32):
            phases = []
            for rd in range(5):
                # staggered per-rank durations -> dense distinct cuts
                phases.append(compute_phase(1.0 + rank * 0.001 + rd * 0.01))
                phases.append(barrier())
            phases.append(idle_phase(0.5))
            programs.append(RankProgram(rank=rank, phases=phases))
        placement = breadth_first_placement(cluster, 32)
        vec, ref = _both_records(cluster, placement, programs, "system")
        _assert_equivalent(vec, ref)

    def test_single_idle_rank(self):
        """busy == 0 everywhere: both paths must price a fully idle cluster."""
        cluster = presets.fire(2)
        programs = [RankProgram(rank=0, phases=[idle_phase(10.0)])]
        placement = breadth_first_placement(cluster, 1)
        vec, ref = _both_records(cluster, placement, programs, "system")
        _assert_equivalent(vec, ref)
        executor = ClusterExecutor(cluster, meter=WallPlugMeter(PERFECT_METER, rng=0))
        idle_wall = cluster.num_nodes * executor.node_power.idle_wall_power()
        assert vec.true_mean_power_w == pytest.approx(idle_wall, rel=1e-9)


class TestSpanStats:
    def test_integration_stats_reach_the_span(self):
        from repro import telemetry as tele

        cluster = presets.fire(2)
        programs = [RankProgram(rank=r, phases=[compute_phase(1.0 + r)]) for r in range(4)]
        placement = breadth_first_placement(cluster, 4)
        executor = ClusterExecutor(cluster, meter=WallPlugMeter(PERFECT_METER, rng=0))
        with tele.use() as session:
            executor.execute(placement, programs)
        spans = [s for s in session.spans if s.name == "sim.power.integrate"]
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["integration"] == "vectorized"
        assert attrs["segments_in"] >= attrs["segments_out"] >= 1
        assert 0 < attrs["compaction_ratio"] <= 1.0


class TestSnapping:
    def test_near_duplicate_cuts_collapse(self):
        cuts = _snap_cuts(np.array([0.0, 1.0, 1.0 + _EPS / 4, 2.0]), 2.0)
        assert cuts.tolist() == [0.0, 1.0, 2.0]

    def test_span_endpoints_survive_exactly(self):
        makespan = 3.0
        cuts = _snap_cuts(np.array([0.0, makespan - _EPS / 10, makespan]), makespan)
        assert cuts[0] == 0.0
        assert cuts[-1] == makespan
        assert np.all(np.diff(cuts) > _EPS)

    def test_no_energy_leak_from_sliver_slices(self):
        """A breakpoint pair within _EPS must not drop its slice's joules.

        Before snapping, the reference path silently discarded sub-_EPS
        slices; both paths must now conserve the exact tiling energy.
        """
        cluster = presets.fire(1)
        # Two ranks whose phase boundaries land within _EPS of each other:
        # 0.1+0.2 != 0.3 by one ulp, so rank 1's boundary is a near-dup cut.
        programs = [
            RankProgram(rank=0, phases=[compute_phase(0.1), compute_phase(0.2), idle_phase(0.7)]),
            RankProgram(rank=1, phases=[compute_phase(0.3), idle_phase(0.7)]),
        ]
        placement = breadth_first_placement(cluster, 2)
        vec, ref = _both_records(cluster, placement, programs, "system")
        for record in (vec, ref):
            segs = record.truth.segments
            # exact tiling: no gaps, starts at 0, ends at makespan
            assert segs[0][0] == 0.0
            assert segs[-1][1] == record.makespan_s
            for (_, e0, _), (s1, _, _) in zip(segs, segs[1:]):
                assert e0 == s1
        _assert_equivalent(vec, ref)

    def test_invalid_integration_mode_rejected(self):
        with pytest.raises(SimulationError, match="integration"):
            ClusterExecutor(presets.fire(1), integration="fast")


class TestBatchedPowerAPIs:
    """power_many must be bitwise identical to mapping the scalar models."""

    def _random_utils(self, n=64, seed=0):
        rng = np.random.default_rng(seed)
        return NodeUtilizationArray(
            cpu_active_fraction=rng.random(n),
            cpu_intensity=rng.random(n),
            memory=rng.random(n),
            storage=rng.random(n),
            nic=rng.random(n),
            accelerator=rng.random(n),
        )

    @pytest.mark.parametrize("preset", [presets.fire, presets.gpu_cluster])
    def test_node_model_many_matches_scalar(self, preset):
        model = NodePowerModel(node=preset(1).node)
        utils = self._random_utils()
        wall_many = model.wall_power_many(utils)
        dc_many = model.dc_power_many(utils)
        parts_many = model.component_breakdown_many(utils)
        for i in range(len(utils)):
            u = utils.at(i)
            assert wall_many[i] == model.wall_power(u)
            assert dc_many[i] == model.dc_power(u)
            scalar_parts = model.component_breakdown(u)
            assert set(parts_many) == set(scalar_parts)
            for component, watts in scalar_parts.items():
                assert parts_many[component][i] == watts

    def test_psu_many_matches_scalar(self):
        psu = PSUModel(rated_watts=800.0)
        dc = np.linspace(0.0, 1000.0, 57)  # includes 0 and beyond-rated loads
        wall_many = psu.wall_watts_many(dc)
        eff_many = psu.efficiency_many(dc)
        for i, watts in enumerate(dc):
            assert wall_many[i] == psu.wall_watts(float(watts))
            assert eff_many[i] == psu.efficiency(float(watts))

    def test_psu_many_rejects_negative(self):
        psu = PSUModel(rated_watts=800.0)
        with pytest.raises(PowerModelError):
            psu.wall_watts_many(np.array([100.0, -1.0]))

    def test_utilization_array_validates_shape(self):
        with pytest.raises(PowerModelError):
            NodeUtilizationArray(
                cpu_active_fraction=np.zeros(3),
                cpu_intensity=np.zeros(2),
                memory=np.zeros(3),
                storage=np.zeros(3),
                nic=np.zeros(3),
                accelerator=np.zeros(3),
            )

    def test_utilization_array_round_trip(self):
        utils = [NodeUtilization.idle(), NodeUtilization(cpu_active_fraction=0.5, cpu_intensity=1.0)]
        arr = NodeUtilizationArray.from_utilizations(utils)
        assert len(arr) == 2
        assert arr.at(0) == NodeUtilization.idle()
        assert arr.at(1) == utils[1]


class TestFromArrays:
    def test_matches_validating_constructor(self):
        segs = [(0.0, 1.0, 100.0), (1.0, 2.5, 250.0), (2.5, 3.0, 50.0)]
        a = PiecewisePower(segs)
        b = PiecewisePower.from_arrays(
            np.array([0.0, 1.0, 2.5]), np.array([1.0, 2.5, 3.0]), np.array([100.0, 250.0, 50.0])
        )
        assert b.segments == a.segments
        assert b.energy() == a.energy()
        assert b.power_at(1.7) == a.power_at(1.7)

    def test_rejects_empty_and_ragged(self):
        with pytest.raises(PowerModelError):
            PiecewisePower.from_arrays(np.array([]), np.array([]), np.array([]))
        with pytest.raises(PowerModelError):
            PiecewisePower.from_arrays(np.array([0.0]), np.array([1.0, 2.0]), np.array([5.0]))
