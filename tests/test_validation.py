"""Validation-helper tests."""

import math

import pytest

from repro import validation
from repro.exceptions import ReproError, SpecError


class TestRequire:
    def test_passes(self):
        validation.require(True, "never raised")

    def test_raises_default(self):
        with pytest.raises(ReproError, match="boom"):
            validation.require(False, "boom")

    def test_raises_custom_exception(self):
        with pytest.raises(SpecError):
            validation.require(False, "boom", exc=SpecError)


class TestScalarChecks:
    def test_check_finite_returns_float(self):
        out = validation.check_finite(3, "x")
        assert out == 3.0 and isinstance(out, float)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_check_finite_rejects(self, bad):
        with pytest.raises(ReproError, match="finite"):
            validation.check_finite(bad, "x")

    def test_check_positive(self):
        assert validation.check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0, -1, math.nan])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ReproError):
            validation.check_positive(bad, "x")

    def test_check_non_negative_allows_zero(self):
        assert validation.check_non_negative(0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ReproError):
            validation.check_non_negative(-0.001, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_fraction_accepts(self, value):
        assert validation.check_fraction(value, "x") == value

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(ReproError):
            validation.check_fraction(bad, "x")

    def test_check_in_range(self):
        assert validation.check_in_range(5, "x", low=0, high=10) == 5.0
        with pytest.raises(ReproError):
            validation.check_in_range(11, "x", low=0, high=10)
        with pytest.raises(ReproError):
            validation.check_in_range(-1, "x", low=0)

    def test_check_positive_int(self):
        assert validation.check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2"])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ReproError):
            validation.check_positive_int(bad, "x")

    def test_check_positive_int_rejects_bool(self):
        # True == 1 but "True nodes" is always a bug
        with pytest.raises(ReproError):
            validation.check_positive_int(True, "x")


class TestSequenceChecks:
    def test_monotonic_ok(self):
        validation.check_monotonic([1, 2, 2, 3], "x")

    def test_monotonic_rejects_decrease(self):
        with pytest.raises(ReproError):
            validation.check_monotonic([1, 3, 2], "x")

    def test_strict_monotonic_rejects_tie(self):
        with pytest.raises(ReproError):
            validation.check_monotonic([1, 2, 2], "x", strict=True)

    def test_same_length(self):
        validation.check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ReproError):
            validation.check_same_length("a", [1], "b", [1, 2])
