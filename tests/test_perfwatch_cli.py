"""`tgi bench` CLI verbs against a tiny hermetic scenario.

Uses its own bench dir (one trivial scenario) so the tests never execute
the real benchmark suite, and checks the output contract: machine
products (tables, JSON) on stdout, status chatter on stderr.
"""

import json

import pytest

from repro.cli import build_parser, main

BENCH_SRC = """\
from repro.perfwatch import MetricSpec, scenario

@scenario(
    "clitoy.sum",
    description="trivial arithmetic scenario for CLI tests",
    tier="quick",
    repeats=2,
    metrics=(MetricSpec("total", direction="higher"),),
)
def clitoy_sum(n=200):
    return {"total": float(sum(range(n)))}
"""


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    """One bench dir for the whole module: discovery caches module imports
    process-wide, so every test must point at the same source file."""
    directory = tmp_path_factory.mktemp("clibench")
    (directory / "bench_clitoy.py").write_text(BENCH_SRC)
    return directory


class TestParser:
    def test_bench_run_defaults(self):
        args = build_parser().parse_args(["bench", "run", "--quick"])
        assert args.command == "bench"
        assert args.bench_command == "run"
        assert args.quick and not args.profile
        assert args.trajectory_dir == "."

    def test_bench_report_flags(self):
        args = build_parser().parse_args(
            ["bench", "report", "--json", "--window", "5", "--fail-on-regression"]
        )
        assert args.as_json and args.window == 5 and args.fail_on_regression

    def test_bench_compare_takes_scenario(self):
        args = build_parser().parse_args(["bench", "compare", "clitoy.sum"])
        assert args.scenario == "clitoy.sum"

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestBenchVerbs:
    def _run(self, bench_dir, tmp_path, extra=()):
        return main(
            [
                "bench", "run",
                "--scenario", "clitoy.sum",
                "--bench-dir", str(bench_dir),
                "--history", str(tmp_path / "hist"),
                "--trajectory-dir", str(tmp_path / "traj"),
                *extra,
            ]
        )

    def test_list_shows_scenario(self, bench_dir, capsys):
        assert main(["bench", "list", "--bench-dir", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "clitoy.sum" in out and "total" in out

    def test_run_records_history_and_trajectory(self, bench_dir, tmp_path, capsys):
        assert self._run(bench_dir, tmp_path) == 0
        captured = capsys.readouterr()
        # results table on stdout, status chatter on stderr
        assert "clitoy.sum" in captured.out
        assert "no-baseline" in captured.out  # first run has nothing to judge
        assert "bench clitoy.sum" in captured.err
        trajectory = tmp_path / "traj" / "BENCH_clitoy.sum.json"
        payload = json.loads(trajectory.read_text())
        assert len(payload["records"]) == 1
        record = payload["records"][0]
        assert record["metrics"]["total"]["value"] == float(sum(range(200)))
        assert record["repeats"] == 2
        assert record["timestamp_utc"].endswith("Z")

    def test_second_run_gets_a_verdict_and_report_classifies(
        self, bench_dir, tmp_path, capsys
    ):
        assert self._run(bench_dir, tmp_path) == 0
        assert self._run(bench_dir, tmp_path) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--history", str(tmp_path / "hist")]) == 0
        out = capsys.readouterr().out
        assert "clitoy.sum" in out
        assert "total" in out and "wall_s" in out

    def test_report_json_is_machine_readable_stdout(
        self, bench_dir, tmp_path, capsys
    ):
        assert self._run(bench_dir, tmp_path) == 0
        capsys.readouterr()
        assert main(
            ["bench", "report", "--json", "--history", str(tmp_path / "hist")]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        (entry,) = payload["scenarios"]
        assert entry["scenario"] == "clitoy.sum"
        assert entry["verdict"] in ("no-baseline", "stable", "improved", "regressed")

    def test_report_empty_history_is_not_an_error(self, tmp_path, capsys):
        assert main(["bench", "report", "--history", str(tmp_path / "empty")]) == 0
        captured = capsys.readouterr()
        assert "no history" in captured.out
        assert "no history" in captured.err
        assert main(
            ["bench", "report", "--json", "--history", str(tmp_path / "empty")]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenarios"] == []

    def test_compare_needs_two_records(self, bench_dir, tmp_path, capsys):
        assert self._run(bench_dir, tmp_path) == 0
        capsys.readouterr()
        assert main(
            ["bench", "compare", "clitoy.sum", "--history", str(tmp_path / "hist")]
        ) == 1
        assert "only one record" in capsys.readouterr().err
        assert self._run(bench_dir, tmp_path) == 0
        capsys.readouterr()
        assert main(
            ["bench", "compare", "clitoy.sum", "--history", str(tmp_path / "hist")]
        ) == 0
        out = capsys.readouterr().out
        assert "trajectory" in out  # the history view follows the delta table
        assert "wall_s" in out and "total" in out

    def test_compare_unknown_scenario_fails(self, tmp_path, capsys):
        assert main(
            ["bench", "compare", "ghost.scn", "--history", str(tmp_path / "hist")]
        ) == 1
        assert "no history" in capsys.readouterr().err

    def test_no_record_leaves_history_untouched(self, bench_dir, tmp_path, capsys):
        assert self._run(bench_dir, tmp_path, extra=("--no-record",)) == 0
        capsys.readouterr()
        assert not (tmp_path / "hist").exists()
        assert not (tmp_path / "traj").exists()

    def test_run_with_profile_attaches_hotspots(self, bench_dir, tmp_path, capsys):
        assert self._run(bench_dir, tmp_path, extra=("--profile",)) == 0
        capsys.readouterr()
        trajectory = tmp_path / "traj" / "BENCH_clitoy.sum.json"
        record = json.loads(trajectory.read_text())["records"][-1]
        assert record["profile"], "profiled run must carry a hotspot digest"
        assert {"func", "calls", "tottime_s", "cumtime_s"} == set(
            record["profile"][0]
        )

    def test_unknown_scenario_fails_helpfully(self, bench_dir, tmp_path, capsys):
        # PerfWatchError is a ReproError: one line on stderr, exit 1,
        # no traceback.
        code = main(
            [
                "bench", "run",
                "--scenario", "ghost.scn",
                "--bench-dir", str(bench_dir),
                "--history", str(tmp_path / "hist"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "ghost.scn" in err
