"""Workload (phase/program) tests."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import (
    Phase,
    PhaseKind,
    RankProgram,
    barrier,
    comm_phase,
    compute_phase,
    idle_phase,
    io_phase,
    memory_phase,
)


class TestPhase:
    def test_compute_phase_defaults(self):
        phase = compute_phase(10.0)
        assert phase.kind is PhaseKind.COMPUTE
        assert phase.cpu_intensity == 1.0
        assert phase.occupies_core

    def test_memory_phase(self):
        phase = memory_phase(5.0, memory=0.25)
        assert phase.kind is PhaseKind.MEMORY
        assert phase.memory == 0.25
        assert phase.cpu_intensity < 1.0

    def test_io_phase_mostly_blocked(self):
        phase = io_phase(5.0, storage=1.0)
        assert phase.storage == 1.0
        assert phase.cpu_intensity <= 0.2

    def test_comm_phase_uses_nic(self):
        phase = comm_phase(1.0)
        assert phase.nic > 0

    def test_idle_phase_frees_core(self):
        assert not idle_phase(1.0).occupies_core

    def test_barrier_zero_duration(self):
        assert barrier().duration_s == 0.0
        assert not barrier().occupies_core

    def test_barrier_with_duration_rejected(self):
        with pytest.raises(SimulationError):
            Phase(kind=PhaseKind.BARRIER, duration_s=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            compute_phase(-1.0)

    def test_out_of_range_demand_rejected(self):
        with pytest.raises(SimulationError):
            Phase(kind=PhaseKind.MEMORY, duration_s=1.0, memory=1.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(SimulationError):
            Phase(kind="compute", duration_s=1.0)


class TestRankProgram:
    def test_append_chains(self):
        program = RankProgram(rank=0).append(compute_phase(1.0)).append(barrier())
        assert len(program.phases) == 2

    def test_extend(self):
        program = RankProgram(rank=0).extend([compute_phase(1.0), compute_phase(2.0)])
        assert program.busy_time == pytest.approx(3.0)

    def test_barrier_count(self):
        program = RankProgram(rank=0).extend(
            [compute_phase(1.0), barrier(), io_phase(1.0, storage=0.5), barrier()]
        )
        assert program.barrier_count == 2

    def test_negative_rank_rejected(self):
        with pytest.raises(SimulationError):
            RankProgram(rank=-1)
