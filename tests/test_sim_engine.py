"""Discrete-event engine tests."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim import (
    IntervalArrays,
    RankProgram,
    SimulationEngine,
    barrier,
    compute_phase,
    idle_phase,
)
from repro.sim.workload import PhaseKind


def programs_of(*phase_lists):
    return [RankProgram(rank=i, phases=list(pl)) for i, pl in enumerate(phase_lists)]


class TestBasicExecution:
    def test_single_rank_sequence(self):
        engine = SimulationEngine(
            programs_of([compute_phase(2.0), compute_phase(3.0)])
        )
        intervals = engine.run()
        assert len(intervals[0]) == 2
        assert intervals[0][0].t_start == 0.0
        assert intervals[0][1].t_end == pytest.approx(5.0)
        assert engine.makespan(intervals) == pytest.approx(5.0)

    def test_two_ranks_independent(self):
        engine = SimulationEngine(
            programs_of([compute_phase(2.0)], [compute_phase(5.0)])
        )
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(5.0)
        assert intervals[0][-1].t_end == pytest.approx(2.0)

    def test_zero_duration_phase_skipped_in_intervals(self):
        engine = SimulationEngine(programs_of([compute_phase(0.0), compute_phase(1.0)]))
        intervals = engine.run()
        assert len(intervals[0]) == 1


class TestBarriers:
    def test_barrier_synchronizes(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.0), barrier(), compute_phase(1.0)],
                [compute_phase(4.0), barrier(), compute_phase(1.0)],
            )
        )
        intervals = engine.run()
        # rank 0 waits 3 s at the barrier
        waits = [iv for iv in intervals[0] if iv.phase.kind is PhaseKind.WAIT]
        assert len(waits) == 1
        assert waits[0].duration == pytest.approx(3.0)
        # both finish together
        assert intervals[0][-1].t_end == pytest.approx(5.0)
        assert intervals[1][-1].t_end == pytest.approx(5.0)

    def test_fast_rank_gets_no_wait_when_synchronized(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(2.0), barrier()],
                [compute_phase(2.0), barrier()],
            )
        )
        intervals = engine.run()
        for per_rank in intervals:
            assert all(iv.phase.kind is not PhaseKind.WAIT for iv in per_rank)

    def test_multiple_barriers(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.0), barrier(), compute_phase(3.0), barrier()],
                [compute_phase(2.0), barrier(), compute_phase(1.0), barrier()],
            )
        )
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(5.0)
        # rank 1 waits at both barriers? first: no (it is slower); second: yes
        waits1 = [iv for iv in intervals[1] if iv.phase.kind is PhaseKind.WAIT]
        assert len(waits1) == 1
        assert waits1[0].duration == pytest.approx(2.0)

    def test_mismatched_barrier_counts_rejected(self):
        with pytest.raises(SimulationError, match="barrier"):
            SimulationEngine(
                programs_of(
                    [compute_phase(1.0), barrier()],
                    [compute_phase(1.0)],
                )
            )

    def test_many_ranks_barrier_releases_at_max(self):
        programs = programs_of(*[[compute_phase(float(i + 1)), barrier(), compute_phase(1.0)] for i in range(8)])
        engine = SimulationEngine(programs)
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(9.0)


class TestTimelineIntegrity:
    def test_intervals_are_gap_free(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.5), barrier(), idle_phase(2.0), compute_phase(0.5)],
                [compute_phase(3.0), barrier(), compute_phase(1.0)],
            )
        )
        intervals = engine.run()
        for per_rank in intervals:
            t = 0.0
            for iv in per_rank:
                assert iv.t_start == pytest.approx(t)
                t = iv.t_end

    def test_rank_ids_must_be_dense(self):
        with pytest.raises(SimulationError):
            SimulationEngine([RankProgram(rank=5, phases=[compute_phase(1.0)])])

    def test_empty_program_list_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine([])

    def test_idle_phase_recorded_but_core_free(self):
        engine = SimulationEngine(programs_of([idle_phase(2.0)]))
        intervals = engine.run()
        assert intervals[0][0].phase.occupies_core is False


ENGINES = SimulationEngine.ENGINE_MODES


class TestEngineEdgeCases:
    """Edge cases exercised against *both* implementations."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_rank(self, engine):
        eng = SimulationEngine(
            programs_of([compute_phase(2.0), barrier(), compute_phase(1.0)]),
            engine=engine,
        )
        intervals = eng.run()
        # a lone rank never waits at its own barrier
        assert [iv.phase.kind for iv in intervals[0]] == [
            PhaseKind.COMPUTE,
            PhaseKind.COMPUTE,
        ]
        assert eng.makespan(intervals) == pytest.approx(3.0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_barriers(self, engine):
        eng = SimulationEngine(
            programs_of([compute_phase(1.0)], [compute_phase(4.0)], [idle_phase(2.0)]),
            engine=engine,
        )
        intervals = eng.run()
        assert eng.makespan(intervals) == pytest.approx(4.0)
        assert [len(per_rank) for per_rank in intervals] == [1, 1, 1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_barrier_program(self, engine):
        eng = SimulationEngine(
            programs_of(*[[barrier(), barrier(), barrier()]] * 4), engine=engine
        )
        intervals = eng.run()
        assert eng.makespan(intervals) == 0.0
        assert all(per_rank == [] for per_rank in intervals)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_programs(self, engine):
        eng = SimulationEngine(programs_of([], [], []), engine=engine)
        intervals = eng.run()
        assert eng.makespan(intervals) == 0.0
        assert all(per_rank == [] for per_rank in intervals)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mismatched_barrier_counts_error_parity(self, engine):
        """Both engines reject mismatched barrier counts (the would-be
        deadlock) with the same SimulationError."""
        with pytest.raises(SimulationError, match="same number of barriers"):
            SimulationEngine(
                programs_of(
                    [compute_phase(1.0), barrier()],
                    [compute_phase(1.0)],
                ),
                engine=engine,
            )

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(SimulationError, match="engine must be one of"):
            SimulationEngine(programs_of([compute_phase(1.0)]), engine="quantum")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_arrays_matches_run(self, engine):
        programs = programs_of(
            [compute_phase(1.0), barrier(), compute_phase(2.0)],
            [compute_phase(3.0), barrier(), compute_phase(0.5)],
        )
        arrays = SimulationEngine(programs, engine=engine).run_arrays()
        lists = SimulationEngine(programs, engine=engine).run()
        rebuilt = arrays.to_interval_lists()
        assert [
            [(iv.t_start, iv.t_end, iv.phase) for iv in per_rank] for per_rank in rebuilt
        ] == [[(iv.t_start, iv.t_end, iv.phase) for iv in per_rank] for per_rank in lists]
        assert arrays.makespan == SimulationEngine(programs, engine=engine).makespan(lists)


class TestIntervalArraysValidation:
    """Continuity validation on the columnar path."""

    @staticmethod
    def _arrays():
        programs = programs_of(
            [compute_phase(1.0), barrier(), compute_phase(2.0)],
            [compute_phase(3.0), barrier(), compute_phase(0.5)],
        )
        return SimulationEngine(programs).run_arrays()

    def test_clean_run_validates(self):
        self._arrays().validate()  # no exception

    def test_gap_detected(self):
        arrays = self._arrays()
        arrays.t_start[1] += 0.5  # open a hole after rank 0's first interval
        with pytest.raises(SimulationError, match="gap in rank 0"):
            arrays.validate()

    def test_overlap_detected(self):
        arrays = self._arrays()
        arrays.t_start[1] -= 0.5  # slide interval back over its predecessor
        with pytest.raises(SimulationError, match="overlapping intervals for rank 0"):
            arrays.validate()

    def test_nonzero_origin_detected(self):
        arrays = self._arrays()
        arrays.t_start[0] = 0.25  # rank 0's timeline no longer starts at 0
        with pytest.raises(SimulationError, match="gap in rank 0"):
            arrays.validate()

    def test_round_trip_through_lists(self):
        arrays = self._arrays()
        round_tripped = IntervalArrays.from_interval_lists(arrays.to_interval_lists())
        assert np.array_equal(round_tripped.rank, arrays.rank)
        assert np.array_equal(round_tripped.t_start, arrays.t_start)
        assert np.array_equal(round_tripped.t_end, arrays.t_end)
        assert round_tripped.makespan == arrays.makespan
        assert [
            round_tripped.phases[r] for r in round_tripped.phase_row
        ] == [arrays.phases[r] for r in arrays.phase_row]

    def test_demand_table_matches_phases(self):
        arrays = self._arrays()
        table = arrays.demand_table()
        assert table.shape == (len(arrays.phases), 6)
        for row, phase in enumerate(arrays.phases):
            assert tuple(table[row]) == phase.demand_vector()
