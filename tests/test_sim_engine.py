"""Discrete-event engine tests."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import RankProgram, SimulationEngine, barrier, compute_phase, idle_phase
from repro.sim.workload import PhaseKind


def programs_of(*phase_lists):
    return [RankProgram(rank=i, phases=list(pl)) for i, pl in enumerate(phase_lists)]


class TestBasicExecution:
    def test_single_rank_sequence(self):
        engine = SimulationEngine(
            programs_of([compute_phase(2.0), compute_phase(3.0)])
        )
        intervals = engine.run()
        assert len(intervals[0]) == 2
        assert intervals[0][0].t_start == 0.0
        assert intervals[0][1].t_end == pytest.approx(5.0)
        assert engine.makespan(intervals) == pytest.approx(5.0)

    def test_two_ranks_independent(self):
        engine = SimulationEngine(
            programs_of([compute_phase(2.0)], [compute_phase(5.0)])
        )
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(5.0)
        assert intervals[0][-1].t_end == pytest.approx(2.0)

    def test_zero_duration_phase_skipped_in_intervals(self):
        engine = SimulationEngine(programs_of([compute_phase(0.0), compute_phase(1.0)]))
        intervals = engine.run()
        assert len(intervals[0]) == 1


class TestBarriers:
    def test_barrier_synchronizes(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.0), barrier(), compute_phase(1.0)],
                [compute_phase(4.0), barrier(), compute_phase(1.0)],
            )
        )
        intervals = engine.run()
        # rank 0 waits 3 s at the barrier
        waits = [iv for iv in intervals[0] if iv.phase.kind is PhaseKind.WAIT]
        assert len(waits) == 1
        assert waits[0].duration == pytest.approx(3.0)
        # both finish together
        assert intervals[0][-1].t_end == pytest.approx(5.0)
        assert intervals[1][-1].t_end == pytest.approx(5.0)

    def test_fast_rank_gets_no_wait_when_synchronized(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(2.0), barrier()],
                [compute_phase(2.0), barrier()],
            )
        )
        intervals = engine.run()
        for per_rank in intervals:
            assert all(iv.phase.kind is not PhaseKind.WAIT for iv in per_rank)

    def test_multiple_barriers(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.0), barrier(), compute_phase(3.0), barrier()],
                [compute_phase(2.0), barrier(), compute_phase(1.0), barrier()],
            )
        )
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(5.0)
        # rank 1 waits at both barriers? first: no (it is slower); second: yes
        waits1 = [iv for iv in intervals[1] if iv.phase.kind is PhaseKind.WAIT]
        assert len(waits1) == 1
        assert waits1[0].duration == pytest.approx(2.0)

    def test_mismatched_barrier_counts_rejected(self):
        with pytest.raises(SimulationError, match="barrier"):
            SimulationEngine(
                programs_of(
                    [compute_phase(1.0), barrier()],
                    [compute_phase(1.0)],
                )
            )

    def test_many_ranks_barrier_releases_at_max(self):
        programs = programs_of(*[[compute_phase(float(i + 1)), barrier(), compute_phase(1.0)] for i in range(8)])
        engine = SimulationEngine(programs)
        intervals = engine.run()
        assert engine.makespan(intervals) == pytest.approx(9.0)


class TestTimelineIntegrity:
    def test_intervals_are_gap_free(self):
        engine = SimulationEngine(
            programs_of(
                [compute_phase(1.5), barrier(), idle_phase(2.0), compute_phase(0.5)],
                [compute_phase(3.0), barrier(), compute_phase(1.0)],
            )
        )
        intervals = engine.run()
        for per_rank in intervals:
            t = 0.0
            for iv in per_rank:
                assert iv.t_start == pytest.approx(t)
                t = iv.t_end

    def test_rank_ids_must_be_dense(self):
        with pytest.raises(SimulationError):
            SimulationEngine([RankProgram(rank=5, phases=[compute_phase(1.0)])])

    def test_empty_program_list_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine([])

    def test_idle_phase_recorded_but_core_free(self):
        engine = SimulationEngine(programs_of([idle_phase(2.0)]))
        intervals = engine.run()
        assert intervals[0][0].phase.occupies_core is False
