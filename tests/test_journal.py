"""Flight-recorder tests: events, writer, reader, replay, progress, export.

The contracts pinned here:

* every emitted event validates against the schema, and the schema rejects
  type/field drift (unknown types, unknown fields, bools posing as ints);
* journal appends are crash-safe — a journal truncated at *any* byte
  offset parses to a prefix of the full event list (hypothesis sweeps the
  offsets), and the torn tail is flagged, never fatal;
* replaying a fault-injected campaign's journal reconstructs exactly the
  per-job attempt/outcome rows the manifest records (serial and pooled);
* the journal never perturbs results: manifest fingerprints are identical
  with the recorder on or off;
* cache accounting balances: ``hits + misses == attempts``, with retries
  counted as the extra misses of work they are;
* trace export produces schema-valid Chrome trace-event JSON with one
  slice per attempt; the anomaly report flags stragglers, retry storms,
  and cache-hit-rate collapse and stays quiet on clean runs.
"""

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import journal as jrnl
from repro.campaign import CampaignRunner, ResultCache
from repro.campaign.jobs import CampaignJob, ClusterRef
from repro.exceptions import CampaignExecutionError, JournalError
from repro.faults import FaultPlan
from repro.experiments import PAPER_CONFIG

QUICK_CONFIG = dataclasses.replace(
    PAPER_CONFIG,
    core_counts=(16,),
    hpl_problem_size=2240,
    hpl_rounds=1,
    stream_target_seconds=2,
    iozone_target_seconds=2,
)


def _jobs(n=3, *, faulty=(), transient_failures=1, seed=7):
    """n quick jobs; ids listed in ``faulty`` get a transient-fault plan."""
    return [
        CampaignJob(
            job_id=f"j{i}",
            cluster=ClusterRef(kind="preset", name="fire", num_nodes=2),
            core_counts=(16,),
            seed=i,
            config=QUICK_CONFIG,
            faults=FaultPlan(transient_failures=transient_failures, seed=seed)
            if f"j{i}" in faulty
            else None,
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _no_leaked_ambient():
    """Every test starts and must end without an ambient writer."""
    jrnl.detach()
    yield
    assert jrnl.ambient() is None, "test leaked an ambient journal writer"
    jrnl.detach()


# ---------------------------------------------------------------------------
# Event schema


class TestEventSchema:
    def _event(self, **overrides):
        base = {
            "v": jrnl.JOURNAL_VERSION,
            "event": "job.started",
            "run_id": "r-1",
            "t_mono": 1.0,
            "t_unix": 1700000000.0,
            "t_utc": "2023-11-14T22:13:20Z",
            "pid": 1,
            "process": "main",
            "job": "j0",
            "attempt": 0,
        }
        base.update(overrides)
        return base

    def test_valid_event_passes(self):
        assert jrnl.validate_event(self._event()) == []

    def test_unknown_event_type_rejected(self):
        problems = jrnl.validate_event(self._event(event="job.vanished"))
        assert any("unknown event type" in p for p in problems)

    def test_unknown_field_rejected(self):
        problems = jrnl.validate_event(self._event(surprise=1))
        assert any("unknown field" in p for p in problems)

    def test_missing_required_field_rejected(self):
        event = self._event()
        del event["job"]
        assert any("missing field 'job'" in p for p in jrnl.validate_event(event))

    def test_bool_is_not_an_int(self):
        problems = jrnl.validate_event(self._event(attempt=True))
        assert any("must not be a bool" in p for p in problems)

    def test_bad_run_stop_status_rejected(self):
        event = self._event(event="run.stop", status="exploded", jobs_failed=0, total_wall_s=0.0)
        del event["job"]
        del event["attempt"]
        assert any("run.stop status" in p for p in jrnl.validate_event(event))

    def test_wrong_version_rejected(self):
        problems = jrnl.validate_event(self._event(v=jrnl.JOURNAL_VERSION + 1))
        assert any("unsupported" in p for p in problems)

    def test_non_dict_rejected(self):
        assert jrnl.validate_event([1, 2]) != []

    def test_check_event_raises(self):
        with pytest.raises(JournalError):
            jrnl.check_event(self._event(event="job.vanished"))

    def test_every_event_type_has_a_spec(self):
        from repro.journal.events import EVENT_FIELDS

        assert set(jrnl.EVENT_TYPES) == set(EVENT_FIELDS)
        assert "run.start" in jrnl.EVENT_TYPES
        assert "fault.injected" in jrnl.EVENT_TYPES


# ---------------------------------------------------------------------------
# Writer


class TestWriter:
    def test_emit_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with jrnl.JournalWriter(path, label="t") as writer:
            record = writer.emit(
                "run.start", label="t", jobs=1, workers=1,
                retries_allowed=0, keep_going=False, cache_enabled=False,
            )
        events = jrnl.read_events(path)
        assert len(events) == 1
        assert events[0] == record
        assert events[0]["pid"] == os.getpid()
        assert events[0]["t_utc"].endswith("Z")

    def test_invalid_event_not_written(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = jrnl.JournalWriter(path)
        with pytest.raises(JournalError):
            writer.emit("job.started", job="j0")  # missing attempt
        writer.close()
        assert jrnl.read_events(path) == []

    def test_closed_writer_refuses(self, tmp_path):
        writer = jrnl.JournalWriter(tmp_path / "j.jsonl")
        writer.close()
        writer.close()  # idempotent
        assert writer.closed
        with pytest.raises(JournalError):
            writer.emit("job.started", job="j", attempt=0)

    def test_finalize_writes_summary_sidecar(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = jrnl.JournalWriter(path, label="t")
        writer.emit(
            "run.start", label="t", jobs=0, workers=1,
            retries_allowed=0, keep_going=False, cache_enabled=False,
        )
        summary = writer.finalize(status="ok", jobs_failed=0, total_wall_s=1.5)
        assert writer.closed
        sidecar = json.loads((tmp_path / "j.jsonl.summary.json").read_text())
        assert sidecar == summary
        assert sidecar["status"] == "ok"
        assert sidecar["events"] == 2  # run.start + run.stop
        assert sidecar["sha256"] == jrnl.journal_digest(path)

    def test_two_writers_share_one_file(self, tmp_path):
        # The pool-worker arrangement: same file, separate handles.
        path = tmp_path / "j.jsonl"
        a = jrnl.JournalWriter(path, run_id="r", process="main")
        b = jrnl.JournalWriter(path, run_id="r", process="worker-9")
        a.emit("job.started", job="j0", attempt=0)
        b.emit("job.started", job="j1", attempt=0)
        a.emit("job.completed", job="j0", attempts=1, wall_s=0.1)
        a.close()
        b.close()
        events = jrnl.read_events(path)
        assert [e["event"] for e in events] == [
            "job.started", "job.started", "job.completed",
        ]
        assert {e["process"] for e in events} == {"main", "worker-9"}

    def test_new_run_id_sanitizes_label(self):
        run_id = jrnl.new_run_id("weird label/!")
        assert "/" not in run_id and " " not in run_id
        assert run_id.startswith("weird-label")

    def test_rusage_fields_sane(self):
        fields = jrnl.rusage_fields()
        assert set(fields) == {"cpu_user_s", "cpu_system_s", "max_rss_bytes"}
        if fields["max_rss_bytes"] is not None:  # POSIX
            assert fields["max_rss_bytes"] > 0
            assert fields["cpu_user_s"] >= 0.0


class TestAmbient:
    def test_emit_is_noop_when_detached(self):
        assert jrnl.emit("job.started", job="j", attempt=0) is None
        assert not jrnl.journaling()

    def test_attach_emit_detach(self, tmp_path):
        writer = jrnl.JournalWriter(tmp_path / "j.jsonl")
        jrnl.attach(writer)
        try:
            assert jrnl.ambient() is writer
            assert jrnl.journaling()
            record = jrnl.emit("job.started", job="j", attempt=0)
            assert record["event"] == "job.started"
        finally:
            jrnl.detach()
            writer.close()
        assert jrnl.ambient() is None

    def test_double_attach_rejected(self, tmp_path):
        writer = jrnl.JournalWriter(tmp_path / "j.jsonl")
        jrnl.attach(writer)
        try:
            with pytest.raises(JournalError):
                jrnl.attach(writer)
        finally:
            jrnl.detach()
            writer.close()

    def test_use_writer_scopes_attachment(self, tmp_path):
        writer = jrnl.JournalWriter(tmp_path / "j.jsonl")
        with jrnl.use_writer(writer):
            assert jrnl.ambient() is writer
        assert jrnl.ambient() is None
        assert not writer.closed  # use_writer never closes
        writer.close()


# ---------------------------------------------------------------------------
# Reader: torn tails, follower, truncation property


def _fixture_journal(tmp_path, *, jobs=3):
    """A complete synthetic journal; returns (path, events)."""
    path = tmp_path / "fixture.jsonl"
    writer = jrnl.JournalWriter(path, label="fix")
    writer.emit(
        "run.start", label="fix", jobs=jobs, workers=1,
        retries_allowed=1, keep_going=True, cache_enabled=False,
    )
    for i in range(jobs):
        writer.emit("job.scheduled", job=f"j{i}", key=f"k{i}", index=i)
    for i in range(jobs):
        writer.emit("job.started", job=f"j{i}", attempt=0)
        writer.emit("job.completed", job=f"j{i}", attempts=1, wall_s=0.5 + i)
    writer.finalize(status="ok", jobs_failed=0, total_wall_s=3.0, summary=False)
    return path, jrnl.read_events(path)


class TestReader:
    def test_torn_tail_dropped_and_flagged(self, tmp_path):
        path, events = _fixture_journal(tmp_path)
        data = path.read_bytes() + b'{"event": "job.star'
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(data)
        scan = jrnl.scan_journal(torn)
        assert scan.torn_tail
        assert scan.malformed == 0
        assert scan.events == events

    def test_malformed_line_skipped_or_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"event": "x"}\nnot json\n[1, 2]\n')
        scan = jrnl.scan_journal(path)
        assert scan.malformed == 2
        assert len(scan.events) == 1
        with pytest.raises(JournalError):
            jrnl.scan_journal(path, strict=True)

    def test_follower_polls_incrementally(self, tmp_path):
        path = tmp_path / "live.jsonl"
        follower = jrnl.JournalFollower(path)
        assert follower.poll() == []  # file not created yet
        writer = jrnl.JournalWriter(path, run_id="r")
        writer.emit("job.started", job="j0", attempt=0)
        assert [e["job"] for e in follower.poll()] == ["j0"]
        assert follower.poll() == []
        writer.emit("job.completed", job="j0", attempts=1, wall_s=0.1)
        writer.close()
        assert [e["event"] for e in follower.poll()] == ["job.completed"]

    def test_follower_waits_out_partial_lines(self, tmp_path):
        path = tmp_path / "live.jsonl"
        line = json.dumps({"event": "job.started", "job": "j0"}) + "\n"
        with open(path, "w") as handle:
            handle.write(line)
            handle.write('{"event": "job.comp')  # torn mid-write
        follower = jrnl.JournalFollower(path)
        assert len(follower.poll()) == 1
        with open(path, "a") as handle:
            handle.write('leted", "job": "j0"}\n')
        polled = follower.poll()
        assert [e["event"] for e in polled] == ["job.completed"]

    def test_validate_events_reports_indices(self, tmp_path):
        path, events = _fixture_journal(tmp_path)
        assert jrnl.validate_events(events) == []
        problems = jrnl.validate_events(events + [{"event": "job.vanished"}])
        assert problems
        assert all(f"event {len(events) + 1}" in p for p in problems)

    @given(fraction=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_truncation_at_any_offset_yields_event_prefix(self, fraction, tmp_path_factory):
        """The crash-safety property: cut anywhere, parse every whole line."""
        tmp_path = tmp_path_factory.mktemp("trunc")
        path, events = _fixture_journal(tmp_path)
        raw = path.read_bytes()
        # Journal bytes vary run to run (timestamps), so draw a fixed-range
        # fraction and scale it onto this file's [0, len] offset range.
        cut = round(fraction * len(raw) / 10_000)
        truncated = tmp_path / "cut.jsonl"
        truncated.write_bytes(raw[:cut])
        scan = jrnl.scan_journal(truncated)
        assert scan.malformed == 0
        assert scan.events == events[: len(scan.events)]  # a strict prefix
        # the tail is torn exactly when the cut landed mid-line
        assert scan.torn_tail == (cut > 0 and raw[:cut][-1:] != b"\n")
        # replay of any prefix never raises and never invents jobs
        state = jrnl.replay(scan.events)
        assert set(state.jobs) <= {f"j{i}" for i in range(3)}


# ---------------------------------------------------------------------------
# Replay vs the campaign manifest (the crash-recovery contract)


class TestReplayMatchesManifest:
    def _check(self, result, path):
        state = jrnl.replay_journal(path)
        assert state.complete
        table = jrnl.attempt_table(state)
        assert set(table) == {row["job_id"] for row in result.manifest["jobs"]}
        for row in result.manifest["jobs"]:
            replayed = table[row["job_id"]]
            assert replayed["status"] == row["status"]
            assert replayed["attempts"] == row["attempts"]
            assert replayed["cache_status"] == row["cache_status"]
        return state

    def test_serial_fault_injected_campaign(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = CampaignRunner(retries=2, keep_going=True, journal=path)
        result = runner.run(_jobs(3, faulty=("j1",)), label="serial")
        state = self._check(result, path)
        assert state.stop_status == "ok"
        assert state.jobs["j1"].attempts == 2  # one injected failure + success
        assert state.faults and state.faults[0]["kind"] == "transient"

    def test_pooled_fault_injected_campaign(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = CampaignRunner(workers=2, retries=2, keep_going=True, journal=path)
        result = runner.run(_jobs(4, faulty=("j1",)), label="pooled")
        state = self._check(result, path)
        heartbeat_events = [e for e in jrnl.read_events(path) if e["event"] == "worker.heartbeat"]
        if result.manifest["workers_used"] > 1:
            assert heartbeat_events
            worker_pids = {e["pid"] for e in heartbeat_events}
            assert os.getpid() not in worker_pids

    def test_warm_cache_run_replays_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(3)
        CampaignRunner(cache=cache).run(jobs, label="cold")
        path = tmp_path / "warm.jsonl"
        result = CampaignRunner(cache=cache, journal=path).run(jobs, label="warm")
        state = self._check(result, path)
        assert all(j.status == "cached" for j in state.jobs.values())
        assert state.cache_enabled

    def test_exhausted_job_replays_as_failed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = CampaignRunner(retries=1, keep_going=True, journal=path)
        result = runner.run(
            _jobs(2, faulty=("j0",), transient_failures=5), label="exhausted"
        )
        state = self._check(result, path)
        assert state.stop_status == "failed"
        assert state.jobs["j0"].status == "failed"
        assert state.jobs["j0"].error_type == "TransientFault"

    def test_fail_fast_abort_still_finalizes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = CampaignRunner(retries=0, journal=path)
        with pytest.raises(CampaignExecutionError):
            runner.run(_jobs(2, faulty=("j0",), transient_failures=5), label="abort")
        state = jrnl.replay_journal(path)
        assert state.complete
        assert state.stop_status == "aborted"
        assert jrnl.ambient() is None

    def test_journal_does_not_change_fingerprint(self, tmp_path):
        jobs = _jobs(2, faulty=("j1",))
        with_journal = CampaignRunner(
            retries=2, keep_going=True, journal=tmp_path / "a.jsonl"
        ).run(jobs, label="x")
        without = CampaignRunner(retries=2, keep_going=True).run(jobs, label="x")
        assert with_journal.manifest["fingerprint"] == without.manifest["fingerprint"]
        assert with_journal.manifest["journal"]["events"] > 0
        assert without.manifest["journal"] is None

    def test_manifest_journal_block_matches_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = CampaignRunner(journal=path).run(_jobs(2), label="x")
        block = result.manifest["journal"]
        sidecar = json.loads((tmp_path / "run.jsonl.summary.json").read_text())
        assert block["sha256"] == sidecar["sha256"] == jrnl.journal_digest(path)
        assert block["events"] == sidecar["events"] == len(jrnl.read_events(path))
        assert block["run_id"] == sidecar["run_id"]

    def test_caller_owned_writer_not_finalized(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = jrnl.JournalWriter(path, label="mine")
        result = CampaignRunner(journal=writer).run(_jobs(2), label="x")
        assert not writer.closed  # caller keeps ownership
        state = jrnl.replay_journal(path)
        assert not state.complete  # no run.stop yet
        writer.finalize(status="ok", jobs_failed=0, total_wall_s=1.0)
        assert jrnl.replay_journal(path).complete
        assert result.manifest["journal"]["sha256"] is None  # digest needs finalize

    def test_all_journal_events_validate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CampaignRunner(workers=2, retries=2, keep_going=True, journal=path).run(
            _jobs(4, faulty=("j1",)), label="drill"
        )
        events = jrnl.read_events(path)
        assert events
        assert jrnl.validate_events(events) == []


# ---------------------------------------------------------------------------
# Cache accounting invariant (hits + misses == attempts)


class TestCacheAccounting:
    def test_retries_count_as_misses(self, tmp_path):
        result = CampaignRunner(retries=2, keep_going=True).run(
            _jobs(3, faulty=("j1",)), label="x"
        )
        stats = result.cache_stats
        assert stats["jobs"] == 3
        assert stats["attempts"] == 4  # 3 first attempts + 1 retry
        assert stats["hits"] + stats["misses"] == stats["attempts"]
        assert stats["hit_rate"] == 0.0

    def test_warm_run_balances(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(2)
        CampaignRunner(cache=cache).run(jobs, label="cold")
        warm = CampaignRunner(cache=cache).run(jobs, label="warm")
        stats = warm.cache_stats
        assert stats == {
            "jobs": 2,
            "attempts": 2,
            "hits": 2,
            "misses": 0,
            "invalidations": 0,
            "hit_rate": 1.0,
        }

    def test_run_cache_stats_validates_alignment(self):
        from repro.campaign.runner import run_cache_stats

        with pytest.raises(Exception):
            run_cache_stats(["hit", "computed"], executions=[0])

    def test_run_cache_stats_without_executions(self):
        from repro.campaign.runner import run_cache_stats

        stats = run_cache_stats(["hit", "computed", "failed"])
        assert stats["attempts"] == 3
        assert stats["hits"] == 1
        assert stats["misses"] == 2


# ---------------------------------------------------------------------------
# Progress snapshots


class TestProgress:
    def test_complete_run_snapshot_is_reproducible(self, tmp_path):
        path, _ = _fixture_journal(tmp_path)
        state = jrnl.replay_journal(path)
        a = jrnl.progress_from_state(state)
        b = jrnl.progress_from_state(state)
        assert a == b
        assert a.complete and a.status == "ok"
        assert a.done == 3 and a.failed == 0 and a.remaining == 0
        assert a.eta_s == 0.0

    def test_in_flight_snapshot_counts_and_eta(self, tmp_path):
        path = tmp_path / "live.jsonl"
        writer = jrnl.JournalWriter(path, run_id="r")
        writer.emit(
            "run.start", label="live", jobs=4, workers=1,
            retries_allowed=0, keep_going=False, cache_enabled=False,
        )
        start = jrnl.read_events(path)[0]["t_mono"]
        for i in range(4):
            writer.emit("job.scheduled", job=f"j{i}", key=f"k{i}", index=i)
        writer.emit("job.started", job="j0", attempt=0)
        writer.emit("job.completed", job="j0", attempts=1, wall_s=1.0)
        writer.emit("job.started", job="j1", attempt=0)
        writer.close()
        state = jrnl.replay_journal(path)
        progress = jrnl.progress_from_state(state, now_mono=start + 10.0)
        assert not progress.complete
        assert progress.done == 1 and progress.running == 1 and progress.scheduled == 2
        assert progress.remaining == 3
        assert progress.throughput_jobs_per_s == pytest.approx(0.1)
        assert progress.eta_s == pytest.approx(30.0)
        assert progress.slowest_running[0][0] == "j1"

    def test_render_contains_bar_and_counts(self, tmp_path):
        path, _ = _fixture_journal(tmp_path)
        text = jrnl.render_progress(
            jrnl.progress_from_state(jrnl.replay_journal(path))
        )
        assert "3/3 jobs" in text
        assert "#" in text
        assert "run finished: status=ok" in text


# ---------------------------------------------------------------------------
# Trace export


class TestTraceExport:
    def test_journal_slices_one_per_attempt(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CampaignRunner(retries=2, keep_going=True, journal=path).run(
            _jobs(2, faulty=("j1",)), label="trace"
        )
        events = jrnl.read_events(path)
        trace = jrnl.chrome_trace(journal_events=events)
        assert jrnl.validate_trace(trace) == []
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        started = [e for e in events if e["event"] == "job.started"]
        assert len(slices) == len(started)  # one slice per attempt
        names = {s["name"] for s in slices}
        assert "j1 (attempt 0)" in names and "j1 (attempt 1)" in names
        instants = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
        assert {"run.start", "run.stop", "fault.injected"} <= instants

    def test_open_attempt_becomes_flagged_slice(self):
        events = [
            {"event": "job.started", "job": "j0", "attempt": 0,
             "t_unix": 100.0, "pid": 1, "process": "main"},
        ]
        trace = jrnl.chrome_trace(journal_events=events)
        assert jrnl.validate_trace(trace) == []
        (slice_,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slice_["args"]["open"] is True
        assert slice_["dur"] == 0.0

    def test_timestamps_normalized_to_origin(self, tmp_path):
        path, _ = _fixture_journal(tmp_path)
        trace = jrnl.chrome_trace(journal_events=jrnl.read_events(path))
        timed = [e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert min(timed) == 0.0
        assert trace["otherData"]["origin_unix"] > 0

    def test_telemetry_overlay_aligns_clocks(self):
        export = {
            "epoch_unix": 1000.0,
            "spans": [
                {"name": "campaign.run", "t_start": 1.0, "t_end": 3.0,
                 "process": "main", "attrs": {"jobs": 2}},
                {"name": "open.span", "t_start": 1.0, "t_end": None,
                 "process": "main", "attrs": {}},
            ],
        }
        rows = jrnl.telemetry_trace_events(export)
        slices = [e for e in rows if e["ph"] == "X"]
        assert len(slices) == 1  # the open span is skipped
        assert slices[0]["ts"] == pytest.approx(1001.0 * 1e6)
        assert slices[0]["dur"] == pytest.approx(2.0 * 1e6)

    def test_worker_process_pids_are_stable(self):
        from repro.journal.trace_export import _process_pid

        assert _process_pid("worker-42") == 42
        assert _process_pid("main") == _process_pid("main")
        assert _process_pid("main") != _process_pid("other")

    def test_export_needs_some_input(self):
        with pytest.raises(JournalError):
            jrnl.chrome_trace()

    def test_validate_trace_catches_violations(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "X", "ts": -1, "pid": 1, "tid": 1},
            {"ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "q"},
        ]}
        problems = jrnl.validate_trace(bad)
        assert len(problems) >= 3
        assert jrnl.validate_trace({"traceEvents": "nope"}) == ["traceEvents must be a list"]


# ---------------------------------------------------------------------------
# Anomaly report


def _synthetic_state(durations, *, retries_allowed=2, attempts=None, statuses=None):
    state = jrnl.RunState(
        run_id="r", label="synth", jobs_expected=len(durations),
        retries_allowed=retries_allowed, started=True, stopped=True,
        stop_status="ok",
    )
    for i, wall in enumerate(durations):
        job = state.job(f"j{i}")
        job.index = i
        job.status = statuses[i] if statuses else "completed"
        job.wall_s = wall
        job.attempts = attempts[i] if attempts else 1
    return state


class TestReport:
    def test_clean_run_reports_clean(self, tmp_path):
        path, _ = _fixture_journal(tmp_path)
        report = jrnl.analyze_state(jrnl.replay_journal(path))
        assert report.clean
        assert "no anomalies" in jrnl.render_report(report)

    def test_straggler_flagged(self):
        state = _synthetic_state([1.0, 1.1, 0.9, 1.0, 1.05, 30.0])
        report = jrnl.analyze_state(state)
        stragglers = report.by_kind("straggler")
        assert [a.subject for a in stragglers] == ["j5"]
        assert stragglers[0].severity > 3.5

    def test_uniform_durations_never_flag(self):
        state = _synthetic_state([1.0, 1.0, 1.0, 1.0, 1.0])
        assert jrnl.analyze_state(state).by_kind("straggler") == []

    def test_retry_storm_run_level(self):
        state = _synthetic_state([1.0] * 4, attempts=[2, 2, 1, 1])
        report = jrnl.analyze_state(state)
        run_storms = [a for a in report.by_kind("retry-storm") if a.subject == "run"]
        assert run_storms and run_storms[0].severity == pytest.approx(0.5)

    def test_retry_budget_exhaustion_flagged_per_job(self):
        state = _synthetic_state([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
                                 retries_allowed=2, attempts=[3, 1, 1, 1, 1, 1, 1, 1])
        report = jrnl.analyze_state(state)
        per_job = [a for a in report.by_kind("retry-storm") if a.subject == "j0"]
        assert per_job

    def test_cache_collapse_flagged(self):
        statuses = ["cached"] * 4 + ["completed"] * 4
        state = _synthetic_state([0.0] * 4 + [1.0] * 4, statuses=statuses)
        state.cache_enabled = True
        report = jrnl.analyze_state(state)
        collapses = report.by_kind("cache-collapse")
        assert collapses and collapses[0].severity == pytest.approx(1.0)

    def test_no_collapse_without_cache(self):
        statuses = ["cached"] * 4 + ["completed"] * 4
        state = _synthetic_state([0.0] * 4 + [1.0] * 4, statuses=statuses)
        state.cache_enabled = False
        assert jrnl.analyze_state(state).by_kind("cache-collapse") == []

    def test_report_to_dict_round_trips_thresholds(self):
        state = _synthetic_state([1.0, 1.0, 1.0, 30.0, 1.0])
        report = jrnl.analyze_state(state, straggler_z=2.0)
        data = jrnl.report_to_dict(report)
        assert data["thresholds"]["straggler_z"] == 2.0
        assert json.loads(json.dumps(data)) == data


# ---------------------------------------------------------------------------
# Per-job resource accounting


class TestRusageDeltas:
    """``job.completed`` reports per-attempt CPU, not process-cumulative CPU."""

    def test_serial_jobs_report_disjoint_cpu(self, tmp_path):
        """Sum of per-job CPU must fit inside the process's cumulative CPU.

        ``getrusage`` counters only ever grow, so if each job reported the
        cumulative value (the old bug) the N-th job would inherit all its
        predecessors' CPU and the sum across jobs would exceed the
        process total by roughly a factor of N/2.
        """
        path = tmp_path / "rusage.jsonl"
        runner = CampaignRunner(workers=1, journal=path)
        runner.run(_jobs(4), label="rusage")
        state = jrnl.replay(jrnl.read_events(path))
        per_job = [
            (job.cpu_user_s or 0.0) + (job.cpu_system_s or 0.0)
            for job in state.jobs.values()
        ]
        total = jrnl.rusage_fields()
        if total["cpu_user_s"] is None:
            pytest.skip("no resource module on this platform")
        cumulative = total["cpu_user_s"] + total["cpu_system_s"]
        assert all(cpu >= 0.0 for cpu in per_job)
        assert sum(per_job) <= cumulative + 0.05

    def test_rusage_delta_clamps_and_degrades(self):
        start = jrnl.rusage_fields()
        delta = jrnl.rusage_delta(start)
        if start["cpu_user_s"] is None:
            assert delta["cpu_user_s"] is None
            return
        assert delta["cpu_user_s"] >= 0.0
        assert delta["cpu_system_s"] >= 0.0
        # peak RSS is a high-water mark: absolute, never differenced
        assert delta["max_rss_bytes"] >= start["max_rss_bytes"]
        # no snapshot -> cumulative fallback
        cumulative = jrnl.rusage_delta(None)
        assert cumulative["cpu_user_s"] >= start["cpu_user_s"]
