"""Pareto-frontier tests (deterministic + hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ParetoPoint, dominated_by, pareto_front
from repro.exceptions import MetricError


def P(name, perf, power):
    return ParetoPoint(name=name, performance=perf, power_w=power)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert P("a", 10, 5).dominates(P("b", 8, 6))

    def test_equal_does_not_dominate(self):
        assert not P("a", 10, 5).dominates(P("b", 10, 5))

    def test_better_on_one_axis_only(self):
        assert P("a", 10, 5).dominates(P("b", 10, 6))
        assert P("a", 11, 5).dominates(P("b", 10, 5))

    def test_crossed_points_do_not_dominate(self):
        a, b = P("a", 10, 5), P("b", 12, 8)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestFront:
    def test_simple_front(self):
        points = [P("slowlow", 5, 2), P("midmid", 8, 4), P("fasthigh", 12, 8),
                  P("dominated", 7, 5)]
        front = pareto_front(points)
        assert [p.name for p in front] == ["slowlow", "midmid", "fasthigh"]

    def test_single_point(self):
        assert pareto_front([P("only", 1, 1)])[0].name == "only"

    def test_one_machine_dominates_all(self):
        points = [P("best", 100, 1), P("x", 50, 2), P("y", 10, 3)]
        front = pareto_front(points)
        assert [p.name for p in front] == ["best"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(MetricError):
            pareto_front([P("a", 1, 1), P("a", 2, 2)])

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            pareto_front([])

    def test_dominated_by_map(self):
        points = [P("king", 10, 1), P("pawn", 5, 2), P("bishop", 8, 3)]
        dom = dominated_by(points)
        assert dom["king"] == []
        assert dom["pawn"] == ["king"]
        assert dom["bishop"] == ["king"]


class TestFrontProperties:
    @st.composite
    def point_sets(draw):
        n = draw(st.integers(min_value=1, max_value=30))
        perfs = draw(st.lists(st.floats(min_value=0, max_value=1e6), min_size=n, max_size=n))
        powers = draw(st.lists(st.floats(min_value=1e-3, max_value=1e5), min_size=n, max_size=n))
        return [P(f"s{i}", perf, pw) for i, (perf, pw) in enumerate(zip(perfs, powers))]

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_front_members_are_mutually_non_dominating(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_every_non_front_point_is_dominated(self, points):
        front = pareto_front(points)
        front_names = {p.name for p in front}
        for p in points:
            if p.name not in front_names:
                assert any(q.dominates(p) for q in front)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_front_sorted_by_power(self, points):
        front = pareto_front(points)
        powers = [p.power_w for p in front]
        assert powers == sorted(powers)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_front_agrees_with_dominated_by(self, points):
        front_names = {p.name for p in pareto_front(points)}
        dom = dominated_by(points)
        for p in points:
            if not dom[p.name]:
                # non-dominated => on the front (up to exact duplicates,
                # where the sweep keeps the co-located representative)
                duplicates = [
                    q for q in points
                    if (q.performance, q.power_w) == (p.performance, p.power_w)
                ]
                assert any(q.name in front_names for q in duplicates)


class TestFleetFrontier:
    def test_fleet_frontier_and_tgi_agree_on_extremes(self, paper_context):
        """Across the sweep's scale points, the highest-TGI point must not
        be Pareto-dominated in (aggregate suite performance proxy, power)."""
        sweep = paper_context.sweep
        points = []
        for i, cores in enumerate(sweep.cores):
            suite = sweep.suites[i]
            # HPL perf as the performance proxy; suite-mean power
            perf = suite["HPL"].performance
            power = sum(suite.powers_w.values()) / 3
            points.append(P(f"{cores}c", perf, power))
        dom = dominated_by(points)
        # full scale delivers the most HPL performance: never dominated
        assert dom["128c"] == []
