"""Property-based tests on the power substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import (
    NodePowerModel,
    NodeUtilization,
    PiecewisePower,
    PowerTrace,
    PSUModel,
)
from repro.cluster import presets

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def utilizations(draw):
    return NodeUtilization(
        cpu_active_fraction=draw(fractions),
        cpu_intensity=draw(fractions),
        memory=draw(fractions),
        storage=draw(fractions),
        nic=draw(fractions),
    )


@st.composite
def piecewise_powers(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    durations = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    watts = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    segments = []
    t = 0.0
    for d, w in zip(durations, watts):
        segments.append((t, t + d, w))
        t += d
    return PiecewisePower(segments)


class TestNodePowerProperties:
    @given(util=utilizations())
    @settings(max_examples=60, deadline=None)
    def test_power_within_nominal_envelope(self, util):
        """Any utilization maps inside [idle, max] DC watts."""
        model = NodePowerModel(node=presets.fire().node)
        dc = model.dc_power(util)
        node = presets.fire().node
        assert node.nominal_idle_watts - 1e-9 <= dc <= node.nominal_max_watts + 1e-9

    @given(util=utilizations())
    @settings(max_examples=60, deadline=None)
    def test_wall_at_least_dc(self, util):
        model = NodePowerModel(node=presets.fire().node)
        assert model.wall_power(util) >= model.dc_power(util)

    @given(a=fractions, b=fractions)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_each_component(self, a, b):
        model = NodePowerModel(node=presets.fire().node)
        lo, hi = min(a, b), max(a, b)
        for field in ("memory", "storage", "nic"):
            p_lo = model.dc_power(NodeUtilization(**{field: lo}))
            p_hi = model.dc_power(NodeUtilization(**{field: hi}))
            assert p_hi >= p_lo - 1e-9


class TestPiecewiseProperties:
    @given(truth=piecewise_powers())
    @settings(max_examples=60, deadline=None)
    def test_energy_equals_mean_times_duration(self, truth):
        assert truth.energy() == pytest.approx(truth.mean_power() * truth.duration)

    @given(truth=piecewise_powers())
    @settings(max_examples=60, deadline=None)
    def test_mean_bounded_by_extremes(self, truth):
        watts = [w for _, _, w in truth.segments]
        assert min(watts) - 1e-9 <= truth.mean_power() <= max(watts) + 1e-9

    @given(truth=piecewise_powers(), scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_energy_linear_in_power(self, truth, scale):
        scaled = PiecewisePower(
            [(t0, t1, w * scale) for t0, t1, w in truth.segments]
        )
        assert scaled.energy() == pytest.approx(scale * truth.energy(), rel=1e-9)


class TestTraceProperties:
    @given(
        watts=st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_trapezoid_energy_bounds(self, watts):
        times = np.arange(len(watts), dtype=float)
        trace = PowerTrace(times, watts)
        duration = trace.duration
        assert (
            min(watts) * duration - 1e-6
            <= trace.energy()
            <= max(watts) * duration + 1e-6
        )

    @given(
        watts=st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        dt=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, watts, dt):
        times = np.arange(len(watts), dtype=float)
        trace = PowerTrace(times, watts)
        assert trace.shifted(dt).energy() == pytest.approx(trace.energy())


class TestPSUProperties:
    @given(dc=st.floats(min_value=0, max_value=500, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_efficiency_in_unit_interval(self, dc):
        psu = PSUModel(rated_watts=400)
        assert 0 < psu.efficiency(dc) <= 1

    @given(
        dc_a=st.floats(min_value=1, max_value=500),
        dc_b=st.floats(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_wall_monotone(self, dc_a, dc_b):
        psu = PSUModel(rated_watts=400)
        lo, hi = min(dc_a, dc_b), max(dc_a, dc_b)
        assert psu.wall_watts(hi) >= psu.wall_watts(lo) - 1e-9


class TestSerializationProperties:
    @given(truth=piecewise_powers())
    @settings(max_examples=40, deadline=None)
    def test_piecewise_round_trips_through_archive_form(self, truth):
        """PiecewisePower survives the segments-list form serialization
        uses, preserving energy exactly."""
        rebuilt = PiecewisePower([tuple(s) for s in truth.segments])
        assert rebuilt.energy() == pytest.approx(truth.energy(), rel=1e-12)
        assert rebuilt.duration == pytest.approx(truth.duration, rel=1e-12)

    @given(
        watts=st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_round_trips_through_lists(self, watts):
        trace = PowerTrace(np.arange(len(watts), dtype=float), watts)
        rebuilt = PowerTrace(trace.times.tolist(), trace.watts.tolist())
        assert rebuilt.energy() == pytest.approx(trace.energy(), rel=1e-12)
