"""Property-based tests on the metric layer (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    pearson,
    weighted_arithmetic_mean,
)
from repro.core import tgi_from_components, validate_weights
from repro.core.efficiency import energy_efficiency
from repro.core.ree import relative_efficiency
from repro.exceptions import MetricError

positive = st.floats(min_value=1e-6, max_value=1e12, allow_nan=False)

BENCHES = ("HPL", "STREAM", "IOzone")


@st.composite
def ree_dicts(draw):
    return {name: draw(positive) for name in BENCHES}


@st.composite
def weight_dicts(draw):
    raw = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in BENCHES]
    total = sum(raw)
    if total == 0:
        raw = [1.0] * len(BENCHES)
        total = float(len(BENCHES))
    return {name: r / total for name, r in zip(BENCHES, raw)}


class TestTGIProperties:
    @given(ree=ree_dicts(), weights=weight_dicts())
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_ree_extremes(self, ree, weights):
        """A convex combination can never leave [min REE, max REE]
        (up to floating-point rounding of the weighted sum)."""
        tgi = tgi_from_components(ree, weights)
        lo, hi = min(ree.values()), max(ree.values())
        assert lo * (1 - 1e-9) - 1e-9 <= tgi <= hi * (1 + 1e-9) + 1e-9

    @given(ree=ree_dicts(), weights=weight_dicts(), scale=positive)
    @settings(max_examples=100, deadline=None)
    def test_homogeneous_in_ree(self, ree, weights, scale):
        """TGI is linear: scaling all REEs scales TGI."""
        tgi = tgi_from_components(ree, weights)
        scaled = tgi_from_components({k: v * scale for k, v in ree.items()}, weights)
        assert scaled == pytest.approx(scale * tgi, rel=1e-9)

    @given(ree=ree_dicts(), w1=weight_dicts(), w2=weight_dicts())
    @settings(max_examples=100, deadline=None)
    def test_weight_mixture_interpolates(self, ree, w1, w2):
        """TGI under a 50/50 weight blend is the mean of the two TGIs."""
        mixed = {k: 0.5 * (w1[k] + w2[k]) for k in w1}
        left = tgi_from_components(ree, mixed)
        right = 0.5 * (tgi_from_components(ree, w1) + tgi_from_components(ree, w2))
        assert left == pytest.approx(right, rel=1e-9)

    @given(ree=ree_dicts())
    @settings(max_examples=100, deadline=None)
    def test_equal_ree_means_weights_irrelevant(self, ree):
        value = ree["HPL"]
        uniform_ree = {k: value for k in ree}
        for weights in ({"HPL": 1.0, "STREAM": 0.0, "IOzone": 0.0},
                        {"HPL": 1 / 3, "STREAM": 1 / 3, "IOzone": 1 / 3}):
            assert tgi_from_components(uniform_ree, weights) == pytest.approx(value)

    @given(ree=ree_dicts(), weights=weight_dicts())
    @settings(max_examples=100, deadline=None)
    def test_matches_weighted_arithmetic_mean(self, ree, weights):
        names = sorted(ree)
        expected = weighted_arithmetic_mean(
            [ree[n] for n in names], [weights[n] for n in names]
        )
        assert tgi_from_components(ree, weights) == pytest.approx(expected, rel=1e-9)


class TestEfficiencyProperties:
    @given(perf=positive, power=positive, k=positive)
    @settings(max_examples=100, deadline=None)
    def test_ee_inverse_in_power(self, perf, power, k):
        assert energy_efficiency(perf, power * k) == pytest.approx(
            energy_efficiency(perf, power) / k, rel=1e-9
        )

    @given(ee=positive, ref=positive)
    @settings(max_examples=100, deadline=None)
    def test_ree_reciprocity(self, ee, ref):
        """REE(a vs b) * REE(b vs a) == 1."""
        assert relative_efficiency(ee, ref) * relative_efficiency(ref, ee) == pytest.approx(
            1.0, rel=1e-9
        )


class TestWeightValidationProperties:
    @given(weights=weight_dicts())
    @settings(max_examples=100, deadline=None)
    def test_generated_weights_always_valid(self, weights):
        validate_weights(weights)

    @given(weights=weight_dicts(), epsilon=st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_perturbed_weights_rejected(self, weights, epsilon):
        broken = dict(weights)
        broken["HPL"] = broken["HPL"] + epsilon
        with pytest.raises(MetricError):
            validate_weights(broken)


class TestPearsonProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=3,
            max_size=40,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_symmetric_and_bounded(self, data):
        x = [a for a, _ in data]
        y = [b for _, b in data]
        try:
            r_xy = pearson(x, y)
            r_yx = pearson(y, x)
        except MetricError:
            return  # constant series: undefined, correctly rejected
        assert -1.0 <= r_xy <= 1.0
        assert r_xy == pytest.approx(r_yx, abs=1e-12)

    @given(
        x=st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=3,
            max_size=30,
        ),
        a=st.floats(min_value=0.01, max_value=100),
        b=st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariant_under_positive_affine_maps(self, x, a, b):
        try:
            base = pearson(x, list(range(len(x))))
            # a*x + b can underflow to a constant when |x| << |b|/a; that
            # degenerate case is correctly rejected, not an invariance bug
            mapped = pearson([a * v + b for v in x], list(range(len(x))))
        except MetricError:
            return
        # When the spread of a*x is rounding noise next to the values of
        # a*x+b (e.g. x = [0, 0, 2e-16], b = 1), the mapped series carries
        # essentially no signal from x and the correlation is dominated by
        # 1-ulp rounding — invariance is numerically meaningless there.
        scale = max(abs(b), a * max(abs(v) for v in x))
        spread = a * (max(x) - min(x))
        if spread < 1e-6 * scale:
            return
        # float cancellation in a*x+b degrades precision for |x| << |b|
        assert mapped == pytest.approx(base, abs=1e-3)
