"""CLI surface of the flight recorder: watch, tail, journal, trace export.

Everything here drives :func:`repro.cli.main` in-process (the suite's
idiom) except the live-watch acceptance test, which runs a journaled
campaign in a *separate process* and follows its journal from this one —
the ISSUE's acceptance criterion for ``tgi watch``.
"""

import dataclasses
import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro import journal as jrnl
from repro.cli import build_parser, main

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def quick_config(monkeypatch):
    """Shrink the campaign the CLI runs so the test costs seconds."""
    import repro.cli
    from repro.experiments import PAPER_CONFIG

    quick = dataclasses.replace(
        PAPER_CONFIG,
        core_counts=(16, 32),
        hpl_problem_size=4480,
        hpl_rounds=2,
        stream_target_seconds=5,
        iozone_target_seconds=5,
    )
    monkeypatch.setattr(repro.cli, "PAPER_CONFIG", quick)
    return quick


@pytest.fixture(autouse=True)
def _no_leaked_ambient():
    jrnl.detach()
    yield
    assert jrnl.ambient() is None, "CLI leaked an ambient journal writer"
    jrnl.detach()


def _synthetic_journal(path, *, walls=(1.0, 1.0, 1.0, 1.0), status="ok"):
    """A complete recorded run with the given per-job wall times."""
    writer = jrnl.JournalWriter(path, label="synth")
    writer.emit(
        "run.start", label="synth", jobs=len(walls), workers=1,
        retries_allowed=0, keep_going=False, cache_enabled=False,
    )
    for i, wall in enumerate(walls):
        writer.emit("job.scheduled", job=f"j{i}", key=f"k{i}", index=i)
        writer.emit("job.started", job=f"j{i}", attempt=0)
        writer.emit("job.completed", job=f"j{i}", attempts=1, wall_s=wall)
    writer.finalize(
        status=status, jobs_failed=0, total_wall_s=float(sum(walls)), summary=False
    )
    return path


class TestParsers:
    def test_watch_defaults(self):
        args = build_parser().parse_args(["watch", "run.jl"])
        assert args.journal == "run.jl"
        assert args.interval == 0.5 and not args.once and args.timeout == 0.0

    def test_tail_flags(self):
        args = build_parser().parse_args(["tail", "run.jl", "-f", "--raw"])
        assert args.follow and args.raw

    def test_journal_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["journal"])

    def test_journal_report_thresholds(self):
        args = build_parser().parse_args(
            ["journal", "report", "run.jl", "--json", "--straggler-z", "2.5"]
        )
        assert args.journal_command == "report"
        assert args.as_json and args.straggler_z == 2.5
        assert args.storm_fraction == 0.25 and args.collapse_drop == 0.5

    def test_trace_export_defaults(self):
        args = build_parser().parse_args(["trace", "export", "--journal", "run.jl"])
        assert args.trace_command == "export"
        assert args.format == "chrome" and args.output is None

    def test_campaign_and_run_take_journal(self):
        assert build_parser().parse_args(
            ["campaign", "--journal", "r.jl"]
        ).journal == "r.jl"
        assert build_parser().parse_args(
            ["run", "capability", "--journal", "r.jl"]
        ).journal == "r.jl"


class TestJournaledCampaign:
    def test_campaign_journal_flow(self, quick_config, tmp_path, capsys):
        """One CLI campaign feeds every inspection verb."""
        journal_path = tmp_path / "run.jsonl"
        assert main([
            "campaign",
            "--journal", str(journal_path),
            "--retries", "2",
            "--inject", "fire-sweep:transient:1",
        ]) == 0
        captured = capsys.readouterr()
        assert f"flight recorder armed: {journal_path}" in captured.err
        assert "journal:" in captured.err  # post-run digest line
        assert journal_path.exists()
        sidecar = json.loads((tmp_path / "run.jsonl.summary.json").read_text())
        assert sidecar["status"] == "ok"

        # validate: every event passes the schema
        assert main(["journal", "validate", str(journal_path)]) == 0
        assert "journal ok" in capsys.readouterr().out

        # summary: terminal snapshot of the recorded run
        assert main(["journal", "summary", str(journal_path)]) == 0
        out = capsys.readouterr().out
        assert "run finished: status=ok" in out
        assert "2/2 jobs" in out

        # report: the injected transient shows up as a retry, run stays sane
        assert main(["journal", "report", str(journal_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["retries"] == 1 and report["faults"] == 1
        assert report["completed"] == 2

        # watch --once: single rendered frame of a finished run
        assert main(["watch", str(journal_path), "--once"]) == 0
        assert "run finished: status=ok" in capsys.readouterr().out

        # tail: one human line per event, fault event included
        assert main(["tail", str(journal_path)]) == 0
        out = capsys.readouterr().out
        events = jrnl.read_events(journal_path)
        assert len(out.strip().splitlines()) == len(events)
        assert "fault.injected" in out and "kind=transient" in out

        # tail --raw: every line is the exact JSONL record
        assert main(["tail", str(journal_path), "--raw"]) == 0
        raw_lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line) for line in raw_lines] == events

        # trace export: validated Chrome trace JSON on disk
        trace_path = tmp_path / "trace.json"
        assert main([
            "trace", "export", "--journal", str(journal_path), "-o", str(trace_path),
        ]) == 0
        assert "open in ui.perfetto.dev" in capsys.readouterr().err
        trace = json.loads(trace_path.read_text())
        assert jrnl.validate_trace(trace) == []
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_export_overlays_telemetry(self, quick_config, tmp_path, capsys):
        journal_path = tmp_path / "run.jsonl"
        telemetry_path = tmp_path / "telemetry.json"
        assert main([
            "campaign", "--journal", str(journal_path),
            "--telemetry", str(telemetry_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "trace", "export",
            "--journal", str(journal_path),
            "--telemetry", str(telemetry_path),
        ]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert jrnl.validate_trace(trace) == []
        categories = {e.get("cat") for e in trace["traceEvents"]}
        assert {"job", "telemetry"} <= categories

    def test_run_command_takes_journal(self, tmp_path, capsys):
        journal_path = tmp_path / "run.jsonl"
        assert main(["run", "capability", "--journal", str(journal_path)]) == 0
        capsys.readouterr()
        state = jrnl.replay_journal(journal_path)
        assert state.complete and state.stop_status == "ok"
        assert main(["journal", "validate", str(journal_path)]) == 0


class TestInspectionVerbs:
    def test_missing_journal_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["watch", missing, "--once"]) == 1
        assert main(["tail", missing]) == 1
        assert main(["journal", "report", missing]) == 1
        errors = capsys.readouterr().err
        assert errors.count(f"no journal at {missing}") == 3

    def test_trace_export_needs_an_input(self, capsys):
        assert main(["trace", "export"]) == 1
        assert "needs --journal and/or --telemetry" in capsys.readouterr().err

    def test_legacy_trace_input_still_works(self, tmp_path):
        with pytest.raises(SystemExit):
            # `tgi trace --input` (pre-export syntax) must still parse.
            build_parser().parse_args(["trace", "--input"])  # missing value
        args = build_parser().parse_args(["trace", "--input", "t.json"])
        assert getattr(args, "trace_command", None) is None

    def test_watch_exit_code_flags_bad_run(self, tmp_path, capsys):
        path = _synthetic_journal(tmp_path / "bad.jsonl", status="failed")
        assert main(["watch", str(path), "--once"]) == 3
        assert "run finished: status=failed" in capsys.readouterr().out

    def test_report_fail_on_anomaly_gates(self, tmp_path, capsys):
        path = _synthetic_journal(
            tmp_path / "slow.jsonl", walls=(1.0, 1.0, 1.1, 0.9, 30.0)
        )
        assert main(["journal", "report", str(path)]) == 0
        assert "[straggler] j4" in capsys.readouterr().out
        assert main([
            "journal", "report", str(path), "--fail-on-anomaly",
        ]) == 1
        # threshold flags pass through: an absurd z silences the straggler
        assert main([
            "journal", "report", str(path),
            "--fail-on-anomaly", "--straggler-z", "1e9",
        ]) == 0
        capsys.readouterr()

    def test_validate_flags_schema_violations(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        _synthetic_journal(path)
        with open(path, "a") as handle:
            handle.write('{"event": "job.vanished"}\n')
            handle.write("not json at all\n")
        assert main(["journal", "validate", str(path)]) == 1
        captured = capsys.readouterr()
        assert "unknown event type" in captured.out
        assert "1 malformed line(s)" in captured.err
        assert "validation failed" in captured.err

    def test_tail_follow_times_out_on_stalled_run(self, tmp_path, capsys):
        path = tmp_path / "stalled.jsonl"
        writer = jrnl.JournalWriter(path, label="stall")
        writer.emit(
            "run.start", label="stall", jobs=1, workers=1,
            retries_allowed=0, keep_going=False, cache_enabled=False,
        )
        writer.close()  # no run.stop: the run is (apparently) hung
        assert main([
            "tail", str(path), "-f", "--interval", "0.05", "--timeout", "0.2",
        ]) == 0
        captured = capsys.readouterr()
        assert "run.start" in captured.out
        assert "gave up" in captured.err

    def test_watch_timeout_reports_in_flight(self, tmp_path, capsys):
        path = tmp_path / "stalled.jsonl"
        writer = jrnl.JournalWriter(path, label="stall")
        writer.emit(
            "run.start", label="stall", jobs=2, workers=1,
            retries_allowed=0, keep_going=False, cache_enabled=False,
        )
        writer.emit("job.scheduled", job="j0", key="k0", index=0)
        writer.emit("job.started", job="j0", attempt=0)
        writer.close()
        assert main([
            "watch", str(path), "--interval", "0.05", "--timeout", "0.2",
        ]) == 0
        captured = capsys.readouterr()
        assert "run still in flight" in captured.err
        assert "running 1" in captured.out


class TestLiveWatch:
    """The acceptance criterion: watch a run owned by another process."""

    CAMPAIGN_SCRIPT = textwrap.dedent(
        """
        import dataclasses, sys
        from repro.campaign import CampaignRunner
        from repro.campaign.jobs import CampaignJob, ClusterRef
        from repro.experiments import PAPER_CONFIG

        config = dataclasses.replace(
            PAPER_CONFIG, core_counts=(16,), hpl_problem_size=2240,
            hpl_rounds=1, stream_target_seconds=2, iozone_target_seconds=2,
        )
        jobs = [
            CampaignJob(
                job_id=f"live{i}",
                cluster=ClusterRef(kind="preset", name="fire", num_nodes=2),
                core_counts=(16,),
                seed=i,
                config=config,
            )
            for i in range(3)
        ]
        CampaignRunner(journal=sys.argv[1]).run(jobs, label="live-watch")
        """
    )

    def test_watch_follows_other_process(self, tmp_path, capsys):
        journal_path = tmp_path / "live.jsonl"
        script = tmp_path / "campaign_script.py"
        script.write_text(self.CAMPAIGN_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            # Wait for the campaign process to create the journal, then
            # follow it from *this* process until its run.stop arrives.
            deadline = time.monotonic() + 60
            while not journal_path.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert journal_path.exists(), "campaign process never started a journal"
            assert main([
                "watch", str(journal_path), "--interval", "0.1", "--timeout", "120",
            ]) == 0
        finally:
            stderr = proc.communicate(timeout=120)[1]
        assert proc.returncode == 0, stderr.decode()
        out = capsys.readouterr().out
        frames = out.count("run live-watch")
        assert frames >= 1
        assert "run finished: status=ok" in out
        assert "3/3 jobs" in out
        # and the recorded journal replays to the completed state
        state = jrnl.replay_journal(journal_path)
        assert state.complete and len(state.jobs) == 3
