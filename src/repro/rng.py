"""Seeded random-number plumbing.

Every stochastic element in the library (meter noise, jitter models) draws
from a :class:`numpy.random.Generator` passed explicitly or derived from a
seed, so that simulated measurements are bit-reproducible across runs and
platforms.  Nothing in the library touches the global NumPy random state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "child_rng", "DEFAULT_SEED"]

#: Seed used when the caller does not care about the specific stream.
DEFAULT_SEED = 0x7161

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` maps to a generator seeded with :data:`DEFAULT_SEED` (so that
    "unseeded" library use is still deterministic); an ``int`` seeds a fresh
    generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng).__name__}")


def child_rng(rng: RandomState, stream: str) -> np.random.Generator:
    """Derive an independent, named child generator.

    Used to give each simulated meter / noise source its own stream so that
    adding one more stochastic component does not perturb the draws of the
    others (important when comparing ablations run-to-run).
    """
    parent = ensure_rng(rng)
    key = _stable_key(stream)
    seed = parent.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(seed), int(key)])


def _stable_key(stream: str) -> int:
    """Platform-stable 63-bit hash of ``stream`` (Python's hash is salted)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in stream.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return h
