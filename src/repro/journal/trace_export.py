"""Chrome trace-event / Perfetto export of journals and span dumps.

``tgi trace export --format chrome`` converts a campaign journal (and,
optionally, a ``--telemetry`` JSON export) into the Chrome trace-event
format — the JSON object form with a ``traceEvents`` array — which
``ui.perfetto.dev`` and ``chrome://tracing`` both open directly.

Clock alignment: journal events carry ``t_unix`` (UTC wall clock) and
telemetry spans carry per-session relative times plus the session's
``epoch_unix``; both are projected onto one microsecond timeline and
shifted so the earliest event sits at ts=0 (the absolute origin is kept
in ``otherData.origin_unix``).  Attempts become complete ("X") slices per
job, faults and cache hits become instants ("i"), and every emitting
process gets a metadata ("M") name row.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..exceptions import JournalError

__all__ = [
    "TRACE_FORMATS",
    "chrome_trace",
    "journal_trace_events",
    "telemetry_trace_events",
    "validate_trace",
]

#: Export formats ``tgi trace export`` understands.
TRACE_FORMATS = ("chrome",)

#: Phases of the trace-event spec this exporter emits.
_PHASES = ("X", "i", "M")


def _us(t_unix: float) -> float:
    return t_unix * 1e6


def journal_trace_events(events: Sequence[Dict]) -> List[Dict]:
    """Trace events (absolute-µs timestamps) for one journal's events.

    Per-attempt slices are built by pairing each ``job.started`` with the
    first later terminal record for that attempt (``job.attempt_failed``
    or ``job.completed``); an attempt still open when the journal ends
    (crash, live run) becomes a zero-duration slice flagged
    ``args.open=true`` rather than being dropped — visibility over
    tidiness for a flight recorder.
    """
    out: List[Dict] = []
    processes: Dict[int, str] = {}
    open_attempts: Dict[tuple, Dict] = {}

    def _slice(start_event: Dict, *, dur_us: float, done: bool, **args: object) -> Dict:
        attempt = start_event.get("attempt", 0)
        pid = start_event.get("pid", 0)
        record = {
            "name": f"{start_event.get('job', '?')} (attempt {attempt})",
            "cat": "job",
            "ph": "X",
            "ts": _us(start_event.get("t_unix", 0.0)),
            "dur": max(0.0, dur_us),
            "pid": pid,
            "tid": pid,
            "args": {"job": start_event.get("job"), "attempt": attempt, **args},
        }
        if not done:
            record["args"]["open"] = True
        return record

    for event in events:
        kind = event.get("event")
        pid = event.get("pid", 0)
        processes.setdefault(pid, event.get("process", f"pid-{pid}"))
        if kind == "job.started":
            open_attempts[(event.get("job"), event.get("attempt", 0))] = event
        elif kind in ("job.attempt_failed", "job.completed"):
            if kind == "job.completed":
                attempt = int(event.get("attempts", 1)) - 1
            else:
                attempt = event.get("attempt", 0)
            start = open_attempts.pop((event.get("job"), attempt), None)
            if start is not None:
                dur = _us(event.get("t_unix", 0.0)) - _us(start.get("t_unix", 0.0))
                extra = (
                    {"error": event.get("error_type")}
                    if kind == "job.attempt_failed"
                    else {"wall_s": event.get("wall_s")}
                )
                out.append(_slice(start, dur_us=dur, done=True, **extra))
        elif kind in ("job.cache_hit", "fault.injected", "job.retried"):
            out.append(
                {
                    "name": kind,
                    "cat": "journal",
                    "ph": "i",
                    "s": "g",
                    "ts": _us(event.get("t_unix", 0.0)),
                    "pid": pid,
                    "tid": pid,
                    "args": {
                        k: event[k]
                        for k in ("job", "key", "kind", "scope", "attempt", "delay_s")
                        if k in event
                    },
                }
            )
        elif kind in ("run.start", "run.stop"):
            out.append(
                {
                    "name": kind,
                    "cat": "run",
                    "ph": "i",
                    "s": "g",
                    "ts": _us(event.get("t_unix", 0.0)),
                    "pid": pid,
                    "tid": pid,
                    "args": {
                        k: event[k]
                        for k in ("label", "jobs", "workers", "status", "jobs_failed")
                        if k in event
                    },
                }
            )
    # Attempts never closed: emit them as open slices at their start time.
    for start in open_attempts.values():
        out.append(_slice(start, dur_us=0.0, done=False))
    for pid, process in sorted(processes.items()):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": pid,
                "args": {"name": process},
            }
        )
    return out


def telemetry_trace_events(export: Dict) -> List[Dict]:
    """Trace events for a telemetry JSON export (``--telemetry`` files).

    Spans are relative to the session's monotonic epoch; ``epoch_unix``
    places them on the same absolute timeline the journal uses.
    """
    epoch_unix = float(export.get("epoch_unix", 0.0))
    out: List[Dict] = []
    processes = set()
    for span in export.get("spans", []):
        t_end = span.get("t_end")
        if t_end is None:  # still open when the session exported
            continue
        process = span.get("process", "main")
        processes.add(process)
        attrs = {
            k: v for k, v in dict(span.get("attrs", {})).items() if not isinstance(v, (list, dict))
        }
        out.append(
            {
                "name": span.get("name", "span"),
                "cat": "telemetry",
                "ph": "X",
                "ts": _us(epoch_unix + float(span.get("t_start", 0.0))),
                "dur": max(0.0, (float(t_end) - float(span.get("t_start", 0.0))) * 1e6),
                # Span dumps tag processes by name, not pid; hash the tag
                # into a stable synthetic pid so rows group per process.
                "pid": _process_pid(process),
                "tid": _process_pid(process),
                "args": attrs,
            }
        )
    for process in sorted(processes):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": _process_pid(process),
                "tid": _process_pid(process),
                "args": {"name": f"telemetry:{process}"},
            }
        )
    return out


def _process_pid(process: str) -> int:
    """Stable synthetic pid for a telemetry process tag."""
    if process.startswith("worker-"):
        suffix = process.rsplit("-", 1)[-1]
        if suffix.isdigit():
            return int(suffix)
    # Deterministic small hash (not Python's salted hash()).
    acc = 0
    for ch in process:
        acc = (acc * 31 + ord(ch)) % 1_000_000
    return 1_000_000 + acc


def chrome_trace(
    journal_events: Optional[Sequence[Dict]] = None,
    telemetry_export: Optional[Dict] = None,
) -> Dict:
    """Build a complete Chrome trace-event JSON object.

    Either source may be omitted; providing both overlays campaign
    lifecycle slices and telemetry spans on one timeline.
    """
    if journal_events is None and telemetry_export is None:
        raise JournalError("trace export needs a journal, a telemetry export, or both")
    trace_events: List[Dict] = []
    if journal_events is not None:
        trace_events.extend(journal_trace_events(journal_events))
    if telemetry_export is not None:
        trace_events.extend(telemetry_trace_events(telemetry_export))
    timed = [e for e in trace_events if e["ph"] != "M" and e["ts"] > 0]
    origin = min((e["ts"] for e in timed), default=0.0)
    for event in trace_events:
        if event["ph"] != "M":
            event["ts"] = max(0.0, event["ts"] - origin)
    trace_events.sort(key=lambda e: (e["ph"] == "M", e["ts"]))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.journal.trace_export",
            "origin_unix": origin / 1e6,
        },
    }


def validate_trace(trace: Dict) -> List[str]:
    """Check a trace object against the trace-event schema we rely on."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: ph must be one of {_PHASES}, got {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant scope s must be g/p/t")
    return problems
