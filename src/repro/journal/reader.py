"""Journal reading: torn-tail-tolerant parsing, live following, replay.

The journal is append-only JSONL, so reading it back is mostly
``json.loads`` per line — with two deliberate tolerances:

* **Torn final line.**  A crash (or a reader racing the writer) can leave
  the last line incomplete.  Any trailing bytes without a terminating
  newline are treated as a torn tail and dropped; every complete line
  before them parses.  The property test truncates journals at *every*
  byte offset to pin this.
* **Unordered events.**  Pool workers append concurrently with the
  parent, so file order is arrival order, not logical order.
  :func:`replay` reconstructs per-job state from event *content* (job
  ids, attempt numbers, terminal types), never from line position.

:func:`replay` is the load-bearing piece: it folds a stream of events
into a :class:`RunState` whose per-job attempt/outcome records match what
the campaign manifest says happened — the substrate
:class:`repro.campaign.scheduler.ShardedCampaignScheduler` replays on
``--resume`` before re-scheduling the remainder.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..exceptions import JournalError
from .events import JOURNAL_VERSION, validate_event

__all__ = [
    "ScanResult",
    "scan_journal",
    "read_events",
    "validate_events",
    "journal_digest",
    "JournalFollower",
    "JobState",
    "RunState",
    "apply_event",
    "replay",
    "replay_journal",
    "attempt_table",
]


@dataclass
class ScanResult:
    """What a full parse of one journal file found."""

    events: List[Dict]
    torn_tail: bool = False
    malformed: int = 0


def _parse_lines(data: bytes, *, strict: bool = False) -> ScanResult:
    """Split raw journal bytes into parsed events (see module docstring)."""
    events: List[Dict] = []
    malformed = 0
    torn = False
    segments = data.split(b"\n")
    # A file ending in "\n" yields a final empty segment; anything else in
    # the final slot is a torn tail (complete lines always end in "\n").
    tail = segments.pop() if segments else b""
    if tail:
        torn = True
    for lineno, raw in enumerate(segments, start=1):
        if not raw.strip():
            continue
        try:
            event = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if strict:
                raise JournalError(f"journal line {lineno}: {exc}") from None
            malformed += 1
            continue
        if not isinstance(event, dict):
            if strict:
                raise JournalError(
                    f"journal line {lineno}: expected an object, got "
                    f"{type(event).__name__}"
                )
            malformed += 1
            continue
        events.append(event)
    return ScanResult(events=events, torn_tail=torn, malformed=malformed)


def scan_journal(path: Union[str, Path], *, strict: bool = False) -> ScanResult:
    """Parse a journal file, reporting torn tails and malformed lines."""
    return _parse_lines(Path(path).read_bytes(), strict=strict)


def read_events(path: Union[str, Path], *, strict: bool = False) -> List[Dict]:
    """All complete events of a journal file, in file (arrival) order."""
    return scan_journal(path, strict=strict).events


def journal_digest(path: Union[str, Path]) -> str:
    """SHA-256 over the journal file's bytes (the manifest's digest)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def validate_events(events: Iterable[Dict]) -> List[str]:
    """Schema-check a stream of events; returns ``line: problem`` strings."""
    problems: List[str] = []
    for index, event in enumerate(events, start=1):
        for problem in validate_event(event):
            problems.append(f"event {index} ({event.get('event')!r}): {problem}")
    return problems


class JournalFollower:
    """Incremental reader for a journal still being written.

    Remembers the byte offset of the last *complete* line consumed;
    each :meth:`poll` picks up everything appended since.  The file may
    not exist yet (the campaign process might still be starting) — that
    polls as "no new events", not an error.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> List[Dict]:
        """Newly appended complete events since the last poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        complete_len = data.rfind(b"\n") + 1  # 0 when no full line arrived
        if complete_len == 0:
            return []
        self._offset += complete_len
        return _parse_lines(data[:complete_len]).events


# Replay ----------------------------------------------------------------

#: Job statuses a replayed :class:`JobState` can be in.
JOB_STATES = ("scheduled", "running", "retrying", "completed", "failed", "cached")


@dataclass
class JobState:
    """Everything the journal knows about one job."""

    job_id: str
    key: str = ""
    index: int = -1
    status: str = "scheduled"
    attempts: int = 0
    started_t_mono: Optional[float] = None
    finished_t_mono: Optional[float] = None
    wall_s: float = 0.0
    cpu_user_s: Optional[float] = None
    cpu_system_s: Optional[float] = None
    max_rss_bytes: Optional[int] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    cache_hit_attempt: Optional[int] = None
    pid: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("completed", "failed", "cached")

    def running_for(self, now_mono: float) -> float:
        """Seconds this job has been executing as of ``now_mono``."""
        if self.started_t_mono is None or self.terminal:
            return 0.0
        return max(0.0, now_mono - self.started_t_mono)


@dataclass
class RunState:
    """A whole run folded out of its journal events."""

    run_id: str = ""
    label: str = ""
    jobs_expected: int = 0
    workers: int = 0
    retries_allowed: int = 0
    keep_going: bool = False
    cache_enabled: bool = False
    started: bool = False
    start_t_mono: Optional[float] = None
    start_t_unix: Optional[float] = None
    stopped: bool = False
    stop_status: Optional[str] = None
    stop_t_mono: Optional[float] = None
    total_wall_s: Optional[float] = None
    jobs: Dict[str, JobState] = field(default_factory=dict)
    faults: List[Dict] = field(default_factory=list)
    heartbeats: List[Dict] = field(default_factory=list)
    resumes: int = 0
    shards: List[Dict] = field(default_factory=list)
    last_t_mono: Optional[float] = None
    events_seen: int = 0

    def job(self, job_id: str) -> JobState:
        state = self.jobs.get(job_id)
        if state is None:
            state = self.jobs[job_id] = JobState(job_id=job_id)
        return state

    @property
    def complete(self) -> bool:
        """Whether the run recorded a terminal ``run.stop``."""
        return self.stopped

    def by_status(self, status: str) -> List[JobState]:
        if status not in JOB_STATES:
            raise JournalError(f"unknown job status {status!r}; known: {JOB_STATES}")
        return [s for s in self.jobs.values() if s.status == status]


def _apply(state: RunState, event: Dict) -> None:
    kind = event.get("event")
    t_mono = event.get("t_mono")
    if isinstance(t_mono, (int, float)):
        state.last_t_mono = (
            t_mono if state.last_t_mono is None else max(state.last_t_mono, t_mono)
        )
    state.events_seen += 1
    if kind == "run.start":
        state.run_id = event.get("run_id", state.run_id)
        state.label = event.get("label", "")
        state.jobs_expected = event.get("jobs", 0)
        state.workers = event.get("workers", 0)
        state.retries_allowed = event.get("retries_allowed", 0)
        state.keep_going = bool(event.get("keep_going", False))
        state.cache_enabled = bool(event.get("cache_enabled", False))
        state.started = True
        state.start_t_mono = event.get("t_mono")
        state.start_t_unix = event.get("t_unix")
        return
    if kind == "run.stop":
        state.stopped = True
        state.stop_status = event.get("status")
        state.stop_t_mono = event.get("t_mono")
        state.total_wall_s = event.get("total_wall_s")
        return
    if kind == "run.resumed":
        # A resumed run extends the same file under the same run_id; the
        # counter lets replay distinguish "resumed N times" from "ran once".
        state.resumes += 1
        return
    if kind == "shard.planned":
        state.shards.append(event)
        return
    if kind == "fault.injected":
        state.faults.append(event)
        return
    if kind == "worker.heartbeat":
        state.heartbeats.append(event)
        return
    job_id = event.get("job")
    if not isinstance(job_id, str):
        return  # not a job event (or malformed enough to ignore)
    job = state.job(job_id)
    if kind == "job.scheduled":
        job.key = event.get("key", job.key)
        job.index = event.get("index", job.index)
    elif kind == "job.cache_hit":
        job.key = event.get("key", job.key)
        job.status = "cached"
        job.cache_hit_attempt = event.get("attempt")
        job.finished_t_mono = event.get("t_mono")
    elif kind == "job.started":
        attempt = event.get("attempt", 0)
        job.attempts = max(job.attempts, int(attempt) + 1)
        if not job.terminal:
            job.status = "running"
        # Each attempt restarts the running-clock (retries included).
        job.started_t_mono = event.get("t_mono")
        job.pid = event.get("pid")
    elif kind == "job.attempt_failed":
        attempt = event.get("attempt", 0)
        job.attempts = max(job.attempts, int(attempt) + 1)
        if not job.terminal:
            job.status = "retrying"
        job.error_type = event.get("error_type")
        job.error_message = event.get("error_message")
    elif kind == "job.retried":
        if not job.terminal:
            job.status = "retrying"
    elif kind == "job.stored":
        # Cache-publication bookkeeping: records the key (useful when the
        # scheduled event raced) without touching job status.
        job.key = event.get("key", job.key)
    elif kind == "job.completed":
        job.status = "completed"
        job.attempts = max(job.attempts, int(event.get("attempts", job.attempts)))
        job.wall_s = float(event.get("wall_s", 0.0))
        job.cpu_user_s = event.get("cpu_user_s")
        job.cpu_system_s = event.get("cpu_system_s")
        job.max_rss_bytes = event.get("max_rss_bytes")
        job.finished_t_mono = event.get("t_mono")
        job.error_type = None
        job.error_message = None
    elif kind == "job.failed":
        job.status = "failed"
        job.attempts = max(job.attempts, int(event.get("attempts", job.attempts)))
        job.error_type = event.get("error_type")
        job.error_message = event.get("error_message")
        job.finished_t_mono = event.get("t_mono")


#: Public fold step: ``tgi watch`` applies polled events incrementally.
apply_event = _apply


def replay(events: Iterable[Dict]) -> RunState:
    """Fold events into a :class:`RunState` (content-driven, order-robust)."""
    state = RunState()
    for event in events:
        _apply(state, event)
    return state


def replay_journal(path: Union[str, Path]) -> RunState:
    """Read and replay one journal file (torn tails tolerated)."""
    return replay(read_events(path))


def attempt_table(state: RunState) -> Dict[str, Dict[str, object]]:
    """Per-job attempt/outcome rows in the manifest's vocabulary.

    Maps each job to ``{"status", "cache_status", "attempts"}`` exactly as
    :meth:`repro.campaign.runner.CampaignRunner` records them, so a
    journal replay can be diffed against the manifest row-for-row — the
    crash-recovery contract the test tier pins.
    """
    table: Dict[str, Dict[str, object]] = {}
    for job_id, job in state.jobs.items():
        if job.status == "cached":
            row = {"status": "ok", "cache_status": "hit", "attempts": 0}
        elif job.status == "completed":
            row = {
                "status": "ok",
                "cache_status": "computed" if state.cache_enabled else "uncached",
                "attempts": job.attempts,
            }
        elif job.status == "failed":
            row = {"status": "failed", "cache_status": "failed", "attempts": job.attempts}
        else:  # in flight: scheduled/running/retrying
            row = {"status": job.status, "cache_status": None, "attempts": job.attempts}
        table[job_id] = row
    return table


# Re-exported for convenience alongside the version constant.
JOURNAL_READER_VERSION = JOURNAL_VERSION
