"""Append-only, crash-safe journal writing.

A :class:`JournalWriter` appends schema-validated events to one JSONL
file.  Each event is serialized to a single line and written with a single
``os.write`` on a file descriptor opened ``O_APPEND`` — on POSIX that
append is atomic for lines of this size, so the campaign parent and every
pool worker write to the *same* file concurrently without interleaving
partial lines.  A reader following the file therefore sees complete
events, live, while the run is still in flight; a crash can tear at most
the final line, which the reader drops (see :mod:`repro.journal.reader`).

The ambient API mirrors :mod:`repro.telemetry`: deeply nested code (the
fault injector, the simulation substrate) calls the module-level
:func:`emit`, which no-ops unless a writer has been :func:`attach`\\ ed.
The disabled path is one global ``None`` check.

Finalization writes the terminal ``run.stop`` event, closes the
descriptor, and persists a small sidecar summary
(``<journal>.summary.json``: run id, event count, content digest, terminal
status) through the same atomic write-temp + ``os.replace`` helper the
manifest uses — a half-written summary can never shadow a good one.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..exceptions import JournalError
from .events import JOURNAL_VERSION, check_event

__all__ = [
    "JournalWriter",
    "CrashingJournalWriter",
    "SimulatedCrash",
    "new_run_id",
    "rusage_fields",
    "rusage_delta",
    "attach",
    "detach",
    "ambient",
    "journaling",
    "emit",
    "use_writer",
]

try:  # POSIX only; Windows ships without it.
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only on Windows
    _resource = None


def new_run_id(label: str = "run") -> str:
    """A human-scannable, collision-safe run identifier.

    ``<label>-<utcstamp>-<pid>``: unique across processes on one host and
    across restarts of one campaign; never parsed, only matched.
    """
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S%f")
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in label) or "run"
    return f"{safe}-{stamp}-{os.getpid()}"


def rusage_fields() -> Dict[str, object]:
    """CPU time and peak RSS of this process, journal-field shaped.

    Measured via ``resource.getrusage(RUSAGE_SELF)``; on platforms without
    the ``resource`` module all three fields are ``None`` (the schema
    allows it), so journals stay portable.  ``ru_maxrss`` is kilobytes on
    Linux and bytes on macOS — normalized to bytes here.
    """
    if _resource is None:  # pragma: no cover - Windows
        return {"cpu_user_s": None, "cpu_system_s": None, "max_rss_bytes": None}
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    scale = 1 if sys.platform == "darwin" else 1024
    return {
        "cpu_user_s": usage.ru_utime,
        "cpu_system_s": usage.ru_stime,
        "max_rss_bytes": int(usage.ru_maxrss) * scale,
    }


def rusage_delta(start: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Per-job resource accounting relative to a :func:`rusage_fields` snapshot.

    ``getrusage(RUSAGE_SELF)`` counters are process-cumulative, so a reused
    pool worker's Nth job would otherwise inherit the CPU seconds of the
    N-1 jobs before it.  CPU user/system time is therefore differenced
    against the ``start`` snapshot taken when the attempt began.
    ``max_rss_bytes`` is a process-lifetime high-water mark — a peak cannot
    be meaningfully differenced — and is reported as the absolute peak so
    far (see the ``job.completed`` taxonomy entry).

    Passing ``start=None`` (or a snapshot from a platform without the
    ``resource`` module) degrades to the cumulative :func:`rusage_fields`.
    """
    end = rusage_fields()
    if (
        start is None
        or end.get("cpu_user_s") is None
        or start.get("cpu_user_s") is None
    ):
        return end
    return {
        "cpu_user_s": max(0.0, float(end["cpu_user_s"]) - float(start["cpu_user_s"])),
        "cpu_system_s": max(
            0.0, float(end["cpu_system_s"]) - float(start["cpu_system_s"])
        ),
        "max_rss_bytes": end["max_rss_bytes"],
    }


class JournalWriter:
    """Appends validated events to one journal file (see module docstring).

    Parameters
    ----------
    path:
        The JSONL file to append to (created if missing; an existing file
        is extended, which is how resumed runs will share one journal).
    run_id:
        Identifier stamped on every event; generated from ``label`` when
        omitted.
    process:
        Role tag (``"main"`` in the campaign parent, ``"worker-<pid>"``
        in pool workers).
    label:
        Seed for the generated run id.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        run_id: Optional[str] = None,
        process: str = "main",
        label: str = "run",
    ):
        self.path = Path(path)
        self.run_id = run_id or new_run_id(label)
        self.process = process
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )
        self._lock = threading.Lock()
        self.events_written = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._fd is None

    def emit(self, event: str, **fields: object) -> Dict:
        """Validate and append one event; returns the full record."""
        if self._fd is None:
            raise JournalError(f"journal {self.path} is closed")
        now_unix = time.time()
        record: Dict[str, object] = {
            "v": JOURNAL_VERSION,
            "event": event,
            "run_id": self.run_id,
            "t_mono": time.perf_counter(),
            "t_unix": now_unix,
            "t_utc": datetime.fromtimestamp(now_unix, tz=timezone.utc)
            .isoformat()
            .replace("+00:00", "Z"),
            "pid": os.getpid(),
            "process": self.process,
        }
        record.update(fields)
        check_event(record)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            os.write(self._fd, line.encode("utf-8"))
            self.events_written += 1
        return record

    def close(self) -> None:
        """Close the descriptor (idempotent); emits nothing."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def finalize(
        self,
        *,
        status: str = "ok",
        jobs_failed: int = 0,
        total_wall_s: float = 0.0,
        summary: bool = True,
    ) -> Optional[Dict]:
        """Write ``run.stop``, close the file, persist the sidecar summary.

        Returns the summary dict (``None`` with ``summary=False``).  The
        sidecar lands at ``<journal>.summary.json`` via the shared
        :func:`repro.serialization.atomic_write_text` helper — the same
        atomic write the manifest uses, by design, not by duplication.
        """
        self.emit(
            "run.stop",
            status=status,
            jobs_failed=jobs_failed,
            total_wall_s=float(total_wall_s),
        )
        self.close()
        if not summary:
            return None
        # Imported lazily: serialization pulls in the result-object stack,
        # which must stay importable before the journal package is.
        from ..serialization import atomic_write_text

        # Count and digest the *file*, not this writer: pool workers append
        # their events through their own handles, so the file holds more
        # than events_written.
        data = self.path.read_bytes()
        summary_data = {
            "journal_version": JOURNAL_VERSION,
            "run_id": self.run_id,
            "path": self.path.name,
            "events": data.count(b"\n"),
            "status": status,
            "jobs_failed": jobs_failed,
            "total_wall_s": float(total_wall_s),
            "sha256": hashlib.sha256(data).hexdigest(),
        }
        atomic_write_text(
            self.path.with_name(self.path.name + ".summary.json"),
            json.dumps(summary_data, indent=2, sort_keys=True) + "\n",
        )
        return summary_data

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.events_written} events"
        return f"JournalWriter({str(self.path)!r}, run_id={self.run_id!r}, {state})"


class SimulatedCrash(BaseException):
    """Raised by :class:`CrashingJournalWriter` once its budget is spent.

    Deliberately a ``BaseException``: it models the *process* dying
    (kill -9, OOM, node loss), not a job failing, so the campaign
    layer's per-job ``except Exception`` containment must not absorb it.
    """


class CrashingJournalWriter(JournalWriter):
    """Drill writer that dies after the Nth event lands on disk.

    The fatal event *is* written before :class:`SimulatedCrash` is raised
    — exactly the guarantee a real ``O_APPEND`` write plus ``kill -9``
    gives — so driving a campaign with ``crash_after=k`` for every ``k``
    enumerates every possible journal prefix a crash could leave behind.
    Used by the resume drills (tests and CI); not part of production flow.
    """

    def __init__(self, path, *, crash_after: int, **kwargs):
        super().__init__(path, **kwargs)
        self.crash_after = int(crash_after)

    def emit(self, event: str, **fields: object) -> Dict:
        record = super().emit(event, **fields)
        if self.events_written >= self.crash_after:
            self.close()
            raise SimulatedCrash(
                f"simulated crash after {self.events_written} events (last: {event})"
            )
        return record


# Ambient writer --------------------------------------------------------

_AMBIENT: Optional[JournalWriter] = None


def ambient() -> Optional[JournalWriter]:
    """The ambient journal writer, or ``None`` when journaling is off."""
    return _AMBIENT


def journaling() -> bool:
    """Whether an ambient journal writer is attached."""
    return _AMBIENT is not None


def attach(writer: JournalWriter) -> JournalWriter:
    """Install ``writer`` as the ambient journal (one at a time)."""
    global _AMBIENT
    if _AMBIENT is not None:
        raise JournalError("a journal writer is already attached")
    _AMBIENT = writer
    return writer


def detach() -> None:
    """Remove the ambient writer (no-op when none is attached)."""
    global _AMBIENT
    _AMBIENT = None


def emit(event: str, **fields: object) -> Optional[Dict]:
    """Emit through the ambient writer; no-op (``None``) when detached."""
    writer = _AMBIENT
    if writer is None:
        return None
    return writer.emit(event, **fields)


@contextmanager
def use_writer(writer: JournalWriter) -> Iterator[JournalWriter]:
    """Attach ``writer`` for the duration of the block (does not close it)."""
    attach(writer)
    try:
        yield writer
    finally:
        detach()
