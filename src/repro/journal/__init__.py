"""The campaign flight recorder: an append-only, crash-safe run journal.

Every journaled campaign run appends schema-versioned JSONL events —
run/job lifecycle, retries, cache hits, worker heartbeats, per-job
resource accounting, injected faults — to one file that the parent and
all pool workers share via atomic ``O_APPEND`` line writes.  Consumers:

:mod:`~repro.journal.writer`
    :class:`JournalWriter` plus the ambient :func:`emit` API (zero-cost
    when no writer is attached, mirroring :mod:`repro.telemetry`).
:mod:`~repro.journal.reader`
    Torn-tail-tolerant parsing, the :class:`JournalFollower` used by
    ``tgi watch`` to tail in-flight runs, and :func:`replay` — exact
    per-job attempt-state reconstruction, the substrate for crash-resume.
:mod:`~repro.journal.progress`
    Live progress snapshots (done/running/failed/cached, throughput,
    ETA, slowest-running watchlist).
:mod:`~repro.journal.trace_export`
    Chrome trace-event / Perfetto export of journals and telemetry span
    dumps on one aligned timeline.
:mod:`~repro.journal.report`
    Post-run anomaly flagging: stragglers, retry storms, cache-hit-rate
    collapse.

See ``docs/observability.md`` for the event taxonomy and CLI verbs.
"""

from .events import (
    EVENT_TYPES,
    JOURNAL_VERSION,
    RUN_STATUSES,
    check_event,
    validate_event,
)
from .progress import (
    RunProgress,
    now_mono,
    progress_from_state,
    progress_to_dict,
    render_progress,
)
from .reader import (
    JobState,
    JournalFollower,
    RunState,
    ScanResult,
    apply_event,
    attempt_table,
    journal_digest,
    read_events,
    replay,
    replay_journal,
    scan_journal,
    validate_events,
)
from .report import (
    Anomaly,
    JournalReport,
    analyze_state,
    render_report,
    report_to_dict,
)
from .trace_export import (
    TRACE_FORMATS,
    chrome_trace,
    journal_trace_events,
    telemetry_trace_events,
    validate_trace,
)
from .writer import (
    CrashingJournalWriter,
    JournalWriter,
    SimulatedCrash,
    ambient,
    attach,
    detach,
    emit,
    journaling,
    new_run_id,
    rusage_delta,
    rusage_fields,
    use_writer,
)

__all__ = [
    "JOURNAL_VERSION",
    "EVENT_TYPES",
    "RUN_STATUSES",
    "validate_event",
    "check_event",
    "JournalWriter",
    "CrashingJournalWriter",
    "SimulatedCrash",
    "new_run_id",
    "rusage_fields",
    "rusage_delta",
    "attach",
    "detach",
    "ambient",
    "journaling",
    "emit",
    "use_writer",
    "ScanResult",
    "scan_journal",
    "read_events",
    "validate_events",
    "journal_digest",
    "JournalFollower",
    "JobState",
    "RunState",
    "apply_event",
    "replay",
    "replay_journal",
    "attempt_table",
    "RunProgress",
    "progress_from_state",
    "progress_to_dict",
    "render_progress",
    "now_mono",
    "Anomaly",
    "JournalReport",
    "analyze_state",
    "render_report",
    "report_to_dict",
    "TRACE_FORMATS",
    "chrome_trace",
    "journal_trace_events",
    "telemetry_trace_events",
    "validate_trace",
]
