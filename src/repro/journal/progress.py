"""The live progress plane: run snapshots for ``tgi watch``.

A :class:`RunProgress` is a pure function of a replayed
:class:`~repro.journal.reader.RunState` plus "now" on the monotonic
clock — jobs done/running/failed/cached, retry pressure, throughput over
the elapsed window, a naive-but-honest ETA, and the slowest jobs still
executing (the straggler watchlist).  ``tgi watch`` recomputes it each
poll; tests compute it directly from fixture journals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .reader import RunState

__all__ = [
    "RunProgress",
    "progress_from_state",
    "progress_to_dict",
    "render_progress",
    "now_mono",
]


@dataclass
class RunProgress:
    """One snapshot of an (possibly in-flight) campaign run."""

    run_id: str
    label: str
    total: int
    done: int
    cached: int
    failed: int
    running: int
    retrying: int
    scheduled: int
    retries: int
    faults: int
    elapsed_s: float
    throughput_jobs_per_s: float
    eta_s: Optional[float]
    complete: bool
    status: Optional[str]
    slowest_running: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def finished_jobs(self) -> int:
        """Jobs in a terminal state (done + cached + failed)."""
        return self.done + self.cached + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.finished_jobs)


def progress_to_dict(progress: RunProgress) -> dict:
    """JSON-friendly form of a progress snapshot.

    The payload behind ``tgi journal summary --json`` — every dataclass
    field plus the derived ``finished_jobs``/``remaining`` counts, with
    ``slowest_running`` as ``{"job", "elapsed_s"}`` objects.
    """
    return {
        "run_id": progress.run_id,
        "label": progress.label,
        "total": progress.total,
        "done": progress.done,
        "cached": progress.cached,
        "failed": progress.failed,
        "running": progress.running,
        "retrying": progress.retrying,
        "scheduled": progress.scheduled,
        "retries": progress.retries,
        "faults": progress.faults,
        "elapsed_s": progress.elapsed_s,
        "throughput_jobs_per_s": progress.throughput_jobs_per_s,
        "eta_s": progress.eta_s,
        "complete": progress.complete,
        "status": progress.status,
        "finished_jobs": progress.finished_jobs,
        "remaining": progress.remaining,
        "slowest_running": [
            {"job": job, "elapsed_s": elapsed}
            for job, elapsed in progress.slowest_running
        ],
    }


def progress_from_state(
    state: RunState, *, now_mono: Optional[float] = None, slowest: int = 3
) -> RunProgress:
    """Snapshot ``state`` as of ``now_mono`` (defaults to the live clock).

    For a finished run pass ``now_mono=None``: elapsed falls back to the
    journal's own last timestamp, so snapshots of historical journals are
    reproducible instead of growing with wall-clock time.
    """
    done = len(state.by_status("completed"))
    cached = len(state.by_status("cached"))
    failed = len(state.by_status("failed"))
    running_jobs = state.by_status("running")
    retrying = len(state.by_status("retrying"))
    scheduled = len(state.by_status("scheduled"))
    total = state.jobs_expected or len(state.jobs)
    retries = sum(max(0, j.attempts - 1) for j in state.jobs.values())

    if state.complete or now_mono is None:
        now = state.stop_t_mono or state.last_t_mono or 0.0
    else:
        now = now_mono
    start = state.start_t_mono if state.start_t_mono is not None else now
    elapsed = max(0.0, now - start)

    executed = done + failed  # cache hits are free; they don't set the pace
    throughput = executed / elapsed if elapsed > 0 else 0.0
    remaining = max(0, total - (done + cached + failed))
    eta: Optional[float] = None
    if state.complete:
        eta = 0.0
    elif throughput > 0 and remaining:
        eta = remaining / throughput

    watchlist = sorted(
        ((j.job_id, j.running_for(now)) for j in running_jobs),
        key=lambda item: item[1],
        reverse=True,
    )[:slowest]

    return RunProgress(
        run_id=state.run_id,
        label=state.label,
        total=total,
        done=done,
        cached=cached,
        failed=failed,
        running=len(running_jobs),
        retrying=retrying,
        scheduled=scheduled,
        retries=retries,
        faults=len(state.faults),
        elapsed_s=elapsed,
        throughput_jobs_per_s=throughput,
        eta_s=eta,
        complete=state.complete,
        status=state.stop_status,
        slowest_running=watchlist,
    )


def _bar(fraction: float, width: int = 28) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "eta --"
    if eta_s >= 3600:
        return f"eta {eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"eta {eta_s / 60:.1f}m"
    return f"eta {eta_s:.0f}s"


def render_progress(progress: RunProgress) -> str:
    """Multi-line terminal rendering of one snapshot."""
    total = max(1, progress.total)
    fraction = progress.finished_jobs / total
    headline = (
        f"[{_bar(fraction)}] {progress.finished_jobs}/{progress.total} jobs "
        f"({100 * fraction:.0f}%)  {_fmt_eta(progress.eta_s)}"
    )
    counts = (
        f"done {progress.done}  cached {progress.cached}  "
        f"failed {progress.failed}  running {progress.running}  "
        f"retrying {progress.retrying}  pending {progress.scheduled}"
    )
    pace = (
        f"elapsed {progress.elapsed_s:.1f}s  "
        f"throughput {progress.throughput_jobs_per_s:.2f} jobs/s  "
        f"retries {progress.retries}  faults {progress.faults}"
    )
    lines = [
        f"run {progress.run_id or '?'} ({progress.label or 'campaign'})",
        headline,
        counts,
        pace,
    ]
    if progress.slowest_running:
        slowest = "  ".join(
            f"{job_id} {running_for:.1f}s"
            for job_id, running_for in progress.slowest_running
        )
        lines.append(f"slowest running: {slowest}")
    if progress.complete:
        lines.append(f"run finished: status={progress.status}")
    return "\n".join(lines)


def now_mono() -> float:
    """The live monotonic clock (mockable seam for tests)."""
    return time.perf_counter()
