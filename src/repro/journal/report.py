"""Post-run anomaly analysis: ``tgi journal report``.

Three failure smells the Top500-scale campaigns of the ROADMAP need
surfaced automatically rather than eyeballed out of thousands of rows:

**Stragglers**
    Completed jobs whose duration is a robust outlier against the run's
    duration distribution (modified z-score over the median/MAD — the
    estimator that survives the stragglers it is hunting).  A cutoff on
    the *ratio* to the median is applied too, so microsecond-scale noise
    on uniformly fast runs never flags.
**Retry storms**
    Individual jobs burning through their retry budget, and run-level
    storms where the retried fraction of executed jobs crosses a
    threshold — the signature of an infrastructure fault, not a job bug.
**Cache-hit-rate collapse**
    The run is split into halves by schedule order; a warm run whose
    trailing half's hit rate drops far below the leading half's points at
    cache invalidation mid-campaign (code-version churn, eviction).

Thresholds are keyword-tunable and recorded in the report, so a flagged
run documents the ruler it was measured with.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .reader import RunState

__all__ = ["Anomaly", "JournalReport", "analyze_state", "render_report", "report_to_dict"]

#: Anomaly kinds a report may contain.
ANOMALY_KINDS = ("straggler", "retry-storm", "cache-collapse")


@dataclass(frozen=True)
class Anomaly:
    """One flagged observation."""

    kind: str  # one of ANOMALY_KINDS
    subject: str  # job id or "run"
    detail: str
    severity: float  # comparable within one kind (z-score, fraction, drop)


@dataclass
class JournalReport:
    """The full anomaly report for one run."""

    run_id: str
    label: str
    jobs: int
    completed: int
    failed: int
    cached: int
    retries: int
    faults: int
    anomalies: List[Anomaly] = field(default_factory=list)
    thresholds: Dict[str, float] = field(default_factory=dict)
    duration_median_s: Optional[float] = None
    duration_mad_s: Optional[float] = None

    @property
    def clean(self) -> bool:
        return not self.anomalies

    def by_kind(self, kind: str) -> List[Anomaly]:
        return [a for a in self.anomalies if a.kind == kind]


def _robust_z(value: float, median: float, mad: float) -> float:
    if mad <= 0.0:
        return 0.0
    return 0.6745 * (value - median) / mad


def analyze_state(
    state: RunState,
    *,
    straggler_z: float = 3.5,
    straggler_ratio: float = 1.5,
    storm_fraction: float = 0.25,
    collapse_drop: float = 0.5,
) -> JournalReport:
    """Analyze a replayed run for stragglers, storms, and cache collapse."""
    jobs = list(state.jobs.values())
    completed = [j for j in jobs if j.status == "completed"]
    failed = [j for j in jobs if j.status == "failed"]
    cached = [j for j in jobs if j.status == "cached"]
    retries = sum(max(0, j.attempts - 1) for j in jobs)
    report = JournalReport(
        run_id=state.run_id,
        label=state.label,
        jobs=len(jobs),
        completed=len(completed),
        failed=len(failed),
        cached=len(cached),
        retries=retries,
        faults=len(state.faults),
        thresholds={
            "straggler_z": straggler_z,
            "straggler_ratio": straggler_ratio,
            "storm_fraction": storm_fraction,
            "collapse_drop": collapse_drop,
        },
    )

    # -- stragglers ----------------------------------------------------
    durations = [j.wall_s for j in completed if j.wall_s > 0.0]
    if len(durations) >= 4:
        median = statistics.median(durations)
        mad = statistics.median(abs(d - median) for d in durations)
        report.duration_median_s = median
        report.duration_mad_s = mad
        for job in completed:
            if job.wall_s <= 0.0 or median <= 0.0:
                continue
            z = _robust_z(job.wall_s, median, mad)
            ratio = job.wall_s / median
            if z > straggler_z and ratio > straggler_ratio:
                report.anomalies.append(
                    Anomaly(
                        kind="straggler",
                        subject=job.job_id,
                        detail=(
                            f"wall {job.wall_s:.3f}s is {ratio:.1f}x the run "
                            f"median {median:.3f}s (robust z={z:.1f})"
                        ),
                        severity=z,
                    )
                )

    # -- retry storms --------------------------------------------------
    executed = [j for j in jobs if j.attempts > 0]
    retried = [j for j in executed if j.attempts > 1]
    budget = max(1, state.retries_allowed)
    for job in retried:
        extra = job.attempts - 1
        if state.retries_allowed and extra >= state.retries_allowed:
            report.anomalies.append(
                Anomaly(
                    kind="retry-storm",
                    subject=job.job_id,
                    detail=(
                        f"used {extra}/{state.retries_allowed} allowed retries "
                        f"(final status: {job.status})"
                    ),
                    severity=extra / budget,
                )
            )
    if executed:
        fraction = len(retried) / len(executed)
        if fraction >= storm_fraction and len(retried) >= 2:
            report.anomalies.append(
                Anomaly(
                    kind="retry-storm",
                    subject="run",
                    detail=(
                        f"{len(retried)}/{len(executed)} executed jobs retried "
                        f"({100 * fraction:.0f}% >= {100 * storm_fraction:.0f}% threshold)"
                    ),
                    severity=fraction,
                )
            )

    # -- cache-hit-rate collapse ---------------------------------------
    if state.cache_enabled:
        ordered = sorted(
            (j for j in jobs if j.index >= 0 and j.status in ("cached", "completed", "failed")),
            key=lambda j: j.index,
        )
        if len(ordered) >= 4:
            half = len(ordered) // 2
            head, tail = ordered[:half], ordered[half:]
            head_rate = sum(1 for j in head if j.status == "cached") / len(head)
            tail_rate = sum(1 for j in tail if j.status == "cached") / len(tail)
            if head_rate >= 0.5 and tail_rate < head_rate * collapse_drop:
                report.anomalies.append(
                    Anomaly(
                        kind="cache-collapse",
                        subject="run",
                        detail=(
                            f"hit rate fell from {100 * head_rate:.0f}% (first half) "
                            f"to {100 * tail_rate:.0f}% (second half)"
                        ),
                        severity=head_rate - tail_rate,
                    )
                )

    report.anomalies.sort(key=lambda a: (a.kind, -a.severity, a.subject))
    return report


def report_to_dict(report: JournalReport) -> Dict:
    """JSON-compatible form of a report (``tgi journal report --json``)."""
    return {
        "run_id": report.run_id,
        "label": report.label,
        "jobs": report.jobs,
        "completed": report.completed,
        "failed": report.failed,
        "cached": report.cached,
        "retries": report.retries,
        "faults": report.faults,
        "duration_median_s": report.duration_median_s,
        "duration_mad_s": report.duration_mad_s,
        "thresholds": dict(report.thresholds),
        "clean": report.clean,
        "anomalies": [
            {
                "kind": a.kind,
                "subject": a.subject,
                "detail": a.detail,
                "severity": a.severity,
            }
            for a in report.anomalies
        ],
    }


def render_report(report: JournalReport) -> str:
    """Human rendering of a report."""
    lines = [
        f"journal report: run {report.run_id or '?'} ({report.label or 'campaign'})",
        (
            f"jobs {report.jobs}: {report.completed} completed, "
            f"{report.cached} cached, {report.failed} failed  |  "
            f"retries {report.retries}, faults {report.faults}"
        ),
    ]
    if report.duration_median_s is not None:
        lines.append(
            f"durations: median {report.duration_median_s:.3f}s, "
            f"MAD {report.duration_mad_s:.3f}s"
        )
    if report.clean:
        lines.append("no anomalies flagged")
        return "\n".join(lines)
    lines.append(f"{len(report.anomalies)} anomalies:")
    for anomaly in report.anomalies:
        lines.append(f"  [{anomaly.kind}] {anomaly.subject}: {anomaly.detail}")
    return "\n".join(lines)
