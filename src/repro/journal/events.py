"""The journal event taxonomy and its schema.

Every journal line is one JSON object — an *event* — with a fixed set of
common fields plus per-type fields.  The schema here is the single source
of truth: the writer validates events on emission, ``tgi journal
validate`` re-validates files after the fact (the CI drill), and the
reader's replay logic dispatches on the same type names.

Common fields (every event):

``v``
    Journal schema version (:data:`JOURNAL_VERSION`).
``event``
    The type name, one of :data:`EVENT_TYPES`.
``run_id``
    Identifier of the campaign run the event belongs to; all events of one
    journal file share it (concatenated runs remain distinguishable).
``t_mono``
    Monotonic timestamp (``time.perf_counter``): ordering and durations.
    On one host the monotonic clock is shared across processes, so parent
    and worker events interleave on a single timeline.
``t_unix`` / ``t_utc``
    The UTC wall-clock instant (``time.time`` seconds, plus the ISO-8601
    rendering) — cross-machine/calendar alignment, same convention as the
    telemetry exports.
``pid`` / ``process``
    Emitting process id and role tag (``"main"`` or ``"worker-<pid>"``).

Event types
-----------
``run.start`` / ``run.stop``
    Campaign lifecycle.  ``run.stop`` carries the terminal ``status``
    (``ok``/``failed``/``aborted``) — its *absence* is how a reader
    detects a crashed or in-flight run.  Sharded runs add the optional
    ``shards`` count.
``run.resumed``
    A crash-resumed campaign picked the journal back up: how many jobs
    were recovered (terminal in the replayed state *and* recoverable from
    the shared result cache) versus re-scheduled.  The resumed run keeps
    the original ``run_id`` and extends the same file, so one journal
    tells the whole story.
``shard.planned``
    One per shard of a sharded campaign: the shard ordinal and how many
    jobs the deterministic plan placed in it.
``job.scheduled``
    One per job, in submission order, with the content-addressed job key.
``job.stolen``
    Work-stealing: an idle worker slot (affinity ``by_shard``) took a job
    planned into ``from_shard``.  Pure scheduling telemetry — replay does
    not change job state on it.
``job.stored``
    The executing process published a job's payload into the shared
    result cache (emitted *after* the atomic rename lands, so its
    presence implies a durable entry).
``job.cache_hit``
    The job was served from the result cache (``attempt`` records on
    which attempt the hit landed — 0 for the usual pre-execution probe).
``job.started``
    One per execution attempt, emitted by whichever process runs it.
``job.attempt_failed`` / ``job.retried``
    A contained attempt failure, and the decision to re-attempt (with the
    backoff delay chosen).
``job.completed`` / ``job.failed``
    Terminal job states.  ``job.completed`` carries the per-job resource
    accounting captured in the executing process via
    ``resource.getrusage``: CPU seconds (user/system) *differenced*
    against a snapshot taken when the attempt began (getrusage counters
    are process-cumulative, so a reused pool worker would otherwise bill
    every job for its predecessors), and peak RSS — which stays a
    process-lifetime high-water mark, since a peak cannot be meaningfully
    differenced.
``worker.heartbeat``
    Emitted by a pool worker as it picks up work — liveness plus
    cumulative resource usage of that worker process.
``fault.injected``
    A deterministic fault from :mod:`repro.faults` fired, typed by kind.
``timeline.captured``
    A job's power-timeline artifact landed on disk
    (:mod:`repro.timeline`): the artifact path, how many run timelines it
    summarizes, and their total true energy.  A pointer, not a payload —
    replay ignores it, so journals stay replayable whether or not the
    timeline layer was armed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..exceptions import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "EVENT_TYPES",
    "COMMON_FIELDS",
    "EVENT_FIELDS",
    "RUN_STATUSES",
    "validate_event",
    "check_event",
]

#: Schema version stamped into every event (the ``v`` field).
JOURNAL_VERSION = 1

#: Terminal statuses a ``run.stop`` event may carry.
RUN_STATUSES = ("ok", "failed", "aborted")

# (name, allowed types, required) for the fields every event carries.
COMMON_FIELDS: Tuple[Tuple[str, tuple, bool], ...] = (
    ("v", (int,), True),
    ("event", (str,), True),
    ("run_id", (str,), True),
    ("t_mono", (float, int), True),
    ("t_unix", (float, int), True),
    ("t_utc", (str,), True),
    ("pid", (int,), True),
    ("process", (str,), True),
)

#: Per-type fields: ``event -> ((name, allowed types, required), ...)``.
EVENT_FIELDS: Dict[str, Tuple[Tuple[str, tuple, bool], ...]] = {
    "run.start": (
        ("label", (str,), True),
        ("jobs", (int,), True),
        ("workers", (int,), True),
        ("retries_allowed", (int,), True),
        ("keep_going", (bool,), True),
        ("cache_enabled", (bool,), True),
        ("shards", (int,), False),
    ),
    "run.resumed": (
        ("jobs_recovered", (int,), True),
        ("jobs_pending", (int,), True),
        ("shards", (int,), True),
    ),
    "shard.planned": (
        ("shard", (int,), True),
        ("jobs", (int,), True),
    ),
    "run.stop": (
        ("status", (str,), True),
        ("jobs_failed", (int,), True),
        ("total_wall_s", (float, int), True),
    ),
    "job.scheduled": (
        ("job", (str,), True),
        ("key", (str,), True),
        ("index", (int,), True),
    ),
    "job.cache_hit": (
        ("job", (str,), True),
        ("key", (str,), True),
        ("attempt", (int,), True),
    ),
    "job.started": (
        ("job", (str,), True),
        ("attempt", (int,), True),
    ),
    "job.stolen": (
        ("job", (str,), True),
        ("from_shard", (int,), True),
        ("by_shard", (int,), True),
    ),
    "job.stored": (
        ("job", (str,), True),
        ("key", (str,), True),
    ),
    "job.attempt_failed": (
        ("job", (str,), True),
        ("attempt", (int,), True),
        ("error_type", (str,), True),
        ("error_message", (str,), True),
        ("wall_s", (float, int), True),
    ),
    "job.retried": (
        ("job", (str,), True),
        ("attempt", (int,), True),
        ("delay_s", (float, int), True),
    ),
    "job.completed": (
        ("job", (str,), True),
        ("attempts", (int,), True),
        ("wall_s", (float, int), True),
        ("cpu_user_s", (float, int, type(None)), False),
        ("cpu_system_s", (float, int, type(None)), False),
        ("max_rss_bytes", (int, type(None)), False),
    ),
    "job.failed": (
        ("job", (str,), True),
        ("attempts", (int,), True),
        ("error_type", (str,), True),
        ("error_message", (str,), True),
    ),
    "worker.heartbeat": (
        ("jobs_done", (int,), True),
        ("cpu_user_s", (float, int, type(None)), False),
        ("cpu_system_s", (float, int, type(None)), False),
        ("max_rss_bytes", (int, type(None)), False),
    ),
    "fault.injected": (
        ("kind", (str,), True),
        ("scope", (str,), True),
        ("attempt", (int,), True),
    ),
    "timeline.captured": (
        ("job", (str,), True),
        ("path", (str,), True),
        ("runs", (int,), True),
        ("energy_j", (float, int), True),
    ),
    "fleet.ranked": (
        ("systems", (int,), True),
        ("batched", (int,), True),
        ("simulated", (int,), True),
        ("wall_s", (float, int), True),
    ),
}

#: All known event type names, sorted.
EVENT_TYPES = tuple(sorted(EVENT_FIELDS))


def _check_fields(event: Dict, spec, problems: List[str]) -> None:
    for name, types, required in spec:
        if name not in event:
            if required:
                problems.append(f"missing field {name!r}")
            continue
        value = event[name]
        # bool is an int subclass; reject it where int is expected but
        # bool is not explicitly allowed, so counts stay counts.
        if isinstance(value, bool) and bool not in types:
            problems.append(f"field {name!r} must not be a bool, got {value!r}")
            continue
        if not isinstance(value, tuple(types)):
            problems.append(
                f"field {name!r} expects {'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )


def validate_event(event: object) -> List[str]:
    """Schema-check one event; returns the list of problems (empty = valid)."""
    if not isinstance(event, dict):
        return [f"event must be a JSON object, got {type(event).__name__}"]
    problems: List[str] = []
    _check_fields(event, COMMON_FIELDS, problems)
    version = event.get("v")
    if isinstance(version, int) and version != JOURNAL_VERSION:
        problems.append(f"journal version {version} unsupported (reads {JOURNAL_VERSION})")
    kind = event.get("event")
    if isinstance(kind, str):
        spec = EVENT_FIELDS.get(kind)
        if spec is None:
            problems.append(f"unknown event type {kind!r}")
        else:
            _check_fields(event, spec, problems)
            known = {name for name, _, _ in COMMON_FIELDS}
            known.update(name for name, _, _ in spec)
            extras = sorted(set(event) - known)
            if extras:
                problems.append(f"unknown field(s) {extras} for event {kind!r}")
    if (
        event.get("event") == "run.stop"
        and isinstance(event.get("status"), str)
        and event["status"] not in RUN_STATUSES
    ):
        problems.append(
            f"run.stop status must be one of {RUN_STATUSES}, got {event['status']!r}"
        )
    return problems


def check_event(event: Dict) -> Dict:
    """Validate an event, raising :class:`~repro.exceptions.JournalError`."""
    problems = validate_event(event)
    if problems:
        raise JournalError(
            f"invalid journal event {event.get('event')!r}: " + "; ".join(problems)
        )
    return event
