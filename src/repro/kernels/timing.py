"""Monotonic timing helper."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch over the monotonic clock.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s > 0
    True
    """

    def __init__(self):
        self._start = None
        self._elapsed = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed_s(self) -> float:
        """Elapsed seconds (valid after the ``with`` block exits)."""
        if self._elapsed is None:
            raise RuntimeError("Timer has not completed a with-block yet")
        return self._elapsed
