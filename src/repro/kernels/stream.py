"""Real STREAM kernels on the host (NumPy-vectorized).

Implements the four official STREAM operations with the official traffic
accounting (Copy/Scale move 2 arrays per element, Add/Triad move 3).  The
arrays are allocated once and operated on in place through preallocated
outputs, so the measurement sees pure streaming and no allocator noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..exceptions import BenchmarkError
from .timing import Timer

__all__ = ["StreamKernelResult", "triad_bandwidth", "stream_kernels"]

_BYTES = 8  # float64


@dataclass(frozen=True)
class StreamKernelResult:
    """Outcome of one STREAM kernel measurement."""

    kernel: str
    array_elements: int
    iterations: int
    time_s: float
    bytes_moved: float

    @property
    def bandwidth(self) -> float:
        """Sustained bytes/s."""
        return self.bytes_moved / self.time_s


def triad_bandwidth(
    array_elements: int = 5_000_000, *, iterations: int = 10, alpha: float = 3.0
) -> StreamKernelResult:
    """Time the Triad kernel ``c = alpha * a + b`` (paper Eq. 16)."""
    if array_elements < 1 or iterations < 1:
        raise BenchmarkError("array_elements and iterations must be >= 1")
    a = np.ones(array_elements)
    b = np.full(array_elements, 2.0)
    c = np.empty(array_elements)
    with Timer() as t:
        for _ in range(iterations):
            np.multiply(a, alpha, out=c)
            c += b
    bytes_moved = iterations * 3 * _BYTES * array_elements
    return StreamKernelResult(
        kernel="triad",
        array_elements=array_elements,
        iterations=iterations,
        time_s=t.elapsed_s,
        bytes_moved=bytes_moved,
    )


def stream_kernels(
    array_elements: int = 5_000_000, *, iterations: int = 10, alpha: float = 3.0
) -> Dict[str, StreamKernelResult]:
    """Run all four kernels (Copy, Scale, Add, Triad); returns name -> result."""
    if array_elements < 1 or iterations < 1:
        raise BenchmarkError("array_elements and iterations must be >= 1")
    a = np.ones(array_elements)
    b = np.full(array_elements, 2.0)
    c = np.empty(array_elements)
    results: Dict[str, StreamKernelResult] = {}

    def record(kernel: str, streams: int, timer: Timer) -> None:
        results[kernel] = StreamKernelResult(
            kernel=kernel,
            array_elements=array_elements,
            iterations=iterations,
            time_s=timer.elapsed_s,
            bytes_moved=iterations * streams * _BYTES * array_elements,
        )

    with Timer() as t:
        for _ in range(iterations):
            np.copyto(c, a)
    record("copy", 2, t)

    with Timer() as t:
        for _ in range(iterations):
            np.multiply(c, alpha, out=b)
    record("scale", 2, t)

    with Timer() as t:
        for _ in range(iterations):
            np.add(a, b, out=c)
    record("add", 3, t)

    with Timer() as t:
        for _ in range(iterations):
            np.multiply(a, alpha, out=c)
            c += b
    record("triad", 3, t)
    return results
