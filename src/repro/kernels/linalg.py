"""Real dense-solve kernel (the HPL analogue at host scale).

Solves ``A x = b`` by LU factorization with partial pivoting via
:func:`scipy.linalg.lu_factor` and reports GFLOPS using the official HPL
flop count ``2/3 n^3 + 2 n^2`` — the same accounting the simulated HPL
model uses, so the two are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..exceptions import BenchmarkError
from ..perfmodels.hpl import HPLModel
from ..rng import RandomState, ensure_rng
from .timing import Timer

__all__ = ["LinalgKernelResult", "lu_solve_gflops"]


@dataclass(frozen=True)
class LinalgKernelResult:
    """Outcome of one host LU solve."""

    n: int
    time_s: float
    flops: float
    residual: float

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS."""
        return self.flops / self.time_s / 1e9


def lu_solve_gflops(n: int = 1000, *, rng: RandomState = None) -> LinalgKernelResult:
    """Factor and solve a random ``n x n`` system, timing the solve.

    The HPL-style scaled residual ``||Ax-b|| / (||A|| ||x|| n eps)`` is
    returned so callers can assert numerical correctness, as HPL itself
    does before accepting a measurement.
    """
    if n < 2:
        raise BenchmarkError(f"n must be >= 2, got {n}")
    gen = ensure_rng(rng)
    a = gen.standard_normal((n, n))
    b = gen.standard_normal(n)
    with Timer() as t:
        lu, piv = scipy.linalg.lu_factor(a)
        x = scipy.linalg.lu_solve((lu, piv), b)
    residual = float(
        np.linalg.norm(a @ x - b, np.inf)
        / (np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf) * n * np.finfo(float).eps)
    )
    return LinalgKernelResult(
        n=n,
        time_s=t.elapsed_s,
        flops=HPLModel.flop_count(n),
        residual=residual,
    )
