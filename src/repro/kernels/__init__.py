"""Real, executable host kernels.

These are genuine mini-versions of the suite's benchmarks that run on the
host machine (NumPy linear algebra, NumPy streaming, tempfile I/O).  They
serve two purposes:

* **model validation** — tests check that the analytic performance models'
  qualitative behaviour (e.g. Triad bandwidth saturating with thread count,
  LU time scaling as N^3) matches reality at laptop scale;
* **honest benchmarking** — the pytest-benchmark suite exercises them so
  the repository measures something real, not only simulated.

No power measurement happens here (the host has no wall-plug meter — that
is exactly the gap the simulated substrate fills); the kernels report
performance only.
"""

from .timing import Timer
from .linalg import lu_solve_gflops, LinalgKernelResult
from .stream import triad_bandwidth, stream_kernels, StreamKernelResult
from .io import file_write_bandwidth, IOKernelResult

__all__ = [
    "Timer",
    "lu_solve_gflops",
    "LinalgKernelResult",
    "triad_bandwidth",
    "stream_kernels",
    "StreamKernelResult",
    "file_write_bandwidth",
    "IOKernelResult",
]
