"""Real file-write kernel (the IOzone analogue at host scale).

Writes a file in fixed-size records, optionally fsyncing at the end —
mirroring IOzone's write test closely enough that the page-cache inflation
the :mod:`repro.perfmodels.iozone` model captures is observable on a real
machine (run with and without ``fsync``).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Optional

from ..exceptions import BenchmarkError
from .timing import Timer

__all__ = ["IOKernelResult", "file_write_bandwidth"]


@dataclass(frozen=True)
class IOKernelResult:
    """Outcome of one host write test."""

    file_bytes: int
    record_bytes: int
    time_s: float
    fsynced: bool

    @property
    def bandwidth(self) -> float:
        """Apparent write bytes/s."""
        return self.file_bytes / self.time_s


def file_write_bandwidth(
    file_bytes: int = 64 * 1024 * 1024,
    *,
    record_bytes: int = 1024 * 1024,
    fsync: bool = True,
    directory: Optional[str] = None,
) -> IOKernelResult:
    """Write ``file_bytes`` in ``record_bytes`` chunks to a temp file.

    ``fsync=True`` forces the data to the device before the clock stops
    (honest device bandwidth); ``fsync=False`` measures the page-cache
    -inflated rate IOzone reports for small files.  The file is deleted
    afterwards in all cases.
    """
    if file_bytes < 1 or record_bytes < 1:
        raise BenchmarkError("file_bytes and record_bytes must be >= 1")
    if record_bytes > file_bytes:
        record_bytes = file_bytes
    record = b"\xa5" * record_bytes
    full_records, tail = divmod(file_bytes, record_bytes)
    fd, path = tempfile.mkstemp(prefix="repro-iozone-", dir=directory)
    try:
        with Timer() as t:
            with os.fdopen(fd, "wb") as handle:
                for _ in range(full_records):
                    handle.write(record)
                if tail:
                    handle.write(record[:tail])
                handle.flush()
                if fsync:
                    os.fsync(handle.fileno())
        return IOKernelResult(
            file_bytes=file_bytes,
            record_bytes=record_bytes,
            time_s=t.elapsed_s,
            fsynced=fsync,
        )
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
