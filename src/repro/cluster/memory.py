"""Memory-subsystem specification.

A :class:`MemorySpec` describes the DRAM attached to one socket: capacity,
channel count and per-channel bandwidth, plus DIMM power envelope.  The
*peak* bandwidth is channels x per-channel bandwidth; the fraction STREAM
actually sustains (``stream_efficiency``) is a property of the memory
controller generation and is consumed by :mod:`repro.perfmodels.stream`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SpecError
from ..units import format_bandwidth, format_bytes
from ..validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = ["MemorySpec"]


@dataclass(frozen=True)
class MemorySpec:
    """DRAM attached to one socket.

    Parameters
    ----------
    technology:
        e.g. ``"DDR3-1333"`` or ``"DDR2-800 FB-DIMM"``.
    capacity_bytes:
        Installed capacity per socket.
    channels:
        Memory channels per socket.
    channel_bandwidth:
        Peak bytes/s per channel (transfer rate x 8 bytes).
    stream_efficiency:
        Fraction of peak bandwidth sustainable by STREAM Triad when the
        channels are saturated (typically 0.5-0.8 for the era modelled).
    cores_to_saturate:
        How many cores' worth of streaming it takes to saturate the socket's
        sustained bandwidth; below that, bandwidth scales ~linearly in cores.
    access_latency_s:
        Load-to-use latency of a random DRAM access (row miss); bounds
        latency-bound kernels such as HPCC RandomAccess.
    dimms:
        Number of DIMMs populated per socket.
    dimm_idle_watts / dimm_active_watts:
        Per-DIMM power at idle and under full bandwidth load.
    """

    technology: str
    capacity_bytes: float
    channels: int
    channel_bandwidth: float
    stream_efficiency: float = 0.65
    cores_to_saturate: int = 4
    access_latency_s: float = 80e-9
    dimms: int = 4
    dimm_idle_watts: float = 2.0
    dimm_active_watts: float = 5.0

    def __post_init__(self) -> None:
        check_positive(self.capacity_bytes, "capacity_bytes", exc=SpecError)
        check_positive_int(self.channels, "channels", exc=SpecError)
        check_positive(self.channel_bandwidth, "channel_bandwidth", exc=SpecError)
        check_fraction(self.stream_efficiency, "stream_efficiency", exc=SpecError)
        if self.stream_efficiency == 0:
            raise SpecError("stream_efficiency must be > 0")
        check_positive_int(self.cores_to_saturate, "cores_to_saturate", exc=SpecError)
        check_positive(self.access_latency_s, "access_latency_s", exc=SpecError)
        check_positive_int(self.dimms, "dimms", exc=SpecError)
        check_non_negative(self.dimm_idle_watts, "dimm_idle_watts", exc=SpecError)
        check_positive(self.dimm_active_watts, "dimm_active_watts", exc=SpecError)
        if self.dimm_active_watts < self.dimm_idle_watts:
            raise SpecError("dimm_active_watts must be >= dimm_idle_watts")

    @property
    def peak_bandwidth(self) -> float:
        """Peak bytes/s per socket (all channels)."""
        return self.channels * self.channel_bandwidth

    @property
    def sustained_bandwidth(self) -> float:
        """STREAM-sustainable bytes/s per socket."""
        return self.peak_bandwidth * self.stream_efficiency

    @property
    def idle_watts(self) -> float:
        """All-DIMM idle power per socket."""
        return self.dimms * self.dimm_idle_watts

    @property
    def active_watts(self) -> float:
        """All-DIMM full-bandwidth power per socket."""
        return self.dimms * self.dimm_active_watts

    def __str__(self) -> str:
        return (
            f"{self.technology}: {format_bytes(self.capacity_bytes)} over "
            f"{self.channels} ch, peak {format_bandwidth(self.peak_bandwidth)}"
        )
