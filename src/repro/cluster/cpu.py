"""CPU socket specification.

A :class:`CPUSpec` describes one processor package: core count, clock, DP
floating-point throughput per core-cycle, and its nominal power envelope
(idle and full-load watts for the whole package).  The package-level peak
FLOP rate is ``cores * base_clock_hz * flops_per_cycle``; how much of that a
workload achieves is the business of :mod:`repro.perfmodels`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SpecError
from ..units import format_flops
from ..validation import check_non_negative, check_positive, check_positive_int

__all__ = ["CPUSpec"]


@dataclass(frozen=True)
class CPUSpec:
    """One CPU package (socket).

    Parameters
    ----------
    model:
        Marketing name, e.g. ``"AMD Opteron 6134"``.
    cores:
        Physical cores per package.
    base_clock_hz:
        Sustained clock in Hz (turbo is deliberately not modelled; the
        2008-2010 parts in the paper have none worth speaking of).
    flops_per_cycle:
        Double-precision FLOPs retired per core per cycle at peak
        (e.g. 4 for SSE2-era parts: 2-wide FMA-less mul+add pipes).
    tdp_watts:
        Full-load package power.
    idle_watts:
        Package power with all cores in their idle state.
    """

    model: str
    cores: int
    base_clock_hz: float
    flops_per_cycle: float
    tdp_watts: float
    idle_watts: float

    def __post_init__(self) -> None:
        check_positive_int(self.cores, "cores", exc=SpecError)
        check_positive(self.base_clock_hz, "base_clock_hz", exc=SpecError)
        check_positive(self.flops_per_cycle, "flops_per_cycle", exc=SpecError)
        check_positive(self.tdp_watts, "tdp_watts", exc=SpecError)
        check_non_negative(self.idle_watts, "idle_watts", exc=SpecError)
        if self.idle_watts > self.tdp_watts:
            raise SpecError(
                f"idle_watts ({self.idle_watts}) exceeds tdp_watts ({self.tdp_watts})"
            )
        if not self.model:
            raise SpecError("model name must be non-empty")

    @property
    def peak_flops(self) -> float:
        """Package peak DP throughput in FLOP/s."""
        return self.cores * self.base_clock_hz * self.flops_per_cycle

    @property
    def peak_flops_per_core(self) -> float:
        """Per-core peak DP throughput in FLOP/s."""
        return self.base_clock_hz * self.flops_per_cycle

    def __str__(self) -> str:
        return (
            f"{self.model}: {self.cores} cores @ {self.base_clock_hz / 1e9:.2f} GHz, "
            f"peak {format_flops(self.peak_flops)}"
        )
