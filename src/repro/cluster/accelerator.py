"""Accelerator (GPU) specification — extension beyond the paper.

The paper's future work asks whether TGI is suitable for GPU-based systems.
:class:`AcceleratorSpec` lets :class:`~repro.cluster.node.NodeSpec` carry
GPUs so presets like :func:`repro.cluster.presets.gpu_cluster` can be pushed
through the same benchmark/metric pipeline (see
``examples/gpu_system_tgi.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SpecError
from ..units import format_flops
from ..validation import check_non_negative, check_positive

__all__ = ["AcceleratorSpec"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator card.

    Parameters
    ----------
    model:
        e.g. ``"NVIDIA Tesla M2050"``.
    peak_flops:
        Double-precision peak in FLOP/s.
    memory_bandwidth:
        Device memory bytes/s (STREAM-like kernels are bound by this).
    memory_bytes:
        Device memory capacity.
    tdp_watts / idle_watts:
        Card power envelope.
    hpl_efficiency:
        Fraction of DP peak achievable on an HPL-like DGEMM-dominated run.
    """

    model: str
    peak_flops: float
    memory_bandwidth: float
    memory_bytes: float
    tdp_watts: float
    idle_watts: float = 25.0
    hpl_efficiency: float = 0.55

    def __post_init__(self) -> None:
        if not self.model:
            raise SpecError("accelerator model name must be non-empty")
        check_positive(self.peak_flops, "peak_flops", exc=SpecError)
        check_positive(self.memory_bandwidth, "memory_bandwidth", exc=SpecError)
        check_positive(self.memory_bytes, "memory_bytes", exc=SpecError)
        check_positive(self.tdp_watts, "tdp_watts", exc=SpecError)
        check_non_negative(self.idle_watts, "idle_watts", exc=SpecError)
        if self.idle_watts > self.tdp_watts:
            raise SpecError("idle_watts exceeds tdp_watts")
        if not 0 < self.hpl_efficiency <= 1:
            raise SpecError("hpl_efficiency must be in (0, 1]")

    @property
    def sustained_hpl_flops(self) -> float:
        """FLOP/s achievable on an HPL-like workload."""
        return self.peak_flops * self.hpl_efficiency

    def __str__(self) -> str:
        return f"{self.model}: {format_flops(self.peak_flops)} DP peak, {self.tdp_watts:.0f} W TDP"
