"""Seeded generator of plausible cluster specifications.

The paper's future work wants "the general applicability of TGI by
benchmarking more systems".  This generator produces whole *families* of
era-consistent machines so list-scale studies (a simulated Green500, rank
stability, metric comparisons across dozens of systems) are one loop away —
see ``examples/green500_style_list.py``.

Machines are sampled around an era template (2008 / 2011 / 2015 / 2021)
with correlated perturbations: a machine with faster DRAM also tends to get
a faster interconnect tier, higher-clock parts burn proportionally more
power, and so on.  Everything is driven by a named RNG stream, so
``generate_cluster(seed=k)`` is stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import SpecError
from ..rng import RandomState, ensure_rng
from ..units import GIB, gbps, mbps
from .cluster import ClusterSpec
from .cpu import CPUSpec
from .memory import MemorySpec
from .nic import InterconnectSpec
from .node import NodeSpec
from .storage import StorageKind, StorageSpec

__all__ = [
    "EraTemplate",
    "ERAS",
    "generate_cluster",
    "generate_fleet",
    "fleet_seeds",
    "fleet_member_seed",
]


@dataclass(frozen=True)
class EraTemplate:
    """Central values a generated machine is sampled around."""

    name: str
    clock_ghz: Tuple[float, float]  # (low, high)
    cores_per_socket: Tuple[int, ...]
    flops_per_cycle: float
    tdp_per_core_w: float
    idle_fraction: float  # idle = fraction * tdp
    channel_bw_gbs: float
    channels: Tuple[int, ...]
    stream_efficiency: Tuple[float, float]
    mem_per_core_gib: Tuple[int, ...]
    disk_mbps: Tuple[float, float]
    disk_kind: StorageKind
    nic_tiers: Tuple[Tuple[str, float, float], ...]  # (name, GB/s, latency us)
    base_watts: Tuple[float, float]
    node_counts: Tuple[int, ...]


ERAS: Dict[str, EraTemplate] = {
    "2008": EraTemplate(
        name="2008",
        clock_ghz=(2.0, 3.0),
        cores_per_socket=(2, 4),
        flops_per_cycle=4.0,
        tdp_per_core_w=20.0,
        idle_fraction=0.30,
        channel_bw_gbs=6.4,
        channels=(2, 4),
        stream_efficiency=(0.15, 0.45),
        mem_per_core_gib=(1, 2),
        disk_mbps=(55.0, 90.0),
        disk_kind=StorageKind.HDD,
        nic_tiers=(
            ("GigE", 0.118, 50.0),
            ("DDR InfiniBand", 1.5, 2.5),
        ),
        base_watts=(40.0, 70.0),
        node_counts=(8, 16, 32, 64, 128),
    ),
    "2011": EraTemplate(
        name="2011",
        clock_ghz=(2.0, 2.9),
        cores_per_socket=(6, 8, 12),
        flops_per_cycle=4.0,
        tdp_per_core_w=9.0,
        idle_fraction=0.28,
        channel_bw_gbs=10.7,
        channels=(3, 4),
        stream_efficiency=(0.25, 0.6),
        mem_per_core_gib=(1, 2, 4),
        disk_mbps=(90.0, 160.0),
        disk_kind=StorageKind.HDD,
        nic_tiers=(
            ("GigE", 0.118, 50.0),
            ("QDR InfiniBand", 3.2, 1.3),
        ),
        base_watts=(35.0, 60.0),
        node_counts=(8, 16, 32, 64, 128, 256),
    ),
    "2015": EraTemplate(
        name="2015",
        clock_ghz=(2.2, 3.0),
        cores_per_socket=(10, 12, 16),
        flops_per_cycle=16.0,
        tdp_per_core_w=8.0,
        idle_fraction=0.25,
        channel_bw_gbs=17.0,
        channels=(4,),
        stream_efficiency=(0.55, 0.75),
        mem_per_core_gib=(2, 4, 8),
        disk_mbps=(200.0, 500.0),
        disk_kind=StorageKind.SSD,
        nic_tiers=(
            ("10GigE", 1.1, 8.0),
            ("FDR InfiniBand", 6.0, 1.0),
        ),
        base_watts=(30.0, 55.0),
        node_counts=(16, 32, 64, 128, 256),
    ),
    "2021": EraTemplate(
        name="2021",
        clock_ghz=(2.2, 3.2),
        cores_per_socket=(32, 48, 64),
        flops_per_cycle=16.0,
        tdp_per_core_w=4.0,
        idle_fraction=0.28,
        channel_bw_gbs=25.6,
        channels=(8,),
        stream_efficiency=(0.7, 0.85),
        mem_per_core_gib=(2, 4),
        disk_mbps=(1500.0, 3500.0),
        disk_kind=StorageKind.NVME,
        nic_tiers=(
            ("25GigE", 2.8, 4.0),
            ("HDR InfiniBand", 24.0, 0.9),
        ),
        base_watts=(40.0, 70.0),
        node_counts=(16, 32, 64, 128, 256, 512),
    ),
}


def generate_cluster(seed: RandomState, *, era: str = "2011", name: str = "") -> ClusterSpec:
    """One plausible machine of the given era, fully determined by ``seed``."""
    if era not in ERAS:
        raise SpecError(f"unknown era {era!r}; available: {sorted(ERAS)}")
    template = ERAS[era]
    rng = ensure_rng(seed)

    clock = rng.uniform(*template.clock_ghz)
    cores = int(rng.choice(template.cores_per_socket))
    tdp = cores * template.tdp_per_core_w * rng.uniform(0.85, 1.2)
    cpu = CPUSpec(
        model=f"{template.name}-gen CPU {clock:.1f} GHz x{cores}",
        cores=cores,
        base_clock_hz=clock * 1e9,
        flops_per_cycle=template.flops_per_cycle,
        tdp_watts=tdp,
        idle_watts=template.idle_fraction * tdp,
    )
    # correlated quality draw: one "budget tier" knob nudges memory, disk,
    # and network together
    tier = rng.uniform(0.0, 1.0)
    channels = int(rng.choice(template.channels))
    stream_eff = (
        template.stream_efficiency[0]
        + (template.stream_efficiency[1] - template.stream_efficiency[0])
        * min(1.0, tier + rng.uniform(-0.15, 0.15))
    )
    stream_eff = min(max(stream_eff, template.stream_efficiency[0]), template.stream_efficiency[1])
    memory = MemorySpec(
        technology=f"{template.name}-gen DRAM",
        capacity_bytes=int(rng.choice(template.mem_per_core_gib)) * cores * GIB,
        channels=channels,
        channel_bandwidth=template.channel_bw_gbs * 1e9,
        stream_efficiency=stream_eff,
        cores_to_saturate=max(1, min(cores, int(round(cores * rng.uniform(0.3, 0.9))))),
        dimms=channels,
        dimm_idle_watts=rng.uniform(1.0, 3.0),
        dimm_active_watts=rng.uniform(3.5, 6.0),
    )
    disk_lo, disk_hi = template.disk_mbps
    disk_rate = disk_lo + (disk_hi - disk_lo) * min(1.0, tier + rng.uniform(-0.2, 0.2))
    disk_rate = min(max(disk_rate, disk_lo), disk_hi)
    storage = StorageSpec(
        model=f"{template.name}-gen {template.disk_kind.value}",
        kind=template.disk_kind,
        capacity_bytes=1e12,
        seq_write_bandwidth=mbps(disk_rate),
        seq_read_bandwidth=mbps(disk_rate * 1.2),
        idle_watts=rng.uniform(1.0, 6.0),
        active_watts=rng.uniform(6.0, 11.0),
    )
    nic_name, nic_gbs, nic_us = template.nic_tiers[
        1 if tier > 0.5 else 0
    ]
    nic = InterconnectSpec(
        name=nic_name,
        latency_s=nic_us * 1e-6,
        bandwidth=gbps(nic_gbs),
        idle_watts=rng.uniform(2.0, 10.0),
        active_watts=rng.uniform(10.0, 18.0),
    )
    node = NodeSpec(
        name=f"{template.name}-gen node (2x {cores} cores)",
        sockets=2,
        cpu=cpu,
        memory=memory,
        storage=storage,
        nic=nic,
        base_watts=rng.uniform(*template.base_watts),
    )
    num_nodes = int(rng.choice(template.node_counts))
    cluster_name = name or f"{template.name}-sys-{rng.integers(0, 10_000):04d}"
    return ClusterSpec(name=cluster_name, node=node, num_nodes=num_nodes)


def _fleet_base(seed: RandomState) -> int:
    """One stable base integer for a fleet's whole seed family."""
    return int(ensure_rng(seed).integers(0, 2**63 - 1))


def _member_seed(base: int, index: int) -> int:
    # Same derivation idiom as rng.child_rng: a fresh generator keyed by
    # (base, index) makes every member's stream independent of its
    # neighbours', so fleets of different sizes share a common prefix.
    return int(np.random.default_rng([base, index]).integers(0, 2**62))


def fleet_member_seed(index: int, seed: RandomState = None) -> int:
    """The sub-seed of fleet member ``index``, in O(1).

    ``fleet_member_seed(i, s) == fleet_seeds(n, s)[i]`` for any ``n > i``
    (with an int or ``None`` seed) — member seeds are a pure function of
    ``(seed, index)`` rather than positions in a shared sequential stream,
    so one member can be derived without materializing those before it.
    Passing a live ``Generator`` consumes one draw per call.
    """
    if index < 0:
        raise SpecError(f"index must be >= 0, got {index}")
    return _member_seed(_fleet_base(seed), index)


def fleet_seeds(count: int, seed: RandomState = None) -> List[int]:
    """The per-machine sub-seeds a fleet of ``count`` machines draws.

    Exposed so a single fleet member can be regenerated in isolation (e.g.
    by a campaign job running in another process) without materializing the
    whole fleet: ``generate_cluster(fleet_seeds(n, seed)[i], ...)`` equals
    ``generate_fleet(n, seed=seed)[i]`` spec-for-spec.

    Seeds are derived per member from ``(seed, index)``, not drawn from one
    sequential stream, so fleets of size ``n`` and ``n + 1`` built from the
    same ``seed`` agree on their first ``n`` machines and any single member
    is recoverable via :func:`fleet_member_seed`.
    """
    if count < 1:
        raise SpecError(f"count must be >= 1, got {count}")
    base = _fleet_base(seed)
    return [_member_seed(base, i) for i in range(count)]


def generate_fleet(
    count: int, *, era: str = "2011", seed: RandomState = None
) -> List[ClusterSpec]:
    """``count`` distinct machines of one era with unique names."""
    fleet = []
    for i, sub_seed in enumerate(fleet_seeds(count, seed)):
        fleet.append(generate_cluster(sub_seed, era=era, name=f"{era}-sys-{i:02d}"))
    return fleet
