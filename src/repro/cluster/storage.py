"""Storage-device specification.

A :class:`StorageSpec` describes the local storage of one node — the device
IOzone's write test exercises.  Sequential bandwidths are the sustained media
rates; the effect of the OS page cache on *measured* IOzone numbers is
modelled in :mod:`repro.perfmodels.iozone`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import SpecError
from ..units import format_bandwidth, format_bytes
from ..validation import check_non_negative, check_positive

__all__ = ["StorageKind", "StorageSpec"]


class StorageKind(str, enum.Enum):
    """Broad device class (affects seek behaviour and power envelope)."""

    HDD = "hdd"
    SSD = "ssd"
    NVME = "nvme"


@dataclass(frozen=True)
class StorageSpec:
    """Local storage of one node.

    Parameters
    ----------
    model:
        Device name, e.g. ``"7200rpm SATA HDD"``.
    kind:
        Device class.
    capacity_bytes:
        Usable capacity.
    seq_write_bandwidth / seq_read_bandwidth:
        Sustained sequential media rates in bytes/s.
    idle_watts / active_watts:
        Device power at idle and under sustained transfer.
    """

    model: str
    kind: StorageKind
    capacity_bytes: float
    seq_write_bandwidth: float
    seq_read_bandwidth: float
    idle_watts: float = 5.0
    active_watts: float = 9.0

    def __post_init__(self) -> None:
        if not self.model:
            raise SpecError("storage model name must be non-empty")
        if not isinstance(self.kind, StorageKind):
            raise SpecError(f"kind must be a StorageKind, got {self.kind!r}")
        check_positive(self.capacity_bytes, "capacity_bytes", exc=SpecError)
        check_positive(self.seq_write_bandwidth, "seq_write_bandwidth", exc=SpecError)
        check_positive(self.seq_read_bandwidth, "seq_read_bandwidth", exc=SpecError)
        check_non_negative(self.idle_watts, "idle_watts", exc=SpecError)
        check_positive(self.active_watts, "active_watts", exc=SpecError)
        if self.active_watts < self.idle_watts:
            raise SpecError("active_watts must be >= idle_watts")

    def __str__(self) -> str:
        return (
            f"{self.model} ({self.kind.value}): {format_bytes(self.capacity_bytes)}, "
            f"write {format_bandwidth(self.seq_write_bandwidth)}"
        )
