"""Interconnect topologies.

A :class:`Topology` wraps a :class:`networkx.Graph` whose nodes are compute
nodes (integers ``0..n-1``) and switches (strings ``"sw..."``), and exposes
the two quantities the communication model needs: hop counts between compute
nodes and the bisection bandwidth (in links) of the fabric.

Three constructors cover the systems modelled:

* :func:`star_topology` — every node one hop from a single crossbar switch
  (an adequate model of a small cluster on one InfiniBand switch, like Fire);
* :func:`fat_tree_topology` — two-level fat tree (SystemG-scale machines);
* :func:`ring_topology` — 1-D torus, included for ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..exceptions import SpecError
from ..validation import check_positive_int

__all__ = ["Topology", "star_topology", "fat_tree_topology", "ring_topology"]


@dataclass(frozen=True, eq=False)
class Topology:
    """A named interconnect fabric over ``num_nodes`` compute endpoints.

    Equality is by *value* (name, endpoint count, edge set) rather than by
    graph identity — two independently-built star topologies over the same
    nodes compare equal, which keeps :class:`~repro.cluster.cluster.ClusterSpec`
    equality intuitive.
    """

    name: str
    num_nodes: int
    graph: nx.Graph

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_nodes == other.num_nodes
            and set(map(frozenset, self.graph.edges)) == set(map(frozenset, other.graph.edges))
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_nodes))

    def __post_init__(self) -> None:
        check_positive_int(self.num_nodes, "num_nodes", exc=SpecError)
        for i in range(self.num_nodes):
            if i not in self.graph:
                raise SpecError(f"compute node {i} missing from topology graph")
        # Per-instance memo for hop queries: figure sweeps ask for the same
        # pairs thousands of times.
        object.__setattr__(self, "_hop_cache", {})

    def hops(self, a: int, b: int) -> int:
        """Number of links on the shortest path between compute nodes."""
        self._check_endpoint(a)
        self._check_endpoint(b)
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        hit = self._hop_cache.get(key)
        if hit is None:
            hit = nx.shortest_path_length(self.graph, a, b)
            self._hop_cache[key] = hit
        return hit

    def max_hops(self) -> int:
        """Diameter restricted to compute endpoints."""
        worst = 0
        for a in range(self.num_nodes):
            for b in range(a + 1, self.num_nodes):
                worst = max(worst, self.hops(a, b))
        return worst

    def mean_hops(self) -> float:
        """Mean pairwise hop count over distinct compute endpoints."""
        if self.num_nodes == 1:
            return 0.0
        total = 0
        pairs = 0
        for a in range(self.num_nodes):
            for b in range(a + 1, self.num_nodes):
                total += self.hops(a, b)
                pairs += 1
        return total / pairs

    def bisection_links(self) -> int:
        """Minimum number of links cut to split compute nodes in half.

        Computed exactly via max-flow between the two halves of the
        endpoint set, which upper-bounds all-to-all throughput.
        """
        if self.num_nodes == 1:
            return 0
        g = self.graph.copy()
        half = self.num_nodes // 2
        src, dst = "_bisect_src", "_bisect_dst"
        g.add_node(src)
        g.add_node(dst)
        for i in range(half):
            g.add_edge(src, i, capacity=float("inf"))
        for i in range(half, self.num_nodes):
            g.add_edge(i, dst, capacity=float("inf"))
        for u, v, data in self.graph.edges(data=True):
            g[u][v]["capacity"] = float(data.get("multiplicity", 1))
        value, _ = nx.maximum_flow(g, src, dst)
        return int(value)

    def _check_endpoint(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SpecError(
                f"node {node} outside compute endpoints [0, {self.num_nodes})"
            )


def star_topology(num_nodes: int) -> Topology:
    """All compute nodes attached to one crossbar switch (2 hops pairwise)."""
    check_positive_int(num_nodes, "num_nodes", exc=SpecError)
    g = nx.Graph()
    g.add_nodes_from(range(num_nodes))
    if num_nodes > 1:
        g.add_node("sw0")
        for i in range(num_nodes):
            g.add_edge(i, "sw0")
    return Topology(name=f"star({num_nodes})", num_nodes=num_nodes, graph=g)


def fat_tree_topology(num_nodes: int, *, leaf_radix: int = 16) -> Topology:
    """Two-level fat tree: leaf switches of ``leaf_radix`` nodes + one spine.

    Nodes on the same leaf are 2 hops apart; across leaves, 4 hops.  Each
    leaf gets ``leaf_radix // 2`` uplinks (2:1 oversubscription, typical of
    the era) — this shapes :meth:`Topology.bisection_links`.
    """
    check_positive_int(num_nodes, "num_nodes", exc=SpecError)
    check_positive_int(leaf_radix, "leaf_radix", exc=SpecError)
    g = nx.Graph()
    g.add_nodes_from(range(num_nodes))
    num_leaves = (num_nodes + leaf_radix - 1) // leaf_radix
    if num_nodes > 1:
        uplinks = max(1, leaf_radix // 2)
        g.add_node("spine0")
        for leaf in range(num_leaves):
            sw = f"leaf{leaf}"
            g.add_node(sw)
            lo = leaf * leaf_radix
            hi = min(lo + leaf_radix, num_nodes)
            for i in range(lo, hi):
                g.add_edge(i, sw)
            if num_leaves > 1:
                # parallel uplinks collapse to capacity in bisection; model as
                # a single multigraph-free edge with recorded multiplicity
                g.add_edge(sw, "spine0", multiplicity=uplinks)
    return Topology(name=f"fat-tree({num_nodes},radix={leaf_radix})", num_nodes=num_nodes, graph=g)


def ring_topology(num_nodes: int) -> Topology:
    """1-D torus: node ``i`` linked to ``(i +/- 1) mod n``."""
    check_positive_int(num_nodes, "num_nodes", exc=SpecError)
    g = nx.Graph()
    g.add_nodes_from(range(num_nodes))
    if num_nodes == 2:
        g.add_edge(0, 1)
    elif num_nodes > 2:
        for i in range(num_nodes):
            g.add_edge(i, (i + 1) % num_nodes)
    return Topology(name=f"ring({num_nodes})", num_nodes=num_nodes, graph=g)
