"""Hardware substrate: parametric models of HPC cluster hardware.

This subpackage defines *specifications* — immutable, validated descriptions
of CPUs, memory subsystems, storage devices, interconnects, nodes, and whole
clusters — plus interconnect topologies and presets for the two machines in
the paper (the *Fire* system under test and the *SystemG* reference) and a
few extension systems.

Specifications are pure data: they carry peak rates and nominal power
envelopes but no behaviour.  Power draw as a function of utilization lives in
:mod:`repro.power`; performance as a function of scale lives in
:mod:`repro.perfmodels`.
"""

from .cpu import CPUSpec
from .memory import MemorySpec
from .storage import StorageSpec, StorageKind
from .nic import InterconnectSpec
from .node import NodeSpec
from .cluster import ClusterSpec
from .topology import Topology, star_topology, fat_tree_topology, ring_topology
from .accelerator import AcceleratorSpec
from .generator import EraTemplate, ERAS, generate_cluster, generate_fleet
from . import presets

__all__ = [
    "CPUSpec",
    "MemorySpec",
    "StorageSpec",
    "StorageKind",
    "InterconnectSpec",
    "NodeSpec",
    "ClusterSpec",
    "AcceleratorSpec",
    "Topology",
    "star_topology",
    "fat_tree_topology",
    "ring_topology",
    "EraTemplate",
    "ERAS",
    "generate_cluster",
    "generate_fleet",
    "presets",
]
