"""Preset systems.

Two presets reproduce the machines in the paper (Section IV):

* :func:`fire` — the system under test: 8 nodes, each 2 x AMD Opteron 6134
  (8 cores @ 2.3 GHz), 32 GB RAM, 128 cores total.  Peak
  8 x 16 x 2.3 GHz x 4 flop/cycle = 1177.6 GFLOPS; the paper reports
  ~901 GFLOPS HPL (76.5 % efficiency), which calibrates the HPL model.
* :func:`system_g` — the reference: Mac Pro cluster with 2 x 2.8 GHz
  quad-core Xeon 5462 and 8 GB per node on QDR InfiniBand; the paper uses
  128 nodes / 1024 cores of it.

Component-level numbers not printed in the paper (idle watts, disk rates,
FB-DIMM power, ...) are reconstructed from era-typical datasheets; see
DESIGN.md section 7 and EXPERIMENTS.md for the calibration rationale.

Two extension presets support the paper's stated future work:

* :func:`gpu_cluster` — a Fermi-generation GPU system ("suitability of TGI
  to GPU-based systems").
* :func:`modern_cluster` — a contemporary EPYC-class system, useful for
  ranking demonstrations across hardware generations.
"""

from __future__ import annotations

from ..units import GIB, gbps, mbps
from .accelerator import AcceleratorSpec
from .cluster import ClusterSpec
from .cpu import CPUSpec
from .memory import MemorySpec
from .nic import InterconnectSpec
from .node import NodeSpec
from .storage import StorageKind, StorageSpec
from .topology import fat_tree_topology

__all__ = ["fire", "system_g", "gpu_cluster", "modern_cluster"]

#: QDR InfiniBand: ~32 Gbit/s usable -> ~3.2 GB/s sustained, 1.3 us latency.
_QDR_IB = InterconnectSpec(
    name="QDR InfiniBand",
    latency_s=1.3e-6,
    bandwidth=gbps(3.2),
    idle_watts=8.0,
    active_watts=15.0,
)

#: Gigabit Ethernet over TCP: ~118 MB/s sustained, ~50 us MPI latency.
#: The paper names SystemG's interconnect (QDR IB) but not Fire's; an
#: 8-node departmental cluster of the era typically ran MPI over GigE, and
#: only a comparatively slow fabric reproduces the strong-scaling rolloff
#: visible in the paper's HPL energy-efficiency sweep (see EXPERIMENTS.md).
_GIGE = InterconnectSpec(
    name="Gigabit Ethernet",
    latency_s=50e-6,
    bandwidth=mbps(118),
    idle_watts=2.0,
    active_watts=4.0,
)


def fire(num_nodes: int = 8) -> ClusterSpec:
    """The *Fire* cluster: 8 nodes x 2 x AMD Opteron 6134 (Magny-Cours).

    Per-node: 16 cores @ 2.3 GHz (147.2 GFLOPS peak), 32 GB DDR3-1333 over
    2 x 4 channels, one 7200 rpm SATA disk, Gigabit Ethernet (the paper does
    not name Fire's interconnect; see the note on ``_GIGE`` above).
    """
    cpu = CPUSpec(
        model="AMD Opteron 6134",
        cores=8,
        base_clock_hz=2.3e9,
        flops_per_cycle=4.0,  # SSE2: 2 adds + 2 muls per cycle
        tdp_watts=85.0,
        idle_watts=24.0,
    )
    memory = MemorySpec(
        technology="DDR3-1333",
        capacity_bytes=16 * GIB,  # 32 GB/node over 2 sockets
        channels=4,
        channel_bandwidth=10.667e9,
        stream_efficiency=0.24,  # unoptimized Triad: ~10 GB/s per socket
        cores_to_saturate=7,  # ~1.5 GB/s single-core Triad: near-full occupancy needed
        dimms=4,
        dimm_idle_watts=1.5,
        dimm_active_watts=4.0,
    )
    storage = StorageSpec(
        model="7200rpm SATA HDD",
        kind=StorageKind.HDD,
        capacity_bytes=500e9,
        seq_write_bandwidth=mbps(110),
        seq_read_bandwidth=mbps(125),
        idle_watts=5.0,
        active_watts=9.5,
    )
    node = NodeSpec(
        name="Fire node (2x Opteron 6134, 32 GB)",
        sockets=2,
        cpu=cpu,
        memory=memory,
        storage=storage,
        nic=_GIGE,
        base_watts=45.0,
    )
    return ClusterSpec(name="Fire", node=node, num_nodes=num_nodes)


def system_g(num_nodes: int = 128) -> ClusterSpec:
    """The *SystemG* reference: Mac Pros with 2 x quad-core Xeon 5462.

    The full machine has 324 nodes; the paper's reference measurements use
    128 nodes / 1024 cores, so that is the default here.  FB-DIMM memory is
    power-hungry and the shared front-side bus caps sustained STREAM rates
    well below channel peak — both effects are reflected in the spec.
    """
    cpu = CPUSpec(
        model="Intel Xeon 5462 (Harpertown)",
        cores=4,
        base_clock_hz=2.8e9,
        flops_per_cycle=4.0,  # SSE4: 2 adds + 2 muls per cycle
        tdp_watts=80.0,
        idle_watts=22.0,
    )
    memory = MemorySpec(
        technology="DDR2-800 FB-DIMM",
        capacity_bytes=4 * GIB,  # 8 GB/node over 2 sockets
        channels=4,
        channel_bandwidth=6.4e9,
        stream_efficiency=0.16,  # FSB-limited: ~4 GB/s Triad per socket
        cores_to_saturate=2,  # the shared FSB saturates with two cores
        dimms=4,
        dimm_idle_watts=5.0,  # FB-DIMM AMBs burn power even at idle
        dimm_active_watts=10.0,
    )
    storage = StorageSpec(
        model="7200rpm SATA HDD (Mac Pro)",
        kind=StorageKind.HDD,
        capacity_bytes=320e9,
        seq_write_bandwidth=mbps(70),
        seq_read_bandwidth=mbps(85),
        idle_watts=5.0,
        active_watts=9.0,
    )
    node = NodeSpec(
        name="SystemG node (Mac Pro, 2x Xeon 5462, 8 GB)",
        sockets=2,
        cpu=cpu,
        memory=memory,
        storage=storage,
        nic=_QDR_IB,
        base_watts=55.0,  # large chassis, discrete graphics card idling
    )
    return ClusterSpec(
        name="SystemG",
        node=node,
        num_nodes=num_nodes,
        topology=fat_tree_topology(num_nodes, leaf_radix=16) if num_nodes > 1 else None,
    )


def gpu_cluster(num_nodes: int = 4) -> ClusterSpec:
    """Extension: a Fermi-era GPU system (2 x Xeon X5650 + 2 x Tesla M2050).

    Supports the paper's future-work question about TGI on GPU platforms;
    see ``examples/gpu_system_tgi.py``.
    """
    cpu = CPUSpec(
        model="Intel Xeon X5650 (Westmere)",
        cores=6,
        base_clock_hz=2.66e9,
        flops_per_cycle=4.0,
        tdp_watts=95.0,
        idle_watts=18.0,
    )
    memory = MemorySpec(
        technology="DDR3-1333",
        capacity_bytes=24 * GIB,
        channels=3,
        channel_bandwidth=10.667e9,
        stream_efficiency=0.55,
        dimms=6,
        dimm_idle_watts=1.5,
        dimm_active_watts=4.0,
    )
    storage = StorageSpec(
        model="SATA SSD",
        kind=StorageKind.SSD,
        capacity_bytes=256e9,
        seq_write_bandwidth=mbps(220),
        seq_read_bandwidth=mbps(270),
        idle_watts=1.0,
        active_watts=3.5,
    )
    gpu = AcceleratorSpec(
        model="NVIDIA Tesla M2050",
        peak_flops=515e9,
        memory_bandwidth=148e9,
        memory_bytes=3 * GIB,
        tdp_watts=225.0,
        idle_watts=30.0,
        hpl_efficiency=0.58,
    )
    node = NodeSpec(
        name="GPU node (2x X5650 + 2x M2050)",
        sockets=2,
        cpu=cpu,
        memory=memory,
        storage=storage,
        nic=_QDR_IB,
        accelerators=(gpu, gpu),
        base_watts=50.0,
    )
    return ClusterSpec(name="FermiGPU", node=node, num_nodes=num_nodes)


def modern_cluster(num_nodes: int = 4) -> ClusterSpec:
    """Extension: a contemporary dual-socket EPYC-class system."""
    cpu = CPUSpec(
        model="AMD EPYC 7543 (Milan)",
        cores=32,
        base_clock_hz=2.8e9,
        flops_per_cycle=16.0,  # AVX2 FMA: 2 x 4-wide FMA per cycle
        tdp_watts=225.0,
        idle_watts=65.0,
    )
    memory = MemorySpec(
        technology="DDR4-3200",
        capacity_bytes=256 * GIB,
        channels=8,
        channel_bandwidth=25.6e9,
        stream_efficiency=0.75,
        dimms=8,
        dimm_idle_watts=2.0,
        dimm_active_watts=5.0,
    )
    storage = StorageSpec(
        model="NVMe SSD",
        kind=StorageKind.NVME,
        capacity_bytes=2e12,
        seq_write_bandwidth=gbps(2.5),
        seq_read_bandwidth=gbps(3.5),
        idle_watts=2.0,
        active_watts=8.0,
    )
    nic = InterconnectSpec(
        name="HDR InfiniBand",
        latency_s=0.9e-6,
        bandwidth=gbps(24),
        idle_watts=10.0,
        active_watts=18.0,
    )
    node = NodeSpec(
        name="EPYC node (2x 7543, 512 GB)",
        sockets=2,
        cpu=cpu,
        memory=memory,
        storage=storage,
        nic=nic,
        base_watts=60.0,
    )
    return ClusterSpec(name="ModernEPYC", node=node, num_nodes=num_nodes)
