"""Interconnect (NIC + link) specification.

The communication model in :mod:`repro.sim.communication` is the Hockney
alpha-beta model: a message of ``m`` bytes between two nodes costs
``alpha + m / beta`` seconds per hop, where ``alpha`` is
:attr:`InterconnectSpec.latency_s` and ``beta`` is
:attr:`InterconnectSpec.bandwidth` (bytes/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SpecError
from ..units import format_bandwidth
from ..validation import check_non_negative, check_positive

__all__ = ["InterconnectSpec"]


@dataclass(frozen=True)
class InterconnectSpec:
    """One network adapter and its link.

    Parameters
    ----------
    name:
        e.g. ``"QDR InfiniBand"`` or ``"GigE"``.
    latency_s:
        One-way small-message latency (the Hockney ``alpha``).
    bandwidth:
        Sustained unidirectional bytes/s per link (the Hockney ``1/beta``).
    idle_watts / active_watts:
        Adapter power at idle and while transferring.
    """

    name: str
    latency_s: float
    bandwidth: float
    idle_watts: float = 5.0
    active_watts: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("interconnect name must be non-empty")
        check_positive(self.latency_s, "latency_s", exc=SpecError)
        check_positive(self.bandwidth, "bandwidth", exc=SpecError)
        check_non_negative(self.idle_watts, "idle_watts", exc=SpecError)
        check_positive(self.active_watts, "active_watts", exc=SpecError)
        if self.active_watts < self.idle_watts:
            raise SpecError("active_watts must be >= idle_watts")

    def transfer_time(self, message_bytes: float, *, hops: int = 1) -> float:
        """Hockney time for one point-to-point message over ``hops`` hops."""
        check_non_negative(message_bytes, "message_bytes", exc=SpecError)
        if hops < 1:
            raise SpecError(f"hops must be >= 1, got {hops}")
        return hops * self.latency_s + message_bytes / self.bandwidth

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.latency_s * 1e6:.1f} us latency, "
            f"{format_bandwidth(self.bandwidth)}"
        )
