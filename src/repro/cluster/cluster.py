"""Cluster specification: homogeneous nodes plus an interconnect topology.

A :class:`ClusterSpec` is what benchmarks run against and what the wall-plug
meter wraps (the paper's Figure 1 places the meter between the power outlet
and the *whole* system, so every node contributes to measured power whether
or not the benchmark uses it — this detail drives the shape of all the
energy-efficiency curves and is preserved faithfully here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import SpecError
from ..units import format_flops
from ..validation import check_positive_int
from .node import NodeSpec
from .topology import Topology, star_topology

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster.

    Parameters
    ----------
    name:
        Cluster name, e.g. ``"Fire"`` or ``"SystemG"``.
    node:
        Spec of every node.
    num_nodes:
        Node count.
    topology:
        Interconnect fabric; defaults to a single-switch star, matching the
        small systems in the paper.  Must cover exactly ``num_nodes``
        endpoints.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("cluster name must be non-empty")
        check_positive_int(self.num_nodes, "num_nodes", exc=SpecError)
        if self.topology is None:
            object.__setattr__(self, "topology", star_topology(self.num_nodes))
        if self.topology.num_nodes != self.num_nodes:
            raise SpecError(
                f"topology covers {self.topology.num_nodes} nodes, "
                f"cluster has {self.num_nodes}"
            )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total physical CPU cores in the cluster."""
        return self.num_nodes * self.node.cores

    @property
    def peak_flops(self) -> float:
        """Aggregate CPU peak DP FLOP/s."""
        return self.num_nodes * self.node.peak_flops

    @property
    def total_peak_flops(self) -> float:
        """Aggregate CPU + accelerator peak DP FLOP/s."""
        return self.num_nodes * self.node.total_peak_flops

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate DRAM capacity."""
        return self.num_nodes * self.node.memory_bytes

    @property
    def peak_memory_bandwidth(self) -> float:
        """Aggregate peak DRAM bytes/s."""
        return self.num_nodes * self.node.peak_memory_bandwidth

    @property
    def nominal_idle_watts(self) -> float:
        """Aggregate DC idle power of all nodes."""
        return self.num_nodes * self.node.nominal_idle_watts

    @property
    def nominal_max_watts(self) -> float:
        """Aggregate DC full-load power of all nodes."""
        return self.num_nodes * self.node.nominal_max_watts

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """A copy of this cluster resized to ``num_nodes`` (fresh topology)."""
        check_positive_int(num_nodes, "num_nodes", exc=SpecError)
        return ClusterSpec(name=self.name, node=self.node, num_nodes=num_nodes)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_nodes} x ({self.node.name}), "
            f"{self.total_cores} cores, peak {format_flops(self.peak_flops)}"
        )
