"""Node specification: the unit of power metering and process placement.

A node is ``sockets`` identical CPU packages, each with its own
:class:`~repro.cluster.memory.MemorySpec` (NUMA domains), one local storage
device, one NIC, optional accelerators, and a baseline power floor for
everything else (motherboard, fans, drives spinning, PSU standby losses are
handled separately in :mod:`repro.power.psu`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..exceptions import SpecError
from ..units import format_bytes, format_flops
from ..validation import check_non_negative, check_positive_int
from .accelerator import AcceleratorSpec
from .cpu import CPUSpec
from .memory import MemorySpec
from .nic import InterconnectSpec
from .storage import StorageSpec

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Parameters
    ----------
    name:
        Node model name, e.g. ``"Fire node (2x Opteron 6134)"``.
    sockets:
        Number of CPU packages.
    cpu:
        Spec of each package.
    memory:
        DRAM spec *per socket* (one NUMA domain per socket).
    storage:
        Local storage device.
    nic:
        Network adapter.
    accelerators:
        Optional GPU cards (extension; empty for the paper's systems).
    base_watts:
        Power floor of the node excluding CPU/DRAM/disk/NIC components:
        motherboard, voltage regulators, fans at nominal speed.
    """

    name: str
    sockets: int
    cpu: CPUSpec
    memory: MemorySpec
    storage: StorageSpec
    nic: InterconnectSpec
    accelerators: Tuple[AcceleratorSpec, ...] = field(default_factory=tuple)
    base_watts: float = 40.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("node name must be non-empty")
        check_positive_int(self.sockets, "sockets", exc=SpecError)
        check_non_negative(self.base_watts, "base_watts", exc=SpecError)
        if not isinstance(self.accelerators, tuple):
            object.__setattr__(self, "accelerators", tuple(self.accelerators))

    # ------------------------------------------------------------------
    # Aggregate capability
    # ------------------------------------------------------------------
    @property
    def cores(self) -> int:
        """Total physical cores in the node."""
        return self.sockets * self.cpu.cores

    @property
    def peak_flops(self) -> float:
        """Node CPU peak DP FLOP/s (accelerators excluded; see below)."""
        return self.sockets * self.cpu.peak_flops

    @property
    def accelerator_peak_flops(self) -> float:
        """Summed accelerator DP peak FLOP/s."""
        return sum(acc.peak_flops for acc in self.accelerators)

    @property
    def total_peak_flops(self) -> float:
        """CPU + accelerator peak DP FLOP/s."""
        return self.peak_flops + self.accelerator_peak_flops

    @property
    def memory_bytes(self) -> float:
        """Total node DRAM capacity."""
        return self.sockets * self.memory.capacity_bytes

    @property
    def peak_memory_bandwidth(self) -> float:
        """Node peak DRAM bytes/s across all sockets."""
        return self.sockets * self.memory.peak_bandwidth

    @property
    def sustained_memory_bandwidth(self) -> float:
        """STREAM-sustainable node bytes/s across all sockets."""
        return self.sockets * self.memory.sustained_bandwidth

    # ------------------------------------------------------------------
    # Nominal power envelope (used for spec sheets and sanity checks; the
    # utilization-dependent draw is computed by repro.power)
    # ------------------------------------------------------------------
    @property
    def nominal_idle_watts(self) -> float:
        """DC power with everything idle."""
        return (
            self.base_watts
            + self.sockets * (self.cpu.idle_watts + self.memory.idle_watts)
            + self.storage.idle_watts
            + self.nic.idle_watts
            + sum(acc.idle_watts for acc in self.accelerators)
        )

    @property
    def nominal_max_watts(self) -> float:
        """DC power with every component at full load."""
        return (
            self.base_watts
            + self.sockets * (self.cpu.tdp_watts + self.memory.active_watts)
            + self.storage.active_watts
            + self.nic.active_watts
            + sum(acc.tdp_watts for acc in self.accelerators)
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.sockets}x[{self.cpu.model}] = {self.cores} cores, "
            f"{format_bytes(self.memory_bytes)} RAM, peak {format_flops(self.peak_flops)}"
        )
