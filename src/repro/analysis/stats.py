"""Central-tendency measures for benchmark aggregation.

The paper's related work (Smith, "Characterizing Computer Performance with a
Single Number"; John, "More on Finding a Single Number...") studies which
mean is appropriate for which quantity: arithmetic for times, harmonic for
rates, geometric for ratios, each with weighted variants.  These
implementations back the weighting analysis and give tests independent
oracles (e.g. AM >= GM >= HM).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import MetricError

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "weighted_arithmetic_mean",
    "weighted_geometric_mean",
    "weighted_harmonic_mean",
]


def _validate(values: Sequence[float], *, positive: bool = False) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise MetricError("values must be a non-empty 1-D sequence")
    if not np.isfinite(arr).all():
        raise MetricError("values must be finite")
    if positive and not (arr > 0).all():
        raise MetricError("values must be strictly positive")
    return arr


def _validate_weights(weights: Sequence[float], n: int) -> np.ndarray:
    w = np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise MetricError(f"need {n} weights, got shape {w.shape}")
    if not np.isfinite(w).all() or (w < 0).any():
        raise MetricError("weights must be finite and >= 0")
    total = float(w.sum())
    if abs(total - 1.0) > 1e-9:
        raise MetricError(f"weights must sum to 1, got {total}")
    return w


def arithmetic_mean(values: Sequence[float]) -> float:
    """Eq. 6: ``sum(x) / n``."""
    return float(_validate(values).mean())


def geometric_mean(values: Sequence[float]) -> float:
    """``(prod x)^(1/n)``, computed in log space; requires positive values."""
    arr = _validate(values, positive=True)
    return float(math.exp(np.log(arr).mean()))


def harmonic_mean(values: Sequence[float]) -> float:
    """``n / sum(1/x)``; requires positive values (the mean for rates)."""
    arr = _validate(values, positive=True)
    return float(arr.size / np.sum(1.0 / arr))


def weighted_arithmetic_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Eq. 9: ``sum(w_i x_i)`` with ``sum w = 1``."""
    arr = _validate(values)
    w = _validate_weights(weights, arr.size)
    return float(w @ arr)


def weighted_geometric_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """``prod x_i^(w_i)`` with ``sum w = 1``; requires positive values."""
    arr = _validate(values, positive=True)
    w = _validate_weights(weights, arr.size)
    return float(math.exp(w @ np.log(arr)))


def weighted_harmonic_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """``1 / sum(w_i / x_i)`` with ``sum w = 1``; requires positive values."""
    arr = _validate(values, positive=True)
    w = _validate_weights(weights, arr.size)
    return float(1.0 / np.sum(w / arr))
