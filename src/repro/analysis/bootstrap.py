"""Resampling-based uncertainty for the paper's correlations.

Table II's Pearson coefficients are computed from **eight** scale points.
A correlation from eight samples carries a lot of uncertainty, which the
paper does not quantify; these tools do:

* :func:`bootstrap_pearson_ci` — percentile bootstrap confidence interval
  (pairs resampled with replacement; degenerate resamples with a constant
  series are redrawn);
* :func:`jackknife_pearson` — leave-one-out values, exposing how much a
  single scale point moves the coefficient;
* :func:`bootstrap_mean_ci` — percentile bootstrap interval for a plain
  mean, the baseline statistic behind perf-watch's regression verdicts
  (:mod:`repro.perfwatch.baseline`).

Used by ``tests/test_analysis_bootstrap.py`` and the Table II discussion in
EXPERIMENTS.md; everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import MetricError
from ..rng import RandomState, ensure_rng
from .correlation import pearson

__all__ = [
    "BootstrapCI",
    "bootstrap_mean_ci",
    "bootstrap_pearson_ci",
    "jackknife_pearson",
]

#: Give up after this many redraws of a degenerate (constant) resample.
_MAX_REDRAWS = 1000


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap estimate with its percentile interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        """Interval width — the honest error bar on the estimate."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_pearson_ci(
    x: Sequence[float],
    y: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RandomState = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the Pearson coefficient of (x, y)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if not 0 < confidence < 1:
        raise MetricError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise MetricError(f"resamples must be >= 10, got {resamples}")
    estimate = pearson(x_arr, y_arr)  # validates inputs
    gen = ensure_rng(rng)
    n = x_arr.size
    stats: List[float] = []
    redraws = 0
    while len(stats) < resamples:
        idx = gen.integers(0, n, size=n)
        xs, ys = x_arr[idx], y_arr[idx]
        if np.ptp(xs) == 0 or np.ptp(ys) == 0:
            redraws += 1
            if redraws > _MAX_REDRAWS:
                raise MetricError(
                    "too many degenerate bootstrap resamples; series nearly constant"
                )
            continue
        stats.append(pearson(xs, ys))
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RandomState = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the mean of ``values``.

    Unlike :func:`bootstrap_pearson_ci`, degenerate resamples are fine —
    a constant series has a perfectly well-defined mean — so a
    zero-variance input collapses the interval to a point, and a
    single-sample input yields ``low == high == estimate``.  Both cases
    matter to perf-watch: a scenario whose history is one run, or whose
    timings are quantized to identical values, still needs a baseline.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise MetricError("bootstrap_mean_ci needs a non-empty 1-D series")
    if not np.isfinite(arr).all():
        raise MetricError("bootstrap_mean_ci requires finite values")
    if not 0 < confidence < 1:
        raise MetricError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise MetricError(f"resamples must be >= 10, got {resamples}")
    estimate = float(arr.mean())
    if arr.size == 1 or np.ptp(arr) == 0:
        return BootstrapCI(
            estimate=estimate,
            low=estimate,
            high=estimate,
            confidence=confidence,
            resamples=resamples,
        )
    gen = ensure_rng(rng)
    idx = gen.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        resamples=resamples,
    )


def jackknife_pearson(x: Sequence[float], y: Sequence[float]) -> List[Tuple[int, float]]:
    """Leave-one-out Pearson values: ``[(left_out_index, r), ...]``.

    A large spread across entries means one scale point carries the
    correlation — worth knowing before trusting an 8-point coefficient.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    pearson(x_arr, y_arr)  # validates
    if x_arr.size < 3:
        raise MetricError("jackknife needs at least 3 samples")
    out: List[Tuple[int, float]] = []
    for i in range(x_arr.size):
        mask = np.arange(x_arr.size) != i
        out.append((i, pearson(x_arr[mask], y_arr[mask])))
    return out
