"""Reference-choice sensitivity of TGI rankings.

TGI normalizes each benchmark by the *reference system's* efficiency
(Eq. 3) before averaging (Eq. 4).  Arithmetic means of per-item ratios are
famously not reference-invariant (Smith, CACM 1988): two systems' TGI
*ordering* can flip when the reference changes, because a reference that
is unusually weak on one subsystem inflates every contender's REE there.

These tools measure the exposure:

* :func:`tgi_under_reference` — TGI of measured efficiencies against an
  arbitrary reference;
* :func:`ranking_under_references` — orderings of several systems under
  several references;
* :func:`find_reference_flip` — search a family of references for one that
  inverts a pair's ordering (returns ``None`` when the pair is robust,
  e.g. when one system dominates the other on every benchmark).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.tgi import tgi_from_components
from ..exceptions import MetricError

__all__ = [
    "tgi_under_reference",
    "ranking_under_references",
    "find_reference_flip",
]


def _validate_efficiencies(name: str, efficiencies: Mapping[str, float]) -> None:
    if not efficiencies:
        raise MetricError(f"{name}: efficiencies must be non-empty")
    for benchmark, value in efficiencies.items():
        if not value > 0:
            raise MetricError(f"{name}: EE[{benchmark}] must be > 0, got {value!r}")


def tgi_under_reference(
    efficiencies: Mapping[str, float],
    reference: Mapping[str, float],
    *,
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """TGI of measured per-benchmark efficiencies vs an arbitrary reference.

    Equal weights unless given.
    """
    _validate_efficiencies("system", efficiencies)
    _validate_efficiencies("reference", reference)
    if set(efficiencies) != set(reference):
        raise MetricError(
            f"system covers {sorted(efficiencies)}, reference {sorted(reference)}"
        )
    ree = {name: efficiencies[name] / reference[name] for name in efficiencies}
    if weights is None:
        n = len(ree)
        weights = {name: 1.0 / n for name in ree}
    return tgi_from_components(ree, dict(weights))


def ranking_under_references(
    systems: Mapping[str, Mapping[str, float]],
    references: Mapping[str, Mapping[str, float]],
) -> Dict[str, List[str]]:
    """reference name -> system names ordered by TGI (greener first)."""
    if not systems or not references:
        raise MetricError("need at least one system and one reference")
    out: Dict[str, List[str]] = {}
    for ref_name, reference in references.items():
        scored = sorted(
            systems,
            key=lambda s: tgi_under_reference(systems[s], reference),
            reverse=True,
        )
        out[ref_name] = scored
    return out


def find_reference_flip(
    system_a: Mapping[str, float],
    system_b: Mapping[str, float],
    *,
    ratio_grid: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 10.0),
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """Search for two references that order A and B oppositely.

    References are built as per-benchmark scalings of system A's
    efficiencies over ``ratio_grid``.  Returns ``(ref_pro_a, ref_pro_b)``
    or ``None`` when no grid point flips the pair — which is guaranteed
    when one system's EE dominates the other's on every benchmark, since
    then every REE ratio, hence every weighted mean, orders them the same
    way.
    """
    _validate_efficiencies("system_a", system_a)
    _validate_efficiencies("system_b", system_b)
    if set(system_a) != set(system_b):
        raise MetricError("systems must cover the same benchmarks")
    names = sorted(system_a)
    pro_a = None
    pro_b = None
    for combo in itertools.product(ratio_grid, repeat=len(names)):
        reference = {name: system_a[name] * r for name, r in zip(names, combo)}
        ta = tgi_under_reference(system_a, reference)
        tb = tgi_under_reference(system_b, reference)
        if ta > tb and pro_a is None:
            pro_a = reference
        if tb > ta and pro_b is None:
            pro_b = reference
        if pro_a is not None and pro_b is not None:
            return pro_a, pro_b
    return None
