"""Analysis tooling: correlation, central tendencies, scaling, sensitivity.

Supports the paper's evaluation (Section IV): the Pearson correlation
coefficient used for Table II (:mod:`~repro.analysis.correlation`), the
means studied by the related work it cites (Smith 1988, John 2004;
:mod:`~repro.analysis.stats`), characterization of energy-efficiency scaling
curves (:mod:`~repro.analysis.scaling`), and the weight-space sensitivity
study the paper lists as future work (:mod:`~repro.analysis.sensitivity`).
"""

from .correlation import pearson, spearman, correlation_matrix
from .bootstrap import (
    BootstrapCI,
    bootstrap_mean_ci,
    bootstrap_pearson_ci,
    jackknife_pearson,
)
from .reference_sensitivity import (
    tgi_under_reference,
    ranking_under_references,
    find_reference_flip,
)
from .pareto import ParetoPoint, pareto_front, dominated_by
from .stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    weighted_arithmetic_mean,
    weighted_harmonic_mean,
    weighted_geometric_mean,
)
from .scaling import CurveShape, characterize_curve, relative_range
from .sensitivity import WeightSensitivity, dominant_benchmark, sweep_weight_simplex
from .tables import render_table

__all__ = [
    "pearson",
    "spearman",
    "correlation_matrix",
    "BootstrapCI",
    "bootstrap_mean_ci",
    "bootstrap_pearson_ci",
    "jackknife_pearson",
    "tgi_under_reference",
    "ranking_under_references",
    "find_reference_flip",
    "ParetoPoint",
    "pareto_front",
    "dominated_by",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "weighted_arithmetic_mean",
    "weighted_harmonic_mean",
    "weighted_geometric_mean",
    "CurveShape",
    "characterize_curve",
    "relative_range",
    "WeightSensitivity",
    "dominant_benchmark",
    "sweep_weight_simplex",
    "render_table",
]
