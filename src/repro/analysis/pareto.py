"""Pareto analysis of the performance-power trade space.

Single-number metrics (FLOPS/W, TGI) collapse a two-objective reality:
procurement actually faces a *frontier* of machines where more performance
costs more power.  These helpers identify that frontier so rankings can be
sanity-checked against it — a system that a metric ranks first while being
Pareto-dominated is a red flag for the metric or its weights.

Conventions: performance is maximized, power minimized.  Ties are kept
(two machines with identical coordinates are both on the frontier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from ..exceptions import MetricError
from ..validation import check_non_negative, check_positive

__all__ = ["ParetoPoint", "pareto_front", "dominated_by"]


@dataclass(frozen=True)
class ParetoPoint:
    """One system's position in (performance, power) space."""

    name: str
    performance: float
    power_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise MetricError("point name must be non-empty")
        check_non_negative(self.performance, "performance", exc=MetricError)
        check_positive(self.power_w, "power_w", exc=MetricError)

    def dominates(self, other: "ParetoPoint") -> bool:
        """>= on performance, <= on power, strictly better on at least one."""
        if self.performance < other.performance or self.power_w > other.power_w:
            return False
        return self.performance > other.performance or self.power_w < other.power_w


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated points, sorted by ascending power.

    O(n log n): sweep points by (power asc, performance desc) and keep
    those beating the best performance seen so far.
    """
    if not points:
        raise MetricError("need at least one point")
    names = [p.name for p in points]
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate point names: {names}")
    ordered = sorted(points, key=lambda p: (p.power_w, -p.performance))
    front: List[ParetoPoint] = []
    best_perf = -1.0
    for point in ordered:
        if point.performance > best_perf:
            front.append(point)
            best_perf = point.performance
        elif point.performance == best_perf and front and point.power_w == front[-1].power_w:
            front.append(point)  # exact tie: keep both
    return front


def dominated_by(points: Sequence[ParetoPoint]) -> Mapping[str, List[str]]:
    """name -> names of points that dominate it (empty list = on frontier)."""
    if not points:
        raise MetricError("need at least one point")
    out = {}
    for p in points:
        out[p.name] = sorted(q.name for q in points if q.dominates(p))
    return out
