"""Plain-text table rendering.

Small, dependency-free helper used by reports, experiment drivers, and the
CLI to print paper-style tables (Table I, Table II) and figure series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    align_right_from: int = 1,
) -> str:
    """Render an ASCII table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells; non-strings are ``str()``-ed.
    title:
        Optional title line above the table.
    align_right_from:
        Columns at this index and later are right-aligned (numeric columns);
        earlier columns are left-aligned (labels).
    """
    if not headers:
        raise ValueError("table needs at least one column")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            if j >= align_right_from:
                parts.append(cell.rjust(widths[j]))
            else:
                parts.append(cell.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
