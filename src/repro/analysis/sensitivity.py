"""Weight-space sensitivity analysis (the paper's future work, Section VI).

"We want [to] thoroughly investigate the suitability of different weights
for TGI."  These tools sweep the weight simplex for a suite of REE values
and report how TGI and its benchmark correlations respond:

* :func:`sweep_weight_simplex` — enumerate a regular grid over all valid
  weight assignments;
* :func:`dominant_benchmark` — which benchmark's REE a given weighting makes
  TGI most sensitive to (the partial derivative dTGI/dREE_i is just W_i);
* :class:`WeightSensitivity` — TGI extrema and spread over the simplex for
  one suite result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

from ..exceptions import MetricError
from ..core.tgi import tgi_from_components

__all__ = ["sweep_weight_simplex", "dominant_benchmark", "WeightSensitivity"]


def sweep_weight_simplex(
    benchmarks: Tuple[str, ...], *, steps: int = 10
) -> Iterator[Dict[str, float]]:
    """Yield weight dicts on a regular simplex grid (step ``1/steps``).

    For 3 benchmarks and ``steps=10`` this yields the 66 compositions of 10
    into 3 parts.
    """
    if not benchmarks:
        raise MetricError("need at least one benchmark")
    if len(set(benchmarks)) != len(benchmarks):
        raise MetricError(f"duplicate benchmark names: {benchmarks}")
    if steps < 1:
        raise MetricError(f"steps must be >= 1, got {steps}")
    n = len(benchmarks)

    def compositions(total: int, parts: int):
        if parts == 1:
            yield (total,)
            return
        for head in range(total + 1):
            for tail in compositions(total - head, parts - 1):
                yield (head,) + tail

    for combo in compositions(steps, n):
        yield {name: count / steps for name, count in zip(benchmarks, combo)}


def dominant_benchmark(weights: Mapping[str, float]) -> str:
    """The benchmark TGI is most sensitive to under these weights.

    Since ``TGI = sum W_i REE_i``, the sensitivity ``dTGI/dREE_i = W_i``;
    the largest weight wins (ties broken alphabetically for determinism).
    """
    if not weights:
        raise MetricError("weights must be non-empty")
    best = max(sorted(weights), key=lambda name: weights[name])
    return best


@dataclass(frozen=True)
class WeightSensitivity:
    """TGI spread over the weight simplex for one set of REE values."""

    ree: Dict[str, float]
    steps: int = 20

    def __post_init__(self) -> None:
        if not self.ree:
            raise MetricError("REE must cover at least one benchmark")
        for name, value in self.ree.items():
            if value <= 0:
                raise MetricError(f"REE for {name!r} must be > 0")

    def extremes(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(weights minimizing TGI, weights maximizing TGI).

        On a linear functional over the simplex the extremes sit at the
        vertices: all weight on the smallest / largest REE.  Returned in
        vertex form for clarity.
        """
        names = sorted(self.ree)
        lo = min(names, key=lambda n: self.ree[n])
        hi = max(names, key=lambda n: self.ree[n])
        w_lo = {n: 1.0 if n == lo else 0.0 for n in names}
        w_hi = {n: 1.0 if n == hi else 0.0 for n in names}
        return w_lo, w_hi

    def tgi_range(self) -> Tuple[float, float]:
        """(min TGI, max TGI) over all valid weightings — simply the REE
        extremes, by linearity."""
        values = sorted(self.ree.values())
        return values[0], values[-1]

    def grid(self) -> List[Tuple[Dict[str, float], float]]:
        """(weights, TGI) on the regular simplex grid."""
        names = tuple(sorted(self.ree))
        out = []
        for weights in sweep_weight_simplex(names, steps=self.steps):
            out.append((weights, tgi_from_components(self.ree, weights)))
        return out
