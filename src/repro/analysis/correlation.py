"""Correlation measures (paper Eq. 17 and Table II).

The paper quantifies how well each TGI variant tracks the individual
benchmarks' energy-efficiency curves with the Pearson correlation
coefficient (PCC, Eq. 17).  :func:`pearson` implements it directly (with the
sample standard deviation, matching Eq. 17's ``n-1``); :func:`spearman` is
provided for rank-robustness checks, and :func:`correlation_matrix` builds
Table-II-style grids.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

import numpy as np

from ..exceptions import MetricError

__all__ = ["pearson", "spearman", "correlation_matrix"]


def _validate_pair(x: Sequence[float], y: Sequence[float]):
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 1 or y_arr.ndim != 1:
        raise MetricError("inputs must be 1-D")
    if x_arr.size != y_arr.size:
        raise MetricError(f"length mismatch: {x_arr.size} vs {y_arr.size}")
    if x_arr.size < 2:
        raise MetricError("correlation needs at least 2 samples")
    if not (np.isfinite(x_arr).all() and np.isfinite(y_arr).all()):
        raise MetricError("inputs must be finite")
    return x_arr, y_arr


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Eq. 17: sample Pearson correlation coefficient in [-1, 1].

    Raises :class:`~repro.exceptions.MetricError` when either series is
    constant (the coefficient is undefined).
    """
    x_arr, y_arr = _validate_pair(x, y)
    # An exactly-constant series is degenerate regardless of roundoff: the
    # mean subtraction below can leave nonzero residue (mean of n equal
    # values need not be exactly that value in float64), which would slip
    # past the sx/sy check and return a meaningless coefficient.
    if np.all(x_arr == x_arr[0]) or np.all(y_arr == y_arr[0]):
        raise MetricError("PCC undefined for a constant series")
    dx = x_arr - x_arr.mean()
    dy = y_arr - y_arr.mean()
    sx = math.sqrt(float(dx @ dx))
    sy = math.sqrt(float(dy @ dy))
    if sx == 0 or sy == 0:
        raise MetricError("PCC undefined for a constant series")
    r = float(dx @ dy) / (sx * sy)
    # guard tiny numerical overshoot
    return max(-1.0, min(1.0, r))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average (midrank) ranks, 1-based, ties shared.

    A run of equal values spanning sorted positions ``[i, j]`` all get rank
    ``(i + j) / 2 + 1``.  Vectorized: memoized fleets hand this function
    thousands-long vectors where most entries sit in tie runs (identical
    systems score identically), and a Python-loop walk over them dominates
    the diagnostics cost.
    """
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    n = values.size
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=starts[1:])
    group_of = np.cumsum(starts) - 1
    first = np.flatnonzero(starts)  # each group's first sorted position
    last = np.append(first[1:], n) - 1  # ... and its last, inclusive
    midrank = 0.5 * (first + last) + 1.0
    ranks = np.empty(n, dtype=float)
    ranks[order] = midrank[group_of]
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation: Pearson on average ranks.

    Heavy ties are fine — midranks keep the statistic well-defined (never
    NaN) as long as each series takes at least two distinct values.  A
    fully-constant series (every system memoized to the same score) has no
    rank ordering at all, so it raises
    :class:`~repro.exceptions.MetricError` exactly like :func:`pearson`.
    """
    x_arr, y_arr = _validate_pair(x, y)
    return pearson(_ranks(x_arr), _ranks(y_arr))


def correlation_matrix(
    series: Mapping[str, Sequence[float]],
    targets: Mapping[str, Sequence[float]],
    *,
    method: str = "pearson",
) -> Dict[str, Dict[str, float]]:
    """Table-II-style grid: ``result[row][column]``.

    ``series`` are the rows (e.g. per-benchmark EE curves), ``targets`` the
    columns (e.g. TGI curves under different weights).
    """
    if method == "pearson":
        corr = pearson
    elif method == "spearman":
        corr = spearman
    else:
        raise MetricError(f"unknown method {method!r}")
    return {
        row_name: {col_name: corr(row, col) for col_name, col in targets.items()}
        for row_name, row in series.items()
    }
