"""Characterization of scaling curves.

The paper reads its figures qualitatively ("TGI follows a similar trend to
the energy efficiency of IOzone").  These helpers turn such readings into
testable statements: whether a curve is monotone rising, where it peaks,
and how large its relative swing is.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..exceptions import MetricError

__all__ = ["CurveShape", "characterize_curve", "relative_range"]


class CurveShape(str, enum.Enum):
    """Qualitative shape of a scaling curve."""

    RISING = "rising"  # monotone non-decreasing
    FALLING = "falling"  # monotone non-increasing
    PEAKED = "peaked"  # rises then falls
    VALLEY = "valley"  # falls then rises
    IRREGULAR = "irregular"  # multiple direction changes
    CONSTANT = "constant"


def _validate(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise MetricError("curve needs at least 2 points")
    if not np.isfinite(arr).all():
        raise MetricError("curve values must be finite")
    return arr


def characterize_curve(values: Sequence[float], *, rel_tol: float = 1e-3) -> CurveShape:
    """Classify a curve's shape.

    Steps smaller than ``rel_tol`` times the curve's span count as flat;
    a curve whose every step is flat is :data:`CurveShape.CONSTANT`.
    """
    arr = _validate(values)
    span = float(arr.max() - arr.min())
    if span == 0:
        return CurveShape.CONSTANT
    steps = np.diff(arr)
    signs = []
    for step in steps:
        if abs(step) <= rel_tol * span:
            continue
        signs.append(1 if step > 0 else -1)
    if not signs:
        return CurveShape.CONSTANT
    # collapse runs
    collapsed = [signs[0]]
    for s in signs[1:]:
        if s != collapsed[-1]:
            collapsed.append(s)
    if collapsed == [1]:
        return CurveShape.RISING
    if collapsed == [-1]:
        return CurveShape.FALLING
    if collapsed == [1, -1]:
        return CurveShape.PEAKED
    if collapsed == [-1, 1]:
        return CurveShape.VALLEY
    return CurveShape.IRREGULAR


def relative_range(values: Sequence[float]) -> float:
    """``(max - min) / mean`` — how much a curve swings.

    The benchmark whose EE curve swings most (relative to its level)
    dominates the arithmetic-mean TGI's correlation structure.
    """
    arr = _validate(values)
    mean = float(arr.mean())
    if mean == 0:
        raise MetricError("relative range undefined for zero-mean curve")
    return float((arr.max() - arr.min()) / abs(mean))
