"""Result persistence: JSON campaign archives and meter-log CSV export.

A benchmarking campaign is expensive (on real hardware, days); archiving
the measurements so metrics can be recomputed later with different weights
or references is basic hygiene.  This module serializes the library's
result objects to plain JSON-compatible dicts and back:

* :func:`benchmark_result_to_dict` / :func:`benchmark_result_from_dict`
* :func:`suite_result_to_dict` / :func:`suite_result_from_dict`
* :func:`sweep_result_to_dict` / :func:`sweep_result_from_dict`
* :func:`reference_to_dict` / :func:`reference_from_dict`
* :func:`save_json` / :func:`load_json`
* :func:`trace_to_csv` — a Watts Up?-style ``time,watts`` log

Round-tripped results keep everything the metric layer consumes (the
performance number, the ground-truth power curve, the metered trace), so
``TGICalculator`` works identically on loaded archives.  The archived
cluster is recorded by *name and shape only* — specs are code, not data.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Union

from .benchmarks.base import BenchmarkResult
from .benchmarks.runner import ScalePoint, SweepResult
from .benchmarks.suite import SuiteResult
from .cluster.cluster import ClusterSpec
from .core.ree import ReferenceSet
from .exceptions import ReproError
from .power.trace import PiecewisePower, PowerTrace
from .sim.executor import RunRecord

__all__ = [
    "FORMAT_VERSION",
    "benchmark_result_to_dict",
    "benchmark_result_from_dict",
    "suite_result_to_dict",
    "suite_result_from_dict",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "reference_to_dict",
    "reference_from_dict",
    "atomic_write_text",
    "save_json",
    "load_json",
    "trace_to_csv",
    "trace_from_csv",
]

#: Schema version embedded in every archive.
FORMAT_VERSION = 1


def _cluster_summary(record: RunRecord) -> Dict:
    cluster = record.cluster
    return {
        "name": cluster.name,
        "num_nodes": cluster.num_nodes,
        "cores_per_node": cluster.node.cores,
    }


def benchmark_result_to_dict(result: BenchmarkResult) -> Dict:
    """Serialize one benchmark result (including both power records)."""
    record = result.record
    return {
        "format_version": FORMAT_VERSION,
        "benchmark": result.benchmark,
        "metric_label": result.metric_label,
        "performance": result.performance,
        "scale": result.scale,
        "details": dict(result.details),
        "record": {
            "label": record.label,
            "cluster": _cluster_summary(record),
            "num_ranks": record.num_ranks,
            "makespan_s": record.makespan_s,
            "truth_segments": record.truth.segments,
            "trace_times": record.trace.times.tolist(),
            "trace_watts": record.trace.watts.tolist(),
        },
    }


def benchmark_result_from_dict(data: Dict, *, cluster: ClusterSpec = None) -> BenchmarkResult:
    """Rebuild a benchmark result.

    ``cluster`` optionally re-attaches a live spec; otherwise the record
    carries ``None`` for the cluster (the metric layer never touches it).
    """
    _check_version(data)
    rec = data["record"]
    record = RunRecord(
        label=rec["label"],
        cluster=cluster,
        num_ranks=rec["num_ranks"],
        makespan_s=rec["makespan_s"],
        truth=PiecewisePower([tuple(seg) for seg in rec["truth_segments"]]),
        trace=PowerTrace(rec["trace_times"], rec["trace_watts"]),
    )
    return BenchmarkResult(
        benchmark=data["benchmark"],
        metric_label=data["metric_label"],
        performance=data["performance"],
        scale=data["scale"],
        record=record,
        details=dict(data["details"]),
    )


def suite_result_to_dict(suite_result: SuiteResult) -> Dict:
    """Serialize a whole suite run."""
    return {
        "format_version": FORMAT_VERSION,
        "cores": suite_result.cores,
        "results": [benchmark_result_to_dict(r) for r in suite_result.results],
    }


def suite_result_from_dict(data: Dict, *, cluster: ClusterSpec = None) -> SuiteResult:
    """Rebuild a suite run."""
    _check_version(data)
    return SuiteResult(
        cores=data["cores"],
        results=tuple(
            benchmark_result_from_dict(r, cluster=cluster) for r in data["results"]
        ),
    )


def sweep_result_to_dict(sweep: SweepResult) -> Dict:
    """Serialize a scaling sweep (the raw data behind Figures 2-6)."""
    return {
        "format_version": FORMAT_VERSION,
        "cores": sweep.cores,
        "suites": [suite_result_to_dict(s) for s in sweep.suites],
    }


def sweep_result_from_dict(data: Dict, *, cluster: ClusterSpec = None) -> SweepResult:
    """Rebuild a scaling sweep."""
    _check_version(data)
    return SweepResult(
        points=tuple(ScalePoint(cores=c) for c in data["cores"]),
        suites=tuple(
            suite_result_from_dict(s, cluster=cluster) for s in data["suites"]
        ),
    )


def reference_to_dict(reference: ReferenceSet) -> Dict:
    """Serialize a reference set (the Table-I numbers)."""
    return {
        "format_version": FORMAT_VERSION,
        "system_name": reference.system_name,
        "efficiencies": reference.as_dict(),
    }


def reference_from_dict(data: Dict) -> ReferenceSet:
    """Rebuild a reference set."""
    _check_version(data)
    return ReferenceSet(data["efficiencies"], system_name=data["system_name"])


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via a temp file and ``os.replace``.

    A crash (or a contained job failure unwinding the stack) mid-write can
    otherwise leave a half-serialized archive that poisons every later
    read.  The temp name carries the pid so two processes targeting the
    same path never collide on the intermediate file; the final rename is
    atomic on POSIX and Windows alike.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_json(data: Dict, path: Union[str, Path]) -> None:
    """Write a serialized object to a JSON file (atomically)."""
    atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Dict:
    """Read a JSON archive."""
    return json.loads(Path(path).read_text())


def trace_to_csv(trace: PowerTrace, path: Union[str, Path]) -> None:
    """Export a meter log as ``time_s,watts`` CSV (Watts Up? logger style)."""
    lines = ["time_s,watts"]
    for t, w in zip(trace.times, trace.watts):
        lines.append(f"{t:.3f},{w:.1f}")
    Path(path).write_text("\n".join(lines) + "\n")


def trace_from_csv(path: Union[str, Path]) -> PowerTrace:
    """Import a ``time_s,watts`` CSV meter log (header required).

    Accepts real Watts Up? exports post-processed to two columns as well
    as :func:`trace_to_csv` output.
    """
    lines = Path(path).read_text().strip().splitlines()
    if not lines or lines[0].replace(" ", "") != "time_s,watts":
        raise ReproError(f"{path}: expected a 'time_s,watts' header")
    times: List[float] = []
    watts: List[float] = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != 2:
            raise ReproError(f"{path}:{lineno}: expected 'time,watts', got {line!r}")
        try:
            times.append(float(parts[0]))
            watts.append(float(parts[1]))
        except ValueError as exc:
            raise ReproError(f"{path}:{lineno}: {exc}") from None
    return PowerTrace(times, watts)


def _check_version(data: Dict) -> None:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"archive format version {version!r} not supported "
            f"(this library reads version {FORMAT_VERSION})"
        )
