"""Argument-validation helpers shared across the library.

Specifications and models validate eagerly at construction time so that a
misconfigured cluster or power model fails with a precise message instead of
producing silently wrong energy numbers several layers downstream.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Type

from .exceptions import ReproError

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in_range",
    "check_positive_int",
    "check_finite",
    "check_monotonic",
    "check_same_length",
]


def require(condition: bool, message: str, *, exc: Type[ReproError] = ReproError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_finite(value: float, name: str, *, exc: Type[ReproError] = ReproError) -> float:
    """Ensure ``value`` is a finite real number; return it as float."""
    value = float(value)
    if not math.isfinite(value):
        raise exc(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str, *, exc: Type[ReproError] = ReproError) -> float:
    """Ensure ``value`` is finite and strictly positive; return it as float."""
    value = check_finite(value, name, exc=exc)
    if value <= 0:
        raise exc(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str, *, exc: Type[ReproError] = ReproError) -> float:
    """Ensure ``value`` is finite and >= 0; return it as float."""
    value = check_finite(value, name, exc=exc)
    if value < 0:
        raise exc(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str, *, exc: Type[ReproError] = ReproError) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]; return it as float."""
    value = check_finite(value, name, exc=exc)
    if not 0.0 <= value <= 1.0:
        raise exc(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    exc: Type[ReproError] = ReproError,
) -> float:
    """Ensure ``low <= value <= high`` (bounds optional); return it as float."""
    value = check_finite(value, name, exc=exc)
    if low is not None and value < low:
        raise exc(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise exc(f"{name} must be <= {high}, got {value!r}")
    return value


def check_positive_int(value: int, name: str, *, exc: Type[ReproError] = ReproError) -> int:
    """Ensure ``value`` is an integer >= 1; return it as int.

    Booleans are rejected: ``True`` counting as "1 node" is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise exc(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise exc(f"{name} must be >= 1, got {value!r}")
    return value


def check_monotonic(
    values: Sequence[float],
    name: str,
    *,
    strict: bool = False,
    exc: Type[ReproError] = ReproError,
) -> None:
    """Ensure ``values`` is non-decreasing (or strictly increasing)."""
    for i in range(1, len(values)):
        if strict and values[i] <= values[i - 1]:
            raise exc(f"{name} must be strictly increasing at index {i}")
        if not strict and values[i] < values[i - 1]:
            raise exc(f"{name} must be non-decreasing at index {i}")


def check_same_length(
    name_a: str,
    a: Iterable,
    name_b: str,
    b: Iterable,
    *,
    exc: Type[ReproError] = ReproError,
) -> None:
    """Ensure two sized iterables have equal length."""
    la, lb = len(list(a)), len(list(b))
    if la != lb:
        raise exc(f"{name_a} (len {la}) and {name_b} (len {lb}) must have equal length")
