"""Telemetry sessions and the ambient instrumentation API.

A :class:`TelemetrySession` bundles one :class:`~repro.telemetry.spans.Tracer`
with one :class:`~repro.telemetry.metrics.MetricsRegistry` and pre-declares
the standard instrument set (cache counters, campaign counters, per-benchmark
simulated time/energy/power gauges, the span-duration histogram).

Instrumented code throughout the library never holds a session; it calls the
module-level helpers —

>>> from repro import telemetry as tele
>>> with tele.span("sim.engine.run", ranks=8):
...     pass
>>> tele.count("tgi_cache_lookups_total", result="hit")

— which consult the *ambient* session.  When none is active (the default)
every helper short-circuits on one global ``None`` check and returns a
shared no-op handle: telemetry costs nothing unless a session is activated
via :func:`use` (or :func:`activate`/:func:`deactivate`).

Sessions are process-local.  Campaign pool workers build their own session,
run the job inside it, and ship ``tracer.as_dicts()`` + ``metrics.state()``
back with the payload; the parent absorbs both (see
:mod:`repro.campaign.runner`).
"""

from __future__ import annotations

from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Dict, Iterator, List, Optional, Sequence

from ..exceptions import ReproError
from .metrics import DEFAULT_TIME_BUCKETS_S, MetricsRegistry
from .spans import _NULL_HANDLE, Span, Tracer

__all__ = [
    "TELEMETRY_VERSION",
    "TelemetrySession",
    "activate",
    "deactivate",
    "use",
    "current",
    "active",
    "span",
    "count",
    "gauge",
    "observe",
    "traced",
]

#: Schema version of telemetry JSON exports.
TELEMETRY_VERSION = 1

#: Instruments every session declares up front (kind, name, help).
STANDARD_INSTRUMENTS = (
    ("counter", "tgi_cache_lookups_total", "Result-cache lookups by result (hit/miss/invalidated)."),
    ("counter", "tgi_cache_puts_total", "Result-cache entry writes."),
    ("counter", "tgi_campaign_jobs_total", "Campaign jobs finished, by cache status."),
    ("counter", "tgi_benchmark_runs_total", "Benchmark executions, by benchmark."),
    ("counter", "tgi_timeline_runs_total", "Run timelines captured by the armed power-timeline sink."),
    ("gauge", "tgi_benchmark_time_seconds", "Simulated wall-clock seconds of the last run per benchmark/scale/cluster (the t_i of Eq. 10)."),
    ("gauge", "tgi_benchmark_energy_joules", "Simulated metered joules of the last run per benchmark/scale/cluster (the e_i of Eq. 11)."),
    ("gauge", "tgi_benchmark_power_watts", "Simulated mean wall watts of the last run per benchmark/scale/cluster (the p_i of Eq. 12)."),
)


class TelemetrySession:
    """One tracer + one metrics registry, wired together.

    Every closed span is observed into the ``tgi_span_duration_seconds``
    histogram (fixed :data:`~repro.telemetry.metrics.DEFAULT_TIME_BUCKETS_S`
    boundaries, labelled by span name).
    """

    def __init__(
        self,
        label: str = "session",
        *,
        process: str = "main",
        profile: bool = False,
        profile_top: int = 10,
    ):
        self.label = label
        self.metrics = MetricsRegistry()
        for kind, name, help_text in STANDARD_INSTRUMENTS:
            getattr(self.metrics, kind)(name, help_text)
        self._span_hist = self.metrics.histogram(
            "tgi_span_duration_seconds",
            "Wall-clock duration of telemetry spans, by span name.",
            buckets=DEFAULT_TIME_BUCKETS_S,
        )
        self.tracer = Tracer(
            process=process,
            on_close=self._observe_span,
            profile=profile,
            profile_top=profile_top,
        )

    def _observe_span(self, span: Span) -> None:
        self._span_hist.observe(span.duration_s, name=span.name)

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """All spans recorded in this session."""
        return self.tracer.spans

    def export(self, *, attribution: Optional[Sequence[Dict]] = None) -> Dict:
        """JSON-compatible dump: spans, metrics, optional attribution rows.

        ``epoch_unix``/``epoch_utc`` give the absolute UTC wall-clock
        instant of relative span time 0.0, so exports from different
        sessions and machines can be ordered on one calendar timeline.
        """
        epoch_dt = datetime.fromtimestamp(self.tracer.epoch_unix, tz=timezone.utc)
        out: Dict = {
            "telemetry_version": TELEMETRY_VERSION,
            "label": self.label,
            "epoch_unix": self.tracer.epoch_unix,
            "epoch_utc": epoch_dt.isoformat().replace("+00:00", "Z"),
            "spans": self.tracer.as_dicts(),
            "metrics": self.metrics.as_dict(),
        }
        if attribution is not None:
            out["attribution"] = list(attribution)
        return out

    def to_prometheus(self) -> str:
        """The session's metrics in Prometheus text exposition format."""
        return self.metrics.to_prometheus()


# Ambient session ------------------------------------------------------

_ACTIVE: Optional[TelemetrySession] = None


def current() -> Optional[TelemetrySession]:
    """The ambient session, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def active() -> bool:
    """Whether a telemetry session is currently collecting."""
    return _ACTIVE is not None


def activate(session: TelemetrySession) -> TelemetrySession:
    """Install ``session`` as the ambient collector (one at a time)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ReproError("a telemetry session is already active")
    _ACTIVE = session
    return session


def deactivate() -> None:
    """Remove the ambient session (no-op when none is active)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use(session: Optional[TelemetrySession] = None) -> Iterator[TelemetrySession]:
    """Collect telemetry for the duration of the ``with`` block."""
    session = session or TelemetrySession()
    activate(session)
    try:
        yield session
    finally:
        deactivate()


# Instrumentation helpers (the zero-cost-when-disabled hot path) -------

def span(name: str, **attrs: object):
    """Open a span on the ambient tracer (shared no-op when disabled)."""
    session = _ACTIVE
    if session is None:
        return _NULL_HANDLE
    return session.tracer.span(name, **attrs)


def count(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment an ambient counter (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.metrics.counter(name).inc(amount, **labels)


def gauge(name: str, value: float, **labels: object) -> None:
    """Set an ambient gauge (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.metrics.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into an ambient histogram (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.metrics.histogram(name).observe(value, **labels)


def traced(name: Optional[str] = None, **attrs: object):
    """Decorator form: run the function body inside a span.

    >>> @traced("analysis.bootstrap", samples=1000)
    ... def resample(...): ...
    """
    def decorate(func):
        span_name = name or func.__qualname__

        def wrapper(*args, **kwargs):
            with span(span_name, **attrs):
                return func(*args, **kwargs)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        return wrapper

    return decorate
