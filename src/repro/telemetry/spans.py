"""Structured span tracing on a monotonic clock.

A :class:`Span` is one timed region of work — named, attributed, and
nestable.  The :class:`Tracer` hands out spans through a context-manager
API; nesting is tracked per thread (a stack in ``threading.local``), so
concurrent threads interleave without corrupting each other's parentage.
Spans from worker *processes* cannot share a tracer: workers run their own
tracer and ship finished spans back as dicts, which the parent tracer
:meth:`~Tracer.absorb`\\ s — re-identified, re-parented under the span that
launched the pool, and shifted onto the parent's clock.

All timing uses :func:`time.perf_counter` relative to the tracer's epoch,
so span times are monotonic, start at ~0 for the session, and never go
backwards on clock adjustments.  The tracer also stamps
:attr:`~Tracer.epoch_unix` — the absolute UTC wall-clock instant
(:func:`time.time`) captured at the same moment as the monotonic epoch —
so relative span times from different sessions and machines can be placed
on one calendar timeline (exports carry both; perf-watch records rely on
it).  Span timings are *observability data*: they are volatile run-to-run
and are deliberately excluded from cache keys and manifest fingerprints
(see :mod:`repro.campaign.manifest`).

With ``profile=True`` the tracer attaches a cProfile session to each
outermost span on a thread (cProfile cannot nest) and stores the top-N
cumulative hotspots in the span's ``attrs["profile"]``.  The default
``profile=False`` path costs one attribute check per span, and the
no-session null path is untouched entirely.

When no telemetry session is active the instrumented code paths get the
:data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns a shared no-op
handle — the disabled cost is one global check and one attribute call.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ReproError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_to_dict",
    "span_from_dict",
]


@dataclass
class Span:
    """One timed, named, attributed region of work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    t_start: float
    t_end: Optional[float] = None
    process: str = "main"
    thread: str = "MainThread"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Seconds spanned (0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def set(self, **attrs: object) -> None:
        """Attach attributes to an open span."""
        self.attrs.update(attrs)


def span_to_dict(span: Span) -> Dict:
    """JSON-compatible form of a span (the pool-shipping format)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "t_start": span.t_start,
        "t_end": span.t_end,
        "process": span.process,
        "thread": span.thread,
        "attrs": dict(span.attrs),
    }


def span_from_dict(data: Dict) -> Span:
    """Rebuild a span serialized by :func:`span_to_dict`."""
    return Span(
        span_id=data["span_id"],
        parent_id=data["parent_id"],
        name=data["name"],
        t_start=data["t_start"],
        t_end=data["t_end"],
        process=data.get("process", "main"),
        thread=data.get("thread", "MainThread"),
        attrs=dict(data.get("attrs", {})),
    )


class _SpanHandle:
    """Context manager closing one span; yields the span for ``.set()``."""

    __slots__ = ("_tracer", "span", "_profiler")

    def __init__(self, tracer: "Tracer", span: Span, profiler=None):
        self._tracer = tracer
        self.span = span
        self._profiler = profiler

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        if self._profiler is not None:
            self._tracer._finish_profile(self.span, self._profiler)
        self._tracer._close(self.span)
        return False

    # Convenience so call sites can treat the handle like the span.
    @property
    def span_id(self) -> int:
        return self.span.span_id

    @property
    def t_start(self) -> float:
        return self.span.t_start


class Tracer:
    """Collects spans on one monotonic timeline (see module docstring).

    Parameters
    ----------
    process:
        Tag stamped on every span (``"main"``, ``"worker-<pid>"``).
    on_close:
        Optional callback fired with each span as it closes — the session
        uses it to feed the span-duration histogram.
    profile:
        Opt-in cProfile mode: each outermost span on a thread runs under a
        profiler and receives its top-``profile_top`` cumulative hotspots
        in ``attrs["profile"]`` when it closes.
    profile_top:
        How many hotspot rows to keep per profiled span.
    """

    enabled = True

    def __init__(
        self,
        *,
        process: str = "main",
        on_close: Optional[Callable[[Span], None]] = None,
        profile: bool = False,
        profile_top: int = 10,
    ):
        self.process = process
        self._on_close = on_close
        # Capture both clocks back-to-back: epoch_unix is the UTC
        # wall-clock meaning of relative span time 0.0.
        self._epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self.profile = bool(profile)
        self.profile_top = int(profile_top)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []  # in start order; t_end filled on close
        self._next_id = 0

    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Seconds since this tracer's epoch (the span time base)."""
        return time.perf_counter() - self._epoch

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        """Open a span as a context manager; the body runs inside it."""
        if not name:
            raise ReproError("span name must be non-empty")
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                span_id=span_id,
                parent_id=parent,
                name=name,
                t_start=self.clock(),
                process=self.process,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
            )
            self._spans.append(span)
        stack.append(span)
        profiler = None
        if self.profile and not getattr(self._local, "profiling", False):
            import cProfile

            profiler = cProfile.Profile()
            self._local.profiling = True
            profiler.enable()
        return _SpanHandle(self, span, profiler)

    def _finish_profile(self, span: Span, profiler) -> None:
        """Stop a span's profiler and attach its hotspot digest."""
        from .profiling import profile_hotspots

        profiler.disable()
        self._local.profiling = False
        span.attrs["profile"] = profile_hotspots(profiler, top=self.profile_top)

    def _close(self, span: Span) -> None:
        span.t_end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mismatched nesting: drop it and everything above
            del stack[stack.index(span):]
        if self._on_close is not None:
            self._on_close(span)

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """All spans recorded so far, in start order."""
        with self._lock:
            return list(self._spans)

    @property
    def finished(self) -> List[Span]:
        """Closed spans only."""
        return [s for s in self.spans if s.t_end is not None]

    def absorb(
        self,
        span_dicts: Sequence[Dict],
        *,
        parent_id: Optional[int] = None,
        offset_s: float = 0.0,
    ) -> List[Span]:
        """Merge spans shipped back from a worker process.

        Worker span ids are remapped into this tracer's id space, worker
        root spans are re-parented under ``parent_id``, and all times are
        shifted by ``offset_s`` (the parent-clock instant the worker
        timeline started) so the merged tree stays roughly aligned.
        """
        absorbed: List[Span] = []
        with self._lock:
            id_map: Dict[int, int] = {}
            for data in span_dicts:
                id_map[data["span_id"]] = self._next_id
                self._next_id += 1
            for data in span_dicts:
                span = span_from_dict(data)
                span.span_id = id_map[span.span_id]
                span.parent_id = (
                    id_map[span.parent_id]
                    if span.parent_id in id_map
                    else parent_id
                )
                span.t_start += offset_s
                if span.t_end is not None:
                    span.t_end += offset_s
                self._spans.append(span)
                absorbed.append(span)
        return absorbed

    def as_dicts(self) -> List[Dict]:
        """All spans as JSON-compatible dicts (the export/shipping form)."""
        return [span_to_dict(s) for s in self.spans]


class _NullSpan:
    """The span stand-in instrumented code sees when telemetry is off."""

    __slots__ = ()
    span_id = None
    t_start = 0.0

    def set(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullHandle:
    __slots__ = ()
    span_id = None
    t_start = 0.0

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Zero-cost tracer: every ``span()`` is the same no-op handle."""

    enabled = False
    profile = False
    epoch_unix = 0.0

    @property
    def spans(self) -> List[Span]:
        return []

    finished = spans

    def span(self, name: str, **attrs: object) -> _NullHandle:
        return _NULL_HANDLE

    def as_dicts(self) -> List[Dict]:
        return []


#: Shared null tracer used whenever no session is active.
NULL_TRACER = NullTracer()
