"""cProfile-backed hotspot extraction for spans and perf-watch records.

The tracer's opt-in ``profile=`` mode and the perf-watch runner both need
the same thing from :mod:`cProfile`: a deterministic JSON-compatible
"top-N cumulative hotspots" digest, not the full interactive
:mod:`pstats` experience.  :func:`profile_hotspots` produces that digest;
:func:`profile_callable` wraps one function call in a profiler and returns
the digest alongside the result.

cProfile cannot nest on a thread, so callers that might already be inside
a profiled region must guard themselves (the tracer keeps a per-thread
flag; see :meth:`repro.telemetry.spans.Tracer.span`).
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Hotspot", "profile_hotspots", "profile_callable"]

#: One hotspot row: ``{"func", "calls", "tottime_s", "cumtime_s"}``.
Hotspot = Dict[str, object]


def _format_site(func_key: Tuple[str, int, str]) -> str:
    """``(file, line, name)`` → the pstats-style ``file:line(name)`` label."""
    filename, line, name = func_key
    if filename == "~" and line == 0:  # builtins have no source location
        return name
    return f"{filename}:{line}({name})"


def profile_hotspots(profiler: cProfile.Profile, top: int = 10) -> List[Hotspot]:
    """Top-``top`` functions of ``profiler`` by cumulative time.

    The profiler must be stopped.  Rows are sorted by cumulative seconds
    (descending), ties broken by the formatted call-site label so the
    digest is stable run-to-run for equal-cost entries.  The profiler's
    own bookkeeping frames (``Profile.enable``/``disable``) are dropped.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    # pstats keys entries by the stable (file, line, name) triple, which is
    # what makes the digest comparable across runs.
    stats = pstats.Stats(profiler)
    rows: List[Hotspot] = []
    for func_key, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        name = func_key[2]
        if name in ("enable", "disable") and func_key[0] == "~":
            continue
        rows.append(
            {
                "func": _format_site(func_key),
                "calls": int(nc),
                "tottime_s": float(tt),
                "cumtime_s": float(ct),
            }
        )
    rows.sort(key=lambda r: (-r["cumtime_s"], r["func"]))  # type: ignore[operator]
    return rows[:top]


def profile_callable(
    fn: Callable[..., Any],
    *args: Any,
    top: int = 10,
    **kwargs: Any,
) -> Tuple[Any, List[Hotspot]]:
    """Run ``fn(*args, **kwargs)`` under cProfile; return ``(result, hotspots)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, profile_hotspots(profiler, top=top)
