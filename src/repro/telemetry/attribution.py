"""Energy attribution: where the simulated joules went, per benchmark.

The paper's whole point is that one TGI number hides *where* energy goes;
Section III decomposes it into per-benchmark weights proportional to time
(Eq. 10), energy (Eq. 11), and power (Eq. 12).  This module materializes
that decomposition as an *observability view*: for every run (a suite at
one scale point) it reports each benchmark's simulated seconds, joules and
watts alongside the three normalized weight columns — each weight family
summing to 1 across the suite, computed by the exact
:mod:`repro.core.weights` schemes the metric itself uses, so the view can
never drift from the TGI definition.

The view joins onto span telemetry by construction: attribution rows carry
the same ``(job, cluster, cores, benchmark)`` coordinates the spans are
attributed with, so a trace tree answers "which phase burned wall-clock"
and this table answers "which benchmark burned the simulated joules".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..benchmarks.suite import SuiteResult
    from ..campaign.runner import CampaignResult

__all__ = [
    "AttributionRow",
    "suite_attribution",
    "campaign_attribution",
    "attribution_to_dicts",
    "render_attribution",
]


@dataclass(frozen=True)
class AttributionRow:
    """One benchmark's share of one run's time/energy/power."""

    job_id: str
    cluster: str
    cores: int
    benchmark: str
    time_s: float
    energy_j: float
    power_w: float
    time_weight: float    # Eq. 10: t_i / sum(t)
    energy_weight: float  # Eq. 11: e_i / sum(e)
    power_weight: float   # Eq. 12: p_i / sum(p)


def suite_attribution(
    suite_result: "SuiteResult", *, job_id: str = "", cluster: str = ""
) -> List[AttributionRow]:
    """Attribution rows for one suite run at one scale point."""
    # Lazy import: core.weights pulls in the benchmark layer, which is
    # itself instrumented with this package.
    from ..core.weights import EnergyWeights, PowerWeights, TimeWeights

    w_time = TimeWeights().weights(suite_result)
    w_energy = EnergyWeights().weights(suite_result)
    w_power = PowerWeights().weights(suite_result)
    return [
        AttributionRow(
            job_id=job_id,
            cluster=cluster,
            cores=suite_result.cores,
            benchmark=r.benchmark,
            time_s=r.time_s,
            energy_j=r.energy_j,
            power_w=r.power_w,
            time_weight=w_time[r.benchmark],
            energy_weight=w_energy[r.benchmark],
            power_weight=w_power[r.benchmark],
        )
        for r in suite_result
    ]


def campaign_attribution(result: "CampaignResult") -> List[AttributionRow]:
    """Attribution rows for every scale point of every campaign job.

    Failed jobs have no payload — there is nothing to attribute, so they
    simply contribute no rows.
    """
    rows: List[AttributionRow] = []
    for outcome in result:
        if getattr(outcome, "payload", None) is None:
            continue
        sweep = outcome.sweep
        for suite_result in sweep.suites:
            rows.extend(
                suite_attribution(
                    suite_result,
                    job_id=outcome.job.job_id,
                    cluster=outcome.payload["cluster_name"],
                )
            )
    return rows


def attribution_to_dicts(rows: Sequence[AttributionRow]) -> List[Dict]:
    """JSON-compatible form (what telemetry exports embed)."""
    return [
        {
            "job_id": r.job_id,
            "cluster": r.cluster,
            "cores": r.cores,
            "benchmark": r.benchmark,
            "time_s": r.time_s,
            "energy_j": r.energy_j,
            "power_w": r.power_w,
            "time_weight": r.time_weight,
            "energy_weight": r.energy_weight,
            "power_weight": r.power_weight,
        }
        for r in rows
    ]


def render_attribution(
    rows: Sequence[AttributionRow], *, title: str = "Energy attribution (Eqs. 10-12)"
) -> str:
    """Paper-style table of the attribution view."""
    from ..analysis.tables import render_table

    cells = [
        [
            r.job_id,
            r.cluster,
            r.cores,
            r.benchmark,
            f"{r.time_s:.1f}",
            f"{r.energy_j / 1e6:.3f}",
            f"{r.power_w / 1e3:.2f}",
            f"{r.time_weight:.3f}",
            f"{r.energy_weight:.3f}",
            f"{r.power_weight:.3f}",
        ]
        for r in rows
    ]
    return render_table(
        ["job", "system", "cores", "benchmark", "t (s)", "E (MJ)", "P (kW)",
         "w_time", "w_energy", "w_power"],
        cells,
        title=title,
        align_right_from=2,
    )
