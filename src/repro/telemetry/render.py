"""Human rendering of span telemetry: tree view and slowest-span table.

The ``tgi trace`` verb is a thin wrapper around these.  Both functions
accept live :class:`~repro.telemetry.spans.Span` objects or the dict form
a telemetry JSON export carries, so a saved trace renders identically to a
fresh one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .spans import Span, span_from_dict

__all__ = ["render_span_tree", "slowest_spans", "render_slowest"]

_SpanLike = Union[Span, Dict]


def _as_spans(spans: Sequence[_SpanLike]) -> List[Span]:
    return [s if isinstance(s, Span) else span_from_dict(s) for s in spans]


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def _format_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_span_tree(spans: Sequence[_SpanLike]) -> str:
    """Box-drawn tree of the span forest, children in start order."""
    resolved = _as_spans(spans)
    if not resolved:
        return "(no spans recorded)"
    by_id = {s.span_id: s for s in resolved}
    children: Dict[Optional[int], List[Span]] = {}
    for s in resolved:
        # A parent outside the collected set (absorbed fragments) renders
        # the span as a root rather than dropping it.
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.t_start, s.span_id))

    lines: List[str] = []

    def emit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        proc = f" [{span.process}]" if span.process != "main" else ""
        lines.append(
            f"{prefix}{connector}{span.name}  "
            f"{_format_duration(span.duration_s)}{proc}{_format_attrs(span.attrs)}"
        )
        kids = children.get(span.span_id, [])
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1, False)

    roots = children.get(None, [])
    for root in roots:
        emit(root, "", True, True)
    return "\n".join(lines)


def slowest_spans(spans: Sequence[_SpanLike], top: int = 10) -> List[Span]:
    """The ``top`` longest finished spans, slowest first."""
    finished = [s for s in _as_spans(spans) if s.t_end is not None]
    finished.sort(key=lambda s: (-s.duration_s, s.span_id))
    return finished[: max(0, top)]


def render_slowest(spans: Sequence[_SpanLike], top: int = 10) -> str:
    """Table of the slowest spans (the trace verb's hot-spot summary)."""
    from ..analysis.tables import render_table

    rows = [
        [
            s.name,
            _format_duration(s.duration_s),
            s.process,
            " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items())),
        ]
        for s in slowest_spans(spans, top)
    ]
    return render_table(
        ["span", "duration", "process", "attributes"],
        rows,
        title=f"Top {len(rows)} slowest spans",
        align_right_from=1,
    )
