"""Telemetry: structured tracing, metrics, and energy attribution.

The observability layer of the reproduction.  Three pieces:

:mod:`~repro.telemetry.spans`
    :class:`Tracer` / :class:`Span` — monotonic-clock, nestable,
    thread-aware spans with a pool-safe ship-and-absorb protocol for
    campaign workers.  :data:`NULL_TRACER` is the zero-cost default.
:mod:`~repro.telemetry.metrics`
    :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
    deterministic JSON and Prometheus text exposition exports; mergeable
    across processes.
:mod:`~repro.telemetry.attribution`
    The Eq. 10-12 energy-attribution view: per-benchmark simulated
    time/energy/power with the paper's weight decomposition.

Instrumented code uses the ambient helpers (zero cost unless a session is
active):

>>> from repro import telemetry as tele
>>> with tele.use() as session:
...     with tele.span("my.phase", detail="x"):
...         tele.count("tgi_benchmark_runs_total", benchmark="HPL")
>>> len(session.spans)
1

See ``docs/telemetry.md`` for the full API and exporter formats.
"""

from .attribution import (
    AttributionRow,
    attribution_to_dicts,
    campaign_attribution,
    render_attribution,
    suite_attribution,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import Hotspot, profile_callable, profile_hotspots
from .render import render_slowest, render_span_tree, slowest_spans
from .session import (
    TELEMETRY_VERSION,
    TelemetrySession,
    activate,
    active,
    count,
    current,
    deactivate,
    gauge,
    observe,
    span,
    traced,
    use,
)
from .spans import NULL_TRACER, NullTracer, Span, Tracer, span_from_dict, span_to_dict

__all__ = [
    "AttributionRow",
    "attribution_to_dicts",
    "campaign_attribution",
    "render_attribution",
    "suite_attribution",
    "DEFAULT_TIME_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Hotspot",
    "profile_callable",
    "profile_hotspots",
    "render_slowest",
    "render_span_tree",
    "slowest_spans",
    "TELEMETRY_VERSION",
    "TelemetrySession",
    "activate",
    "active",
    "count",
    "current",
    "deactivate",
    "gauge",
    "observe",
    "span",
    "traced",
    "use",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "span_from_dict",
    "span_to_dict",
]
