"""Metrics registry: counters, gauges, histograms; JSON + Prometheus export.

Deliberately small and deterministic:

* instruments are named per the Prometheus data model and carry optional
  string labels (``counter.inc(1, status="hit")``);
* histograms use **fixed bucket boundaries** given at creation, so two runs
  that observe the same values produce byte-identical exports;
* exports are sorted — by metric name, then by label set — so JSON dumps
  and text exposition are stable under dict-ordering accidents;
* a registry can snapshot itself to a plain picklable :meth:`~MetricsRegistry.state`
  and :meth:`~MetricsRegistry.merge` another registry's state: that is how
  campaign pool workers ship their counts back to the parent process
  (counters and histogram buckets add; gauges last-write-win per label set).

No global registry lives here — ambient access goes through the session
layer (:mod:`repro.telemetry.session`), which is what makes disabled
telemetry free.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError

__all__ = [
    "DEFAULT_TIME_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Fixed span-latency boundaries (seconds).  Chosen once so histogram
#: output is deterministic across runs and machines.
DEFAULT_TIME_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Internal key for one labelled time series: sorted (label, value) pairs.
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ReproError(f"invalid metric label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Stable text form: integral floats print as integers."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _Instrument:
    """Shared naming/help plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name or ""):
            raise ReproError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[_LabelKey, float]]:
        return sorted(self._values.items())


class Gauge(_Instrument):
    """Last-written value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def samples(self) -> List[Tuple[_LabelKey, float]]:
        return sorted(self._values.items())


class Histogram(_Instrument):
    """Fixed-boundary histogram with per-label bucket counts and sums."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
    ):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ReproError(f"histogram {name} buckets must be strictly ascending")
        if not all(math.isfinite(b) for b in bounds):
            raise ReproError(f"histogram {name} buckets must be finite")
        self.buckets = bounds
        # One count per finite bucket plus the +Inf overflow bucket.
        self._counts: Dict[_LabelKey, List[int]] = {}
        self._sums: Dict[_LabelKey, float] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
        counts[bisect_left(self.buckets, value)] += 1
        self._sums[key] += value

    def count(self, **labels: object) -> int:
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def cumulative_buckets(self, key: _LabelKey) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative (le, count) pairs, ending at +Inf."""
        counts = self._counts.get(key, [0] * (len(self.buckets) + 1))
        out = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((_format_value(bound), running))
        out.append(("+Inf", running + counts[-1]))
        return out

    def samples(self) -> List[Tuple[_LabelKey, List[int]]]:
        return sorted((k, list(v)) for k, v in self._counts.items())


class MetricsRegistry:
    """Create-or-get instrument factory plus the exporters."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    # -- factories ------------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- JSON export ----------------------------------------------------
    def as_dict(self) -> Dict:
        """Deterministic JSON-compatible dump of every instrument."""
        out: Dict[str, Dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry: Dict = {"kind": instrument.kind, "help": instrument.help}
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(key),
                        "counts": counts,
                        "count": sum(counts),
                        "sum": instrument._sums[key],
                    }
                    for key, counts in instrument.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in instrument.samples()
                ]
            out[name] = entry
        return out

    # -- Prometheus text exposition ------------------------------------
    def to_prometheus(self) -> str:
        """Text exposition format (version 0.0.4), deterministically sorted."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, _ in instrument.samples():
                    for le, count in instrument.cumulative_buckets(key):
                        lines.append(
                            f"{name}_bucket{_render_labels(key, [('le', le)])} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(instrument._sums[key])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {instrument.count(**dict(key))}"
                    )
            else:
                for key, value in instrument.samples():
                    lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- pool shipping --------------------------------------------------
    def state(self) -> Dict:
        """Plain picklable snapshot for shipping across processes."""
        state: Dict[str, Dict] = {}
        for name, instrument in self._instruments.items():
            entry: Dict = {"kind": instrument.kind, "help": instrument.help}
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["counts"] = {k: list(v) for k, v in instrument._counts.items()}
                entry["sums"] = dict(instrument._sums)
            else:
                entry["values"] = dict(instrument._values)
            state[name] = entry
        return state

    def merge(self, state: Dict) -> None:
        """Fold a worker's :meth:`state` into this registry.

        Counters and histogram buckets add; gauges take the shipped value
        per label set (each labelled point is written by exactly one job in
        a campaign, so last-write-wins is collision-free in practice).
        """
        for name, entry in state.items():
            kind = entry["kind"]
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for key, value in entry["values"].items():
                    counter._values[key] = counter._values.get(key, 0.0) + value
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                gauge._values.update(entry["values"])
            elif kind == "histogram":
                hist = self.histogram(
                    name, entry.get("help", ""), buckets=entry["buckets"]
                )
                if tuple(entry["buckets"]) != hist.buckets:
                    raise ReproError(
                        f"histogram {name} bucket mismatch while merging"
                    )
                for key, counts in entry["counts"].items():
                    mine = hist._counts.setdefault(key, [0] * (len(hist.buckets) + 1))
                    for i, n in enumerate(counts):
                        mine[i] += n
                    hist._sums[key] = hist._sums.get(key, 0.0) + entry["sums"][key]
            else:
                raise ReproError(f"unknown instrument kind {kind!r} in state")
