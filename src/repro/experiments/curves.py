"""Figures 2-4: per-benchmark energy-efficiency scaling curves.

Each result carries the x-axis (MPI processes or nodes), the
energy-efficiency series in the paper's display units (MFLOPS/W for HPL,
MB/s/W for STREAM and IOzone), and the underlying performance/power series,
plus a ``format()`` that prints the figure as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..analysis.scaling import CurveShape, characterize_curve
from ..analysis.tables import render_table
from ..units import MEGA
from .runner import SharedContext

__all__ = [
    "EfficiencyCurveResult",
    "run_fig2_hpl",
    "run_fig3_stream",
    "run_fig4_iozone",
]


@dataclass(frozen=True)
class EfficiencyCurveResult:
    """One of Figures 2-4."""

    figure: str
    benchmark: str
    x_label: str
    unit_label: str  # display unit of the EE axis
    x: Tuple[int, ...]
    efficiency: Tuple[float, ...]  # in display units
    performance: Tuple[float, ...]  # base units
    power_w: Tuple[float, ...]
    time_s: Tuple[float, ...]

    @property
    def shape(self) -> CurveShape:
        """Qualitative shape of the EE curve."""
        return characterize_curve(self.efficiency)

    def format(self) -> str:
        """Render the figure's series as a table."""
        rows = []
        for i, x in enumerate(self.x):
            rows.append(
                [
                    x,
                    f"{self.efficiency[i]:.2f}",
                    f"{self.performance[i]:.4g}",
                    f"{self.power_w[i]:.0f}",
                    f"{self.time_s[i]:.1f}",
                ]
            )
        return render_table(
            [self.x_label, f"EE ({self.unit_label})", "Performance", "Power (W)", "Time (s)"],
            rows,
            title=f"{self.figure}: energy efficiency of {self.benchmark} (shape: {self.shape.value})",
        )


def _curve(
    context: SharedContext, benchmark: str, figure: str, x_label: str, unit_label: str,
    *, x_is_nodes: bool = False,
) -> EfficiencyCurveResult:
    sweep = context.sweep
    if x_is_nodes:
        cores_per_node = context.config.fire_cluster().node.cores
        x = tuple(c // cores_per_node for c in sweep.cores)
    else:
        x = tuple(sweep.cores)
    ee = sweep.efficiency_series(benchmark) / MEGA  # MFLOPS/W or MB/s/W
    return EfficiencyCurveResult(
        figure=figure,
        benchmark=benchmark,
        x_label=x_label,
        unit_label=unit_label,
        x=x,
        efficiency=tuple(ee.tolist()),
        performance=tuple(sweep.series(benchmark, "performance").tolist()),
        power_w=tuple(sweep.series(benchmark, "power_w").tolist()),
        time_s=tuple(sweep.series(benchmark, "time_s").tolist()),
    )


def run_fig2_hpl(context: SharedContext) -> EfficiencyCurveResult:
    """Figure 2: MFLOPS/W of HPL vs. number of MPI processes on Fire."""
    return _curve(context, "HPL", "Figure 2", "MPI processes", "MFLOPS/W")


def run_fig3_stream(context: SharedContext) -> EfficiencyCurveResult:
    """Figure 3: MB/s/W of STREAM Triad vs. number of MPI processes on Fire."""
    return _curve(context, "STREAM", "Figure 3", "MPI processes", "MBPS/W")


def run_fig4_iozone(context: SharedContext) -> EfficiencyCurveResult:
    """Figure 4: MB/s/W of the IOzone write test vs. number of nodes on Fire."""
    return _curve(
        context, "IOzone", "Figure 4", "Nodes", "MBPS/W", x_is_nodes=True
    )
