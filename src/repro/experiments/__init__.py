"""Experiment drivers: one per table and figure of the paper's evaluation.

Each driver regenerates the rows/series of its artifact from the simulated
substrate and returns a structured result with a ``format()`` method for
text output.  The calibrated run configuration shared by all experiments
lives in :mod:`~repro.experiments.config`; drivers are looked up by id
(``"fig2"`` ... ``"table2"``) through :mod:`~repro.experiments.registry`.

=========  ==========================================================
id         artifact
=========  ==========================================================
fig2       Figure 2 — energy efficiency of HPL vs. MPI processes
fig3       Figure 3 — energy efficiency of STREAM vs. MPI processes
fig4       Figure 4 — energy efficiency of IOzone vs. nodes
fig5       Figure 5 — TGI (arithmetic mean) vs. cores
fig6       Figure 6 — TGI under time/energy/power weights vs. cores
table1     Table I — suite performance and power on the reference
table2     Table II — PCC between benchmark EEs and TGI variants
=========  ==========================================================
"""

from .config import (
    ExperimentConfig,
    PAPER_CONFIG,
    build_suite,
    build_reference,
    build_executor,
    config_to_dict,
    config_from_dict,
)
from .registry import EXPERIMENTS, get_experiment, run_experiment, execute_experiment
from .runner import run_all, SharedContext

__all__ = [
    "ExperimentConfig",
    "PAPER_CONFIG",
    "build_suite",
    "build_reference",
    "build_executor",
    "config_to_dict",
    "config_from_dict",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "execute_experiment",
    "run_all",
    "SharedContext",
]
