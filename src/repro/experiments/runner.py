"""Shared execution context and the run-everything entry point.

All figure experiments slice the same underlying campaign: one suite sweep
over the Fire cluster plus one reference run on SystemG.  Running that
campaign takes a few seconds of simulation, so :class:`SharedContext`
computes it lazily once and every driver reuses it — exactly how the paper's
authors computed all their figures from one set of measurement logs.

A context can optionally execute through a
:class:`~repro.campaign.runner.CampaignRunner`, which runs the reference and
the sweep as two independent jobs (in parallel when the runner has workers)
and consults the runner's result cache.  Both jobs seed fresh executors the
same way the serial path does, so campaign-backed contexts reproduce the
serial numbers bit-for-bit — the golden tests pin this.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from .. import telemetry as tele
from ..benchmarks.runner import ScalingSweep, SweepResult
from ..benchmarks.suite import SuiteResult
from ..core.ree import ReferenceSet
from .config import (
    ExperimentConfig,
    PAPER_CONFIG,
    build_executor,
    build_reference,
    build_suite,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign uses config)
    from ..campaign.runner import CampaignRunner

__all__ = ["SharedContext", "run_all"]


class SharedContext:
    """Lazily-computed campaign shared by the experiment drivers.

    Parameters
    ----------
    config:
        The run configuration (defaults to the calibrated paper config).
    campaign:
        Optional :class:`~repro.campaign.runner.CampaignRunner`; when given,
        the reference run and the Fire sweep execute as campaign jobs —
        cached, and in parallel if the runner has workers.
    """

    def __init__(
        self,
        config: ExperimentConfig = PAPER_CONFIG,
        *,
        campaign: Optional["CampaignRunner"] = None,
    ):
        self.config = config
        self.campaign = campaign
        self._reference: Optional[Tuple[ReferenceSet, SuiteResult]] = None
        self._sweep: Optional[SweepResult] = None

    # Campaign-backed path ---------------------------------------------
    def _run_campaign(self) -> None:
        """Fill both artifacts from one two-job campaign run."""
        from ..campaign.jobs import paper_jobs

        with tele.span("experiments.campaign_context"):
            result = self.campaign.run(paper_jobs(self.config), label="paper-context")
        ref_outcome = result["reference"]
        ref_suite = result.suite("reference")
        reference = ReferenceSet.from_suite_result(
            ref_suite, system_name=ref_outcome.payload["cluster_name"]
        )
        self._reference = (reference, ref_suite)
        self._sweep = result.sweep("fire-sweep")

    @property
    def reference(self) -> ReferenceSet:
        """Reference efficiencies from the SystemG run."""
        if self._reference is None:
            if self.campaign is not None:
                self._run_campaign()
            else:
                with tele.span("experiments.reference"):
                    self._reference = build_reference(self.config)
        return self._reference[0]

    @property
    def reference_suite_result(self) -> SuiteResult:
        """The SystemG suite run itself (Table I's raw data)."""
        if self._reference is None:
            _ = self.reference
        return self._reference[1]

    @property
    def sweep(self) -> SweepResult:
        """The Fire scaling sweep behind Figures 2-6."""
        if self._sweep is None:
            if self.campaign is not None:
                self._run_campaign()
            else:
                with tele.span("experiments.sweep"):
                    executor = build_executor(self.config)
                    suite = build_suite(self.config)
                    self._sweep = ScalingSweep(suite, list(self.config.core_counts)).run(
                        executor
                    )
        return self._sweep


def run_all(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    campaign: Optional["CampaignRunner"] = None,
) -> Dict[str, object]:
    """Run every registered experiment, returning id -> result."""
    from .registry import EXPERIMENTS  # local import to avoid cycle

    context = SharedContext(config, campaign=campaign)
    return {exp_id: entry.run(context) for exp_id, entry in EXPERIMENTS.items()}
