"""Shared execution context and the run-everything entry point.

All figure experiments slice the same underlying campaign: one suite sweep
over the Fire cluster plus one reference run on SystemG.  Running that
campaign takes a few seconds of simulation, so :class:`SharedContext`
computes it lazily once and every driver reuses it — exactly how the paper's
authors computed all their figures from one set of measurement logs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..benchmarks.runner import ScalingSweep, SweepResult
from ..benchmarks.suite import SuiteResult
from ..core.ree import ReferenceSet
from .config import (
    ExperimentConfig,
    PAPER_CONFIG,
    build_executor,
    build_reference,
    build_suite,
)

__all__ = ["SharedContext", "run_all"]


class SharedContext:
    """Lazily-computed campaign shared by the experiment drivers."""

    def __init__(self, config: ExperimentConfig = PAPER_CONFIG):
        self.config = config
        self._reference: Optional[Tuple[ReferenceSet, SuiteResult]] = None
        self._sweep: Optional[SweepResult] = None

    @property
    def reference(self) -> ReferenceSet:
        """Reference efficiencies from the SystemG run."""
        if self._reference is None:
            self._reference = build_reference(self.config)
        return self._reference[0]

    @property
    def reference_suite_result(self) -> SuiteResult:
        """The SystemG suite run itself (Table I's raw data)."""
        if self._reference is None:
            self._reference = build_reference(self.config)
        return self._reference[1]

    @property
    def sweep(self) -> SweepResult:
        """The Fire scaling sweep behind Figures 2-6."""
        if self._sweep is None:
            executor = build_executor(self.config)
            suite = build_suite(self.config)
            self._sweep = ScalingSweep(suite, list(self.config.core_counts)).run(executor)
        return self._sweep


def run_all(config: ExperimentConfig = PAPER_CONFIG) -> Dict[str, object]:
    """Run every registered experiment, returning id -> result."""
    from .registry import EXPERIMENTS  # local import to avoid cycle

    context = SharedContext(config)
    return {exp_id: entry.run(context) for exp_id, entry in EXPERIMENTS.items()}
