"""Experiment registry: id -> driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..exceptions import ExperimentError
from .curves import run_fig2_hpl, run_fig3_stream, run_fig4_iozone
from .runner import SharedContext
from .tables import run_table1_reference, run_table2_pcc
from .tgi_curves import run_fig5_tgi_am, run_fig6_tgi_weighted
from .uncertainty import run_table2_uncertainty
from .capability import run_fire_capability

__all__ = [
    "ExperimentEntry",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "execute_experiment",
]


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    exp_id: str
    description: str
    run: Callable[[SharedContext], object]


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    entry.exp_id: entry
    for entry in (
        ExperimentEntry("fig2", "Energy efficiency of HPL vs. MPI processes", run_fig2_hpl),
        ExperimentEntry("fig3", "Energy efficiency of STREAM vs. MPI processes", run_fig3_stream),
        ExperimentEntry("fig4", "Energy efficiency of IOzone vs. nodes", run_fig4_iozone),
        ExperimentEntry("fig5", "TGI (arithmetic mean) vs. cores", run_fig5_tgi_am),
        ExperimentEntry("fig6", "TGI under time/energy/power weights vs. cores", run_fig6_tgi_weighted),
        ExperimentEntry("table1", "Suite performance and power on the reference system", run_table1_reference),
        ExperimentEntry("table2", "PCC between benchmark EEs and TGI variants", run_table2_pcc),
        ExperimentEntry(
            "table2ci",
            "Extension: bootstrap/jackknife uncertainty on Table II's PCCs",
            run_table2_uncertainty,
        ),
        ExperimentEntry(
            "capability",
            "Fire's memory-sized HPL capability run (Green500-entry view)",
            run_fire_capability,
        ),
    )
}


def get_experiment(exp_id: str) -> ExperimentEntry:
    """Look up an experiment by id."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str, context: SharedContext = None):
    """Run one experiment (fresh context unless one is supplied)."""
    entry = get_experiment(exp_id)
    if context is None:
        context = SharedContext()
    return entry.run(context)


def execute_experiment(exp_id: str, config=None):
    """Pure single-experiment execution: id + config in, result out.

    Unlike :func:`run_experiment`, this takes no live context — it builds
    one from ``config`` (default: the paper config) — so the call is fully
    described by picklable values and can be dispatched to a worker
    process or addressed by a cache.
    """
    from .config import PAPER_CONFIG

    entry = get_experiment(exp_id)
    return entry.run(SharedContext(config if config is not None else PAPER_CONFIG))
