"""Figures 5 and 6: TGI vs. cores under the different weighting schemes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..analysis.tables import render_table
from ..core.tgi import TGICalculator, TGISeries
from ..core.weights import (
    ArithmeticMeanWeights,
    EnergyWeights,
    PowerWeights,
    TimeWeights,
)
from .runner import SharedContext

__all__ = ["TGICurveResult", "TGIWeightedResult", "run_fig5_tgi_am", "run_fig6_tgi_weighted"]


@dataclass(frozen=True)
class TGICurveResult:
    """Figure 5: arithmetic-mean TGI vs. cores, with REE components."""

    cores: Tuple[int, ...]
    series: TGISeries

    def format(self) -> str:
        rows = []
        benchmarks = sorted(self.series.results[0].ree)
        for result in self.series.results:
            rows.append(
                [result.cores, f"{result.value:.4f}"]
                + [f"{result.ree[b]:.4f}" for b in benchmarks]
            )
        return render_table(
            ["Cores", "TGI"] + [f"REE({b})" for b in benchmarks],
            rows,
            title="Figure 5: TGI using the arithmetic mean on Fire",
        )


@dataclass(frozen=True)
class TGIWeightedResult:
    """Figure 6: TGI vs. cores for time/energy/power weights (AM included
    for comparison, as in the paper's discussion)."""

    cores: Tuple[int, ...]
    series_by_weighting: Dict[str, TGISeries]

    def format(self) -> str:
        names = list(self.series_by_weighting)
        rows = []
        for i, cores in enumerate(self.cores):
            rows.append(
                [cores]
                + [f"{self.series_by_weighting[n].values[i]:.4f}" for n in names]
            )
        return render_table(
            ["Cores"] + [f"TGI({n})" for n in names],
            rows,
            title="Figure 6: TGI using weighted arithmetic means on Fire",
        )


def run_fig5_tgi_am(context: SharedContext) -> TGICurveResult:
    """Figure 5: each point is TGI over (HPL, STREAM, IOzone) at that core
    count, equal weights, SystemG reference."""
    calculator = TGICalculator(context.reference, weighting=ArithmeticMeanWeights())
    series = calculator.compute_series(context.sweep)
    return TGICurveResult(cores=tuple(context.sweep.cores), series=series)


def run_fig6_tgi_weighted(context: SharedContext) -> TGIWeightedResult:
    """Figure 6: the same sweep aggregated with time, energy, and power
    weights (Eqs. 10-12)."""
    series: Dict[str, TGISeries] = {}
    for weighting in (ArithmeticMeanWeights(), TimeWeights(), EnergyWeights(), PowerWeights()):
        calculator = TGICalculator(context.reference, weighting=weighting)
        series[weighting.name] = calculator.compute_series(context.sweep)
    return TGIWeightedResult(cores=tuple(context.sweep.cores), series_by_weighting=series)
