"""Fire's capability run — the paper's "delivering 90? GFLOPS" sentence.

The paper states Fire's LINPACK capability in a sentence whose digits the
available text corrupts ("capable of delivering 90 GFLOPS").  This driver
runs the capability configuration (memory-sized N, all 128 cores) on the
modelled Fire and reports the Green500-entry view: Rmax, fraction of Rpeak,
measured power, MFLOPS/W.  EXPERIMENTS.md discusses how the result bears on
the corrupted figure (and on the Fire-interconnect question).  Registered
as experiment id ``capability``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import render_table
from ..benchmarks.hpl import HPLBenchmark
from ..units import MEGA
from .config import build_executor
from .runner import SharedContext

__all__ = ["CapabilityResult", "run_fire_capability"]


@dataclass(frozen=True)
class CapabilityResult:
    """Green500-entry view of the capability run."""

    system: str
    problem_size: int
    rmax_flops: float
    rpeak_flops: float
    power_w: float
    time_s: float

    @property
    def efficiency(self) -> float:
        """Rmax / Rpeak."""
        return self.rmax_flops / self.rpeak_flops

    @property
    def mflops_per_watt(self) -> float:
        """The Green500 metric."""
        return self.rmax_flops / self.power_w / MEGA

    def format(self) -> str:
        rows = [
            [
                self.system,
                f"{self.rmax_flops / 1e9:.1f}",
                f"{self.rpeak_flops / 1e9:.1f}",
                f"{100 * self.efficiency:.1f} %",
                f"{self.power_w / 1e3:.2f}",
                f"{self.mflops_per_watt:.1f}",
                f"{self.problem_size}",
                f"{self.time_s / 60:.1f}",
            ]
        ]
        return render_table(
            ["System", "Rmax (GF)", "Rpeak (GF)", "eff.", "kW", "MFLOPS/W", "N", "min"],
            rows,
            title="Capability run: memory-sized HPL on Fire (Green500-entry view)",
        )


def run_fire_capability(context: SharedContext) -> CapabilityResult:
    """Memory-sized HPL at full scale on the system under test."""
    config = context.config
    executor = build_executor(config)
    bench = HPLBenchmark(
        sizing=("memory", config.hpl_reference_memory_fraction),
        rounds=config.hpl_rounds,
        comm_volume_factor=config.hpl_comm_volume_factor,
        contention_threshold=config.hpl_contention_threshold,
        contention_slope=config.hpl_contention_slope,
    )
    result = bench.run(executor, executor.cluster.total_cores)
    return CapabilityResult(
        system=executor.cluster.name,
        problem_size=int(result.details["problem_size"]),
        rmax_flops=result.performance,
        rpeak_flops=executor.cluster.peak_flops,
        power_w=result.power_w,
        time_s=result.time_s,
    )
