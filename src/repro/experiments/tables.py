"""Tables I and II.

Table I reports the suite's performance and power on the reference system
(SystemG).  Table II reports Pearson correlation coefficients between each
benchmark's energy-efficiency curve and the TGI curve under time, energy,
and power weights; the arithmetic-mean column (quoted in the paper's prose:
IOzone .99, STREAM .96, HPL .58) is included as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.correlation import pearson
from ..analysis.tables import render_table
from ..benchmarks.suite import SuiteResult
from ..core.report import format_suite_result
from ..core.tgi import TGICalculator
from ..core.weights import (
    ArithmeticMeanWeights,
    EnergyWeights,
    PowerWeights,
    TimeWeights,
)
from .runner import SharedContext

__all__ = ["ReferenceTableResult", "PCCTableResult", "run_table1_reference", "run_table2_pcc"]

#: Row order matches the paper's Table II.
_TABLE2_BENCHMARKS = ("IOzone", "STREAM", "HPL")
#: Column order: AM first (prose), then the paper's three weight columns.
_TABLE2_WEIGHTINGS = ("arithmetic-mean", "time", "energy", "power")


@dataclass(frozen=True)
class ReferenceTableResult:
    """Table I: performance and power of the suite on the reference."""

    system_name: str
    suite_result: SuiteResult

    def format(self) -> str:
        return format_suite_result(
            self.suite_result,
            title=f"Table I: performance on {self.system_name}",
        )


@dataclass(frozen=True)
class PCCTableResult:
    """Table II: PCC(benchmark EE, TGI) per weighting scheme."""

    matrix: Dict[str, Dict[str, float]]  # benchmark -> weighting -> PCC

    def pcc(self, benchmark: str, weighting: str) -> float:
        """One cell of the table."""
        return self.matrix[benchmark][weighting]

    def format(self) -> str:
        rows = []
        for benchmark in _TABLE2_BENCHMARKS:
            rows.append(
                [benchmark]
                + [f"{self.matrix[benchmark][w]:.3f}" for w in _TABLE2_WEIGHTINGS]
            )
        return render_table(
            ["Benchmark"] + list(_TABLE2_WEIGHTINGS),
            rows,
            title=(
                "Table II: PCC between energy efficiency of individual "
                "benchmarks and the TGI metric using different weights"
            ),
        )


def run_table1_reference(context: SharedContext) -> ReferenceTableResult:
    """Table I: the reference suite run on SystemG (128 nodes, 1024 cores)."""
    return ReferenceTableResult(
        system_name=context.reference.system_name,
        suite_result=context.reference_suite_result,
    )


def run_table2_pcc(context: SharedContext) -> PCCTableResult:
    """Table II: correlations over the Fire sweep."""
    sweep = context.sweep
    weightings = {
        "arithmetic-mean": ArithmeticMeanWeights(),
        "time": TimeWeights(),
        "energy": EnergyWeights(),
        "power": PowerWeights(),
    }
    tgi_series = {
        name: TGICalculator(context.reference, weighting=w).compute_series(sweep).values
        for name, w in weightings.items()
    }
    matrix: Dict[str, Dict[str, float]] = {}
    for benchmark in _TABLE2_BENCHMARKS:
        ee = sweep.efficiency_series(benchmark)
        matrix[benchmark] = {
            name: pearson(ee, tgi) for name, tgi in tgi_series.items()
        }
    return PCCTableResult(matrix=matrix)
