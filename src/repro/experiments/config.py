"""Calibrated experiment configuration.

These constants pin the run configuration used by every experiment driver.
They were calibrated (see EXPERIMENTS.md, "Calibration") so that the
simulated Fire/SystemG pair reproduces the paper's qualitative results —
most importantly the Pearson correlations between the benchmark
energy-efficiency curves and the TGI variants (Table II and the Section
IV-B prose: IOzone ~.99, STREAM ~.96, HPL ~.58 against arithmetic-mean TGI).

Configuration summary:

* **Sweep**: cores 16..128 in steps of 16 on the 8-node Fire cluster,
  breadth-first placement (Figures 2-6's x-axes).
* **HPL**: fixed N = 36288 (strong scaling, the only configuration whose
  energy-efficiency curve rolls off at scale the way Figure 2's does);
  Hockney communication over Fire's GigE with volume prefactor 2.0; packing
  contention threshold 4 ranks/node, slope 1.5.
* **STREAM**: Triad, sized to ~45 s per point; cores at intensity 0.4
  (bandwidth-stalled).
* **IOzone**: write test, one instance per node, sized to ~45 s.
* **Reference (SystemG)**: same suite, but HPL sized from memory (a
  capability run — reference numbers are published full-machine numbers),
  at the full 128 nodes / 1024 cores.
* **Meters**: Watts Up? PRO model, seeds 7 (Fire) and 1 (SystemG).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

from ..benchmarks import (
    BenchmarkSuite,
    HPLBenchmark,
    IOzoneBenchmark,
    StreamBenchmark,
)
from ..cluster import presets
from ..cluster.cluster import ClusterSpec
from ..core.ree import ReferenceSet
from ..sim.executor import ClusterExecutor

__all__ = [
    "ExperimentConfig",
    "PAPER_CONFIG",
    "build_suite",
    "build_reference",
    "build_executor",
    "config_to_dict",
    "config_from_dict",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything the experiment drivers need, in one immutable object."""

    core_counts: Tuple[int, ...] = (16, 32, 48, 64, 80, 96, 112, 128)
    # HPL (system under test): strong-scaling sweep
    hpl_problem_size: int = 36288
    hpl_rounds: int = 4
    hpl_comm_volume_factor: float = 2.0
    hpl_contention_threshold: int = 4
    hpl_contention_slope: float = 1.5
    # HPL (reference): capability run
    hpl_reference_memory_fraction: float = 0.8
    # STREAM
    stream_target_seconds: float = 45.0
    stream_intensity: float = 0.4
    # IOzone
    iozone_target_seconds: float = 45.0
    # Meter seeds
    fire_seed: int = 7
    reference_seed: int = 1

    def fire_cluster(self) -> ClusterSpec:
        """The system under test."""
        return presets.fire()

    def reference_cluster(self) -> ClusterSpec:
        """The reference system."""
        return presets.system_g()


#: The configuration used throughout the reproduction.
PAPER_CONFIG = ExperimentConfig()


def config_to_dict(config: ExperimentConfig) -> Dict:
    """Canonically serialize a config (field name -> JSON-compatible value).

    Field order follows the dataclass declaration; tuples become lists.
    This is the form the campaign layer hashes into cache keys, so the
    mapping must stay stable for a given set of field values.
    """
    data = dataclasses.asdict(config)
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in data.items()
    }


def config_from_dict(data: Dict) -> ExperimentConfig:
    """Rebuild a config serialized by :func:`config_to_dict`."""
    fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"unknown ExperimentConfig fields: {sorted(unknown)}")
    kwargs = dict(data)
    if "core_counts" in kwargs:
        kwargs["core_counts"] = tuple(kwargs["core_counts"])
    return ExperimentConfig(**kwargs)


def build_suite(config: ExperimentConfig = PAPER_CONFIG, *, reference: bool = False) -> BenchmarkSuite:
    """The three-benchmark suite of Section IV-A.

    ``reference=True`` selects the capability-sized HPL used for the
    reference system's published numbers.
    """
    if reference:
        hpl = HPLBenchmark(
            sizing=("memory", config.hpl_reference_memory_fraction),
            rounds=config.hpl_rounds,
        )
    else:
        hpl = HPLBenchmark(
            sizing=("fixed", config.hpl_problem_size),
            rounds=config.hpl_rounds,
            comm_volume_factor=config.hpl_comm_volume_factor,
            contention_threshold=config.hpl_contention_threshold,
            contention_slope=config.hpl_contention_slope,
        )
    return BenchmarkSuite(
        [
            hpl,
            StreamBenchmark(
                target_seconds=config.stream_target_seconds,
                intensity=config.stream_intensity,
            ),
            IOzoneBenchmark(target_seconds=config.iozone_target_seconds),
        ]
    )


def build_executor(config: ExperimentConfig = PAPER_CONFIG, *, reference: bool = False) -> ClusterExecutor:
    """A metered executor for the system under test or the reference."""
    if reference:
        return ClusterExecutor(config.reference_cluster(), rng=config.reference_seed)
    return ClusterExecutor(config.fire_cluster(), rng=config.fire_seed)


def build_reference(config: ExperimentConfig = PAPER_CONFIG):
    """Run the reference suite and return (ReferenceSet, SuiteResult).

    This is the paper's Table I measurement: the full suite on SystemG at
    its full 128-node / 1024-core configuration.
    """
    executor = build_executor(config, reference=True)
    suite = build_suite(config, reference=True)
    result = suite.run(executor, executor.cluster.total_cores)
    reference = ReferenceSet.from_suite_result(result, system_name=executor.cluster.name)
    return reference, result
