"""Table II with uncertainty — an extension artifact beyond the paper.

The paper reports Pearson coefficients from eight scale points with no
error bars.  This driver recomputes the arithmetic-mean column of Table II
together with seeded bootstrap confidence intervals and jackknife ranges
(:mod:`repro.analysis.bootstrap`), making the fragility of an 8-point
correlation explicit.  Registered as experiment id ``table2ci``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..analysis.bootstrap import BootstrapCI, bootstrap_pearson_ci, jackknife_pearson
from ..analysis.tables import render_table
from ..core.tgi import TGICalculator
from ..core.weights import ArithmeticMeanWeights
from .runner import SharedContext

__all__ = ["PCCUncertaintyResult", "run_table2_uncertainty"]

#: Seed for the bootstrap streams (results are deterministic).
_BOOTSTRAP_SEED = 1729
_BENCHMARKS = ("IOzone", "STREAM", "HPL")


@dataclass(frozen=True)
class PCCUncertaintyResult:
    """AM-column PCCs with bootstrap CIs and jackknife ranges."""

    intervals: Dict[str, BootstrapCI]
    jackknife_ranges: Dict[str, Tuple[float, float]]

    def format(self) -> str:
        rows = []
        for name in _BENCHMARKS:
            ci = self.intervals[name]
            lo, hi = self.jackknife_ranges[name]
            rows.append(
                [
                    name,
                    f"{ci.estimate:.3f}",
                    f"[{ci.low:+.3f}, {ci.high:+.3f}]",
                    f"[{lo:+.3f}, {hi:+.3f}]",
                ]
            )
        return render_table(
            ["Benchmark", "PCC", "95% bootstrap CI", "jackknife range"],
            rows,
            title=(
                "Table II (extension): uncertainty of the arithmetic-mean "
                "PCCs over 8 scale points"
            ),
        )

    def fragile_benchmarks(self) -> list:
        """Benchmarks whose CI is wider than 0.2 — point estimates not to
        be over-read."""
        return [name for name, ci in self.intervals.items() if ci.width > 0.2]


def run_table2_uncertainty(context: SharedContext) -> PCCUncertaintyResult:
    """Bootstrap/jackknife the AM-weights PCC column."""
    sweep = context.sweep
    tgi = (
        TGICalculator(context.reference, weighting=ArithmeticMeanWeights())
        .compute_series(sweep)
        .values
    )
    intervals: Dict[str, BootstrapCI] = {}
    ranges: Dict[str, Tuple[float, float]] = {}
    for name in _BENCHMARKS:
        ee = sweep.efficiency_series(name)
        intervals[name] = bootstrap_pearson_ci(ee, tgi, rng=_BOOTSTRAP_SEED)
        jk = [r for _, r in jackknife_pearson(ee, tgi)]
        ranges[name] = (min(jk), max(jk))
    return PCCUncertaintyResult(intervals=intervals, jackknife_ranges=ranges)
