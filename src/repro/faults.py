"""Deterministic fault injection for campaigns and the simulation substrate.

Real measurement campaigns lose runs: jobs die on flaky nodes, USB power
loggers drop records under host load, nodes crash mid-benchmark.  The CEEC
experience report documents partial and failed power measurements as the
*norm* on production systems, so a reproduction that aims at
production-scale campaigns needs those failure modes on tap — injected
deterministically, so the containment machinery around them is testable.

A :class:`FaultPlan` describes which faults a job should suffer:

``transient_failures``
    The first N execution attempts raise :class:`TransientFault`; attempt
    N+1 succeeds.  The workhorse for retry testing (retry-then-succeed
    with ``retries >= N``, retry-exhausted with ``retries < N``).
``transient_probability``
    A seeded per-attempt coin: attempt ``k`` fails iff its named draw from
    the plan's seed falls below the probability.  Unlike the counter above
    this can model a *permanently* flaky job (probability 1.0).
``meter_dropout``
    Probability of losing each individual power sample, applied to the
    wall-plug meter's spec (the existing
    :attr:`~repro.power.meter.MeterSpec.dropout_probability` machinery).
    The job still succeeds; its traces simply have holes, as a real
    Watts Up? log does.
``node_crash_probability``
    A seeded coin per simulated run: when it fires, a node id and a crash
    time inside the run are drawn and :class:`NodeCrashFault` is raised
    from the executor — mid-phase, before any power is metered.
    ``containment`` decides the blast radius: ``"job"`` (default) fails
    the whole campaign job, ``"benchmark"`` lets the suite skip the
    crashed benchmark and produce a *partial* suite result, the input to
    the degraded-TGI path (see :mod:`repro.core.tgi`).

All draws are named streams derived from ``(plan.seed, scope, attempt)``
via :func:`repro.rng.child_rng`, so the same plan on the same job produces
the same faults whether the job runs inline, in a pool worker, or is
replayed in a test — the serial/parallel equivalence contract of the
campaign layer holds under injection too.

Every injection increments the ``tgi_faults_injected_total`` counter
(labelled by ``kind``) when a telemetry session is active; pool workers
ship the counts back with their payloads like every other metric.  When a
run journal is attached (:mod:`repro.journal`) each injection also lands
as a typed ``fault.injected`` event, so post-mortems can line faults up
against the retries they caused.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from . import journal as jrnl
from . import telemetry as tele
from .exceptions import FaultInjectionError, InjectedFault, NodeCrashFault, TransientFault
from .power.meter import MeterSpec
from .rng import child_rng

__all__ = [
    "FAULT_KINDS",
    "CONTAINMENT_SCOPES",
    "FaultPlan",
    "FaultInjector",
    "plan_to_dict",
    "plan_from_dict",
]

#: Fault kinds reported in telemetry and CLI specs.
FAULT_KINDS = ("transient", "flaky", "meter-dropout", "node-crash")

#: Valid blast radii for an injected node crash.
CONTAINMENT_SCOPES = ("job", "benchmark")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, hashable description of the faults to inject into one job.

    The default plan injects nothing; fields compose freely (a job can be
    transiently flaky *and* suffer meter dropout).
    """

    transient_failures: int = 0
    transient_probability: float = 0.0
    meter_dropout: float = 0.0
    node_crash_probability: float = 0.0
    containment: str = "job"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.transient_failures < 0:
            raise FaultInjectionError(
                f"transient_failures must be >= 0, got {self.transient_failures}"
            )
        for name in ("transient_probability", "node_crash_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {value!r}")
        if not 0.0 <= self.meter_dropout < 1.0:
            raise FaultInjectionError(
                f"meter_dropout must be in [0, 1), got {self.meter_dropout!r}"
            )
        if self.containment not in CONTAINMENT_SCOPES:
            raise FaultInjectionError(
                f"containment must be one of {CONTAINMENT_SCOPES}, got {self.containment!r}"
            )

    @property
    def injects_anything(self) -> bool:
        """Whether this plan can produce any fault at all."""
        return bool(
            self.transient_failures
            or self.transient_probability
            or self.meter_dropout
            or self.node_crash_probability
        )


def plan_to_dict(plan: FaultPlan) -> Dict:
    """Serialize a plan (the form embedded in job specs and manifests)."""
    return {
        "transient_failures": plan.transient_failures,
        "transient_probability": plan.transient_probability,
        "meter_dropout": plan.meter_dropout,
        "node_crash_probability": plan.node_crash_probability,
        "containment": plan.containment,
        "seed": plan.seed,
    }


def plan_from_dict(data: Dict) -> FaultPlan:
    """Rebuild a plan serialized by :func:`plan_to_dict`."""
    return FaultPlan(
        transient_failures=data.get("transient_failures", 0),
        transient_probability=data.get("transient_probability", 0.0),
        meter_dropout=data.get("meter_dropout", 0.0),
        node_crash_probability=data.get("node_crash_probability", 0.0),
        containment=data.get("containment", "job"),
        seed=data.get("seed", 0),
    )


class FaultInjector:
    """A plan bound to one execution attempt of one job.

    The campaign layer builds a fresh injector per attempt
    (``FaultInjector(plan, scope=job_id, attempt=k)``); the simulation
    substrate consumes it.  Crash draws for successive simulated runs come
    from one named stream, so a fixed ``(plan, scope, attempt)`` produces
    an identical fault sequence in any process.
    """

    def __init__(self, plan: FaultPlan, *, scope: str = "", attempt: int = 0):
        if attempt < 0:
            raise FaultInjectionError(f"attempt must be >= 0, got {attempt}")
        self.plan = plan
        self.scope = scope
        self.attempt = attempt
        self._crash_rng = child_rng(plan.seed, f"fault:crash:{scope}:{attempt}")

    # -- transient job exceptions --------------------------------------
    def check_transient(self) -> None:
        """Raise :class:`TransientFault` if this attempt is fated to fail.

        Called once at the start of an attempt, before any work happens —
        a transient fault models the job never getting off the ground
        (scheduler eviction, spawn failure), not a half-finished run.
        """
        plan = self.plan
        if self.attempt < plan.transient_failures:
            self._count("transient")
            raise TransientFault(
                f"injected transient fault: attempt {self.attempt} of job "
                f"{self.scope!r} (fails first {plan.transient_failures})"
            )
        if plan.transient_probability > 0.0:
            draw = float(
                child_rng(
                    plan.seed, f"fault:transient:{self.scope}:{self.attempt}"
                ).uniform()
            )
            if draw < plan.transient_probability:
                self._count("flaky")
                raise TransientFault(
                    f"injected flaky fault: attempt {self.attempt} of job "
                    f"{self.scope!r} (p={plan.transient_probability}, drew {draw:.3f})"
                )

    # -- meter dropout --------------------------------------------------
    def meter_spec(self, spec: MeterSpec) -> MeterSpec:
        """The meter spec this job should measure through.

        With ``meter_dropout`` set, returns a copy of ``spec`` that loses
        samples; otherwise returns ``spec`` unchanged.
        """
        if self.plan.meter_dropout <= 0.0:
            return spec
        self._count("meter-dropout")
        return spec.with_dropout(self.plan.meter_dropout)

    # -- node crash mid-phase -------------------------------------------
    def maybe_crash(self, *, label: str, makespan: float, num_nodes: int) -> None:
        """Possibly raise :class:`NodeCrashFault` for one simulated run.

        Consumes one coin flip per call (plus the node/time draws when it
        fires), so the crash pattern over a sweep is a pure function of
        ``(plan.seed, scope, attempt)`` and the run order.
        """
        if self.plan.node_crash_probability <= 0.0:
            return
        if float(self._crash_rng.uniform()) >= self.plan.node_crash_probability:
            return
        node = int(self._crash_rng.integers(0, max(1, num_nodes)))
        t_crash = float(self._crash_rng.uniform(0.0, 1.0)) * makespan
        self._count("node-crash")
        raise NodeCrashFault(
            f"injected node crash: node {node} failed at t={t_crash:.2f}s "
            f"during {label!r} (job {self.scope!r}, attempt {self.attempt})"
        )

    def _count(self, kind: str) -> None:
        """Record one injection: the telemetry counter plus a typed
        ``fault.injected`` journal event (each a no-op when inactive)."""
        if tele.active():
            tele.count("tgi_faults_injected_total", kind=kind)
        jrnl.emit("fault.injected", kind=kind, scope=self.scope, attempt=self.attempt)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(scope={self.scope!r}, attempt={self.attempt}, "
            f"plan={self.plan})"
        )


# Re-exported for callers that build plans programmatically.
replace_plan = dataclasses.replace
