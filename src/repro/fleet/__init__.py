"""Batched cross-system fleet evaluation and Green500-style ranking.

The sub-modules split along the data flow:

* :mod:`repro.fleet.columns` — struct-of-arrays packing of ``ClusterSpec``
  fleets (one column per subsystem knob, one row per system);
* :mod:`repro.fleet.evaluate` — the vectorized full-machine suite scorer
  plus its scalar per-system oracle and the content-keyed memoizer;
* :mod:`repro.fleet.pipeline` — chunked ranking pipeline: batchable
  systems take the analytic path inline, the rest fall back to the
  (sharded) campaign scheduler; output is a Green500-style TGI list.
"""

from .columns import FleetColumns, is_batchable, require_batchable
from .evaluate import (
    FLEET_BENCHMARKS,
    FleetEvaluation,
    FleetScores,
    evaluate_fleet,
    evaluate_system,
)
from .pipeline import (
    FleetDiagnostics,
    FleetMember,
    FleetRanking,
    FleetRankingPipeline,
    FleetRankingRow,
    generated_fleet_members,
    parse_weight_spec,
)

__all__ = [
    "FLEET_BENCHMARKS",
    "FleetColumns",
    "FleetDiagnostics",
    "FleetEvaluation",
    "FleetMember",
    "FleetRanking",
    "FleetRankingPipeline",
    "FleetRankingRow",
    "FleetScores",
    "evaluate_fleet",
    "evaluate_system",
    "generated_fleet_members",
    "is_batchable",
    "parse_weight_spec",
    "require_batchable",
]
