"""Chunked Green500-style fleet ranking over mixed evaluation paths.

:class:`FleetRankingPipeline` takes a fleet — generated members, presets,
or raw specs — and produces one TGI-ranked list.  Systems the analytic
batched path covers (CPU-only nodes) are scored inline, chunk by chunk,
through :func:`repro.fleet.evaluate.evaluate_fleet`; everything else
(accelerated nodes, or ``full_sim=True``) falls back to the campaign
executors — :class:`~repro.campaign.runner.CampaignRunner` or, with
``shards``, the :class:`~repro.campaign.scheduler.ShardedCampaignScheduler`
— with their full cache/retry/journal/timeline surface.  Both legs land in
the same row schema, so the output list is indifferent to which path
scored a system.

The ranking mirrors ``examples/green500_style_list.py``: MFLOPS/W rank vs
TGI rank, movers, the weakest subsystem per machine, Spearman/Pearson rank
agreement, and bootstrap uncertainty bands from :mod:`repro.analysis`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import journal as jrnl
from .. import telemetry as tele
from ..analysis.bootstrap import BootstrapCI, bootstrap_mean_ci, bootstrap_pearson_ci
from ..analysis.correlation import pearson, spearman
from ..campaign.cache import ResultCache
from ..campaign.jobs import CampaignJob, ClusterRef
from ..campaign.runner import CampaignRunner
from ..campaign.scheduler import ShardedCampaignScheduler
from ..cluster.cluster import ClusterSpec
from ..cluster.generator import fleet_seeds
from ..core.weights import validate_weights
from ..exceptions import FleetError, MetricError
from ..experiments.config import PAPER_CONFIG, ExperimentConfig
from ..rng import ensure_rng
from .columns import is_batchable
from .evaluate import FLEET_BENCHMARKS, evaluate_fleet

__all__ = [
    "FleetMember",
    "generated_fleet_members",
    "parse_weight_spec",
    "FleetRankingRow",
    "FleetDiagnostics",
    "FleetRanking",
    "FleetRankingPipeline",
]

#: job_id/name reserved for the reference machine's run.
_REFERENCE_ID = "reference"

#: Default reference: the example's SystemG-16 (paper Table I machine).
_DEFAULT_REFERENCE = ClusterRef(kind="preset", name="system_g", num_nodes=16)


@dataclass(frozen=True)
class FleetMember:
    """One rankable system: a spec *reference* plus its meter seed.

    Referencing by :class:`~repro.campaign.jobs.ClusterRef` (not live spec)
    keeps members tiny and lets the campaign fallback ship them to worker
    processes unchanged.  ``meter_seed`` only matters on the simulation
    path — the analytic path has no meter.
    """

    name: str
    cluster: ClusterRef
    meter_seed: int = 0


def generated_fleet_members(
    count: int,
    *,
    era: str = "2011",
    fleet_seed: int = 20110615,
) -> List[FleetMember]:
    """The standard generated fleet as rankable members.

    Names, spec seeds, and meter seeds (``100 + i``) match
    :func:`repro.campaign.jobs.fleet_jobs`, so a batched ranking and a
    campaign ranking of the same fleet score the same machines.
    """
    members = []
    for i, sub_seed in enumerate(fleet_seeds(count, fleet_seed)):
        name = f"{era}-sys-{i:02d}"
        members.append(
            FleetMember(
                name=name,
                cluster=ClusterRef(kind="generated", name=name, era=era, seed=sub_seed),
                meter_seed=100 + i,
            )
        )
    return members


def parse_weight_spec(spec: str) -> Dict[str, float]:
    """Parse ``"HPL=0.5,STREAM=0.25,IOzone=0.25"`` into a weight mapping.

    Values are normalized to sum to one, so ratios like ``HPL=2,STREAM=1,
    IOzone=1`` work too.
    """
    weights: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep:
            raise FleetError(f"weight {part!r} is not NAME=VALUE")
        try:
            weights[name.strip()] = float(value)
        except ValueError:
            raise FleetError(f"weight value {value!r} is not a number") from None
    if not weights:
        raise FleetError(f"no weights in spec {spec!r}")
    return _normalized_weights(weights)


def _normalized_weights(weights: Mapping[str, float]) -> Dict[str, float]:
    total = sum(weights.values())
    if total <= 0:
        raise FleetError(f"weights must sum to a positive value, got {total}")
    return validate_weights({k: v / total for k, v in weights.items()})


@dataclass(frozen=True)
class FleetRankingRow:
    """One system's line of the ranked list (plus its ingredients)."""

    tgi_rank: int
    name: str
    tgi: float
    flops_per_watt: float
    flops_rank: int
    moved: int  # flops_rank - tgi_rank: positive = climbed under TGI
    weakest: str  # benchmark with the smallest REE
    path: str  # "batched" | "simulated"
    ree: Dict[str, float]
    efficiencies: Dict[str, float]
    performances: Dict[str, float]
    powers_w: Dict[str, float]

    def as_dict(self) -> Dict:
        return {
            "tgi_rank": self.tgi_rank,
            "name": self.name,
            "tgi": self.tgi,
            "flops_per_watt": self.flops_per_watt,
            "flops_rank": self.flops_rank,
            "moved": self.moved,
            "weakest": self.weakest,
            "path": self.path,
            "ree": dict(self.ree),
            "efficiencies": dict(self.efficiencies),
            "performances": dict(self.performances),
            "powers_w": dict(self.powers_w),
        }


@dataclass(frozen=True)
class FleetDiagnostics:
    """Rank-agreement and uncertainty diagnostics of one ranking.

    Degenerate inputs (constant TGI across a fleet of memoized clones,
    fleets too small to resample) don't fail the ranking — the affected
    statistic is ``None`` and ``notes`` says why.
    """

    spearman_rho: Optional[float]
    pearson_r: Optional[float]
    pearson_ci: Optional[BootstrapCI]
    tgi_mean_ci: Optional[BootstrapCI]
    notes: Tuple[str, ...] = ()

    def as_dict(self) -> Dict:
        def ci(value: Optional[BootstrapCI]):
            if value is None:
                return None
            return {
                "estimate": value.estimate,
                "low": value.low,
                "high": value.high,
                "confidence": value.confidence,
            }

        return {
            "spearman_rho": self.spearman_rho,
            "pearson_r": self.pearson_r,
            "pearson_ci": ci(self.pearson_ci),
            "tgi_mean_ci": ci(self.tgi_mean_ci),
            "notes": list(self.notes),
        }


@dataclass(frozen=True)
class FleetRanking:
    """A ranked fleet: rows in TGI order plus run accounting."""

    rows: Tuple[FleetRankingRow, ...]
    reference_name: str
    reference_efficiencies: Dict[str, float]
    weights: Dict[str, float]
    diagnostics: FleetDiagnostics
    stats: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def row(self, name: str) -> FleetRankingRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def as_dict(self) -> Dict:
        return {
            "reference": self.reference_name,
            "reference_efficiencies": dict(self.reference_efficiencies),
            "weights": dict(self.weights),
            "rows": [row.as_dict() for row in self.rows],
            "diagnostics": self.diagnostics.as_dict(),
            "stats": dict(self.stats),
        }


class FleetRankingPipeline:
    """Route, score, and rank a fleet end to end.

    Parameters
    ----------
    config:
        Suite configuration every system (and the reference) runs.
    reference:
        The reference machine (Eq. 3 denominator) as a
        :class:`~repro.campaign.jobs.ClusterRef`; defaults to the
        SystemG-16 preset of the Green500-style example.
    reference_suite:
        ``True`` sizes the reference's HPL from memory (the paper's
        capability-run semantics); ``False`` (default) scores the
        reference with the same fixed-``N`` suite as the fleet, matching
        the example.
    reference_seed:
        Meter seed of the reference job on the simulation path.
    weights:
        Benchmark weight mapping (normalized to sum to one); default is
        the paper's arithmetic mean over the suite.
    path:
        Analytic leg implementation: ``"batched"`` (vectorized, default)
        or ``"reference"`` (scalar oracle — slow, for cross-checks).
    full_sim:
        Force *every* system through the campaign executors (the
        pre-batched behaviour; meter noise included).
    chunk_size:
        Systems per vectorized evaluation chunk (bounds peak memory).
    memoize:
        Content-keyed sub-result sharing on the batched leg.
    workers / shards / cache_dir / retries / keep_going:
        Campaign-leg execution policy; ``shards > 0`` selects the sharded
        scheduler.  All idle when everything batches.
    journal:
        Flight-recorder path or caller-owned writer.  The campaign leg
        logs its usual events into it; the pipeline appends one
        ``fleet.ranked`` summary event.
    timeline:
        Power-timeline artifact directory for the campaign leg.
    bootstrap_resamples / bootstrap_seed / confidence:
        Uncertainty-band policy for the diagnostics.
    """

    def __init__(
        self,
        *,
        config: ExperimentConfig = PAPER_CONFIG,
        reference: ClusterRef = _DEFAULT_REFERENCE,
        reference_suite: bool = False,
        reference_seed: int = 1,
        weights: Optional[Mapping[str, float]] = None,
        path: str = "batched",
        full_sim: bool = False,
        chunk_size: int = 1024,
        memoize: bool = True,
        workers: int = 1,
        shards: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
        retries: int = 0,
        keep_going: bool = False,
        journal: Optional[Union[str, Path, jrnl.JournalWriter]] = None,
        timeline: Optional[Union[str, Path]] = None,
        bootstrap_resamples: int = 1000,
        bootstrap_seed: int = 0,
        confidence: float = 0.95,
    ):
        if chunk_size < 1:
            raise FleetError(f"chunk_size must be >= 1, got {chunk_size}")
        self.config = config
        self.reference = reference
        self.reference_suite = reference_suite
        self.reference_seed = reference_seed
        self.weights = _normalized_weights(
            weights or {b: 1.0 for b in FLEET_BENCHMARKS}
        )
        unknown = sorted(set(self.weights) - set(FLEET_BENCHMARKS))
        if unknown:
            raise FleetError(
                f"weights name unknown benchmarks {unknown}; the fleet suite "
                f"is {list(FLEET_BENCHMARKS)}"
            )
        self.path = path
        self.full_sim = full_sim
        self.chunk_size = chunk_size
        self.memoize = memoize
        self.workers = workers
        self.shards = shards
        self.cache_dir = cache_dir
        self.retries = retries
        self.keep_going = keep_going
        self.journal = journal
        self.timeline = timeline
        self.bootstrap_resamples = bootstrap_resamples
        self.bootstrap_seed = bootstrap_seed
        self.confidence = confidence

    # ------------------------------------------------------------------
    def _journal_writer(
        self, label: str
    ) -> Tuple[Optional[jrnl.JournalWriter], bool]:
        if self.journal is None:
            return None, False
        if isinstance(self.journal, jrnl.JournalWriter):
            return self.journal, False
        return jrnl.JournalWriter(Path(self.journal), label=label), True

    def _campaign_executor(self, writer: Optional[jrnl.JournalWriter]):
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        common = dict(
            workers=self.workers,
            cache=cache,
            retries=self.retries,
            keep_going=self.keep_going,
            journal=writer,
            timeline=self.timeline,
        )
        if self.shards:
            return ShardedCampaignScheduler(shards=self.shards, **common)
        return CampaignRunner(**common)

    @staticmethod
    def _as_member(system: Union[FleetMember, ClusterSpec], index: int) -> Tuple[
        str, Optional[ClusterSpec], Optional[FleetMember]
    ]:
        if isinstance(system, FleetMember):
            return system.name, None, system
        if isinstance(system, ClusterSpec):
            return system.name, system, None
        raise FleetError(
            f"fleet entry {index} must be a FleetMember or ClusterSpec, "
            f"got {type(system).__name__}"
        )

    # ------------------------------------------------------------------
    def rank(
        self,
        fleet: Sequence[Union[FleetMember, ClusterSpec]],
        *,
        label: str = "fleet-rank",
    ) -> FleetRanking:
        """Score every system and return the TGI-ranked list."""
        if not fleet:
            raise FleetError("cannot rank an empty fleet")
        started = time.perf_counter()
        writer, owns_journal = self._journal_writer(label)
        try:
            with tele.span("fleet.rank", systems=len(fleet), label=label):
                ranking = self._rank(fleet, label, writer, started)
            if writer is not None:
                stats = ranking.stats
                writer.emit(
                    "fleet.ranked",
                    systems=int(stats["systems"]),
                    batched=int(stats["batched"]),
                    simulated=int(stats["simulated"]),
                    wall_s=float(stats["wall_s"]),
                )
                if owns_journal:
                    writer.finalize(
                        status="ok",
                        total_wall_s=float(stats["wall_s"]),
                    )
            return ranking
        finally:
            if writer is not None and owns_journal and not writer.closed:
                writer.close()

    # ------------------------------------------------------------------
    def _rank(
        self,
        fleet: Sequence[Union[FleetMember, ClusterSpec]],
        label: str,
        writer: Optional[jrnl.JournalWriter],
        started: float,
    ) -> FleetRanking:
        names: List[str] = []
        batched: List[Tuple[int, ClusterSpec]] = []  # (fleet index, spec)
        simulated: List[Tuple[int, FleetMember]] = []
        with tele.span("fleet.pack", systems=len(fleet)):
            for i, system in enumerate(fleet):
                name, spec, member = self._as_member(system, i)
                if name == _REFERENCE_ID:
                    raise FleetError(
                        f"system name {_REFERENCE_ID!r} is reserved for the "
                        "reference machine"
                    )
                if name in names:
                    raise FleetError(f"duplicate system name {name!r}")
                names.append(name)
                if spec is None:
                    spec = member.cluster.resolve()
                if not self.full_sim and is_batchable(spec):
                    batched.append((i, spec))
                elif member is None:
                    raise FleetError(
                        f"system {name!r} needs the simulation path (full_sim "
                        "or accelerators) — pass it as a FleetMember so the "
                        "campaign executors can reference it"
                    )
                else:
                    simulated.append((i, member))

        n = len(names)
        efficiencies = {b: np.zeros(n) for b in FLEET_BENCHMARKS}
        performances = {b: np.zeros(n) for b in FLEET_BENCHMARKS}
        powers = {b: np.zeros(n) for b in FLEET_BENCHMARKS}
        memo_unique = {b: 0 for b in FLEET_BENCHMARKS}
        row_path = ["batched"] * n

        # --- analytic leg (chunked, vectorized) ------------------------
        with tele.span("fleet.evaluate", systems=len(batched)):
            for start in range(0, len(batched), self.chunk_size):
                chunk = batched[start : start + self.chunk_size]
                idx = np.array([i for i, _ in chunk])
                evaluation = evaluate_fleet(
                    [spec for _, spec in chunk],
                    self.config,
                    path=self.path,
                    memoize=self.memoize,
                )
                for b in FLEET_BENCHMARKS:
                    scores = evaluation.scores[b]
                    efficiencies[b][idx] = scores.efficiency
                    performances[b][idx] = scores.performance
                    powers[b][idx] = scores.power_w
                    memo_unique[b] += evaluation.memo_unique[b]

        # --- simulation leg (campaign executors) -----------------------
        cache_hits = 0
        ref_efficiencies: Optional[Dict[str, float]] = None
        jobs = [
            CampaignJob(
                job_id=member.name,
                cluster=member.cluster,
                core_counts=(),
                seed=member.meter_seed,
                config=self.config,
            )
            for _, member in simulated
        ]
        reference_spec = self.reference.resolve()
        reference_inline = not self.full_sim and is_batchable(reference_spec)
        if not reference_inline:
            jobs.append(
                CampaignJob(
                    job_id=_REFERENCE_ID,
                    cluster=self.reference,
                    core_counts=(),
                    seed=self.reference_seed,
                    config=self.config,
                    reference_suite=self.reference_suite,
                )
            )
        if jobs:
            executor = self._campaign_executor(writer)
            result = executor.run(jobs, label=label)
            cache_hits = result.cache_hits
            for i, member in simulated:
                suite = result.suite(member.name)
                row_path[i] = "simulated"
                for b in FLEET_BENCHMARKS:
                    try:
                        r = suite[b]
                    except KeyError:
                        raise FleetError(
                            f"simulated system {member.name!r} did not report "
                            f"benchmark {b!r}"
                        ) from None
                    efficiencies[b][i] = r.energy_efficiency
                    performances[b][i] = r.performance
                    powers[b][i] = r.power_w
            if not reference_inline:
                ref_suite = result.suite(_REFERENCE_ID)
                ref_efficiencies = {
                    b: ref_suite[b].energy_efficiency for b in FLEET_BENCHMARKS
                }
        if reference_inline:
            ref_rows = evaluate_fleet(
                [reference_spec],
                self.config,
                path=self.path,
                reference=self.reference_suite,
                memoize=False,
            )
            ref_efficiencies = {
                b: float(ref_rows.scores[b].efficiency[0]) for b in FLEET_BENCHMARKS
            }
        assert ref_efficiencies is not None

        # --- Eq. 3 / Eq. 4 over the whole fleet at once ----------------
        ree = {
            b: efficiencies[b] / ref_efficiencies[b] for b in FLEET_BENCHMARKS
        }
        # Unnamed benchmarks carry zero weight (weights are normalized over
        # the named subset, e.g. "HPL=1" reproduces the pure FLOPS/W list).
        weight_vec = np.array([self.weights.get(b, 0.0) for b in FLEET_BENCHMARKS])
        ree_matrix = np.column_stack([ree[b] for b in FLEET_BENCHMARKS])
        tgi = ree_matrix @ weight_vec

        names_arr = np.array(names)
        flops_per_watt = efficiencies["HPL"]
        tgi_rank = np.empty(n, dtype=int)
        tgi_rank[np.lexsort((names_arr, -tgi))] = np.arange(1, n + 1)
        flops_rank = np.empty(n, dtype=int)
        flops_rank[np.lexsort((names_arr, -flops_per_watt))] = np.arange(1, n + 1)
        weakest = np.argmin(ree_matrix, axis=1)

        rows = []
        for i in np.argsort(tgi_rank):
            rows.append(
                FleetRankingRow(
                    tgi_rank=int(tgi_rank[i]),
                    name=names[i],
                    tgi=float(tgi[i]),
                    flops_per_watt=float(flops_per_watt[i]),
                    flops_rank=int(flops_rank[i]),
                    moved=int(flops_rank[i] - tgi_rank[i]),
                    weakest=FLEET_BENCHMARKS[int(weakest[i])],
                    path=row_path[i],
                    ree={b: float(ree[b][i]) for b in FLEET_BENCHMARKS},
                    efficiencies={
                        b: float(efficiencies[b][i]) for b in FLEET_BENCHMARKS
                    },
                    performances={
                        b: float(performances[b][i]) for b in FLEET_BENCHMARKS
                    },
                    powers_w={b: float(powers[b][i]) for b in FLEET_BENCHMARKS},
                )
            )

        diagnostics = self._diagnostics(tgi, flops_per_watt, tgi_rank, flops_rank)
        wall_s = time.perf_counter() - started
        stats = {
            "systems": n,
            "batched": len(batched),
            "simulated": len(simulated),
            "memo_unique": dict(memo_unique),
            "cache_hits": int(cache_hits),
            "wall_s": wall_s,
        }
        return FleetRanking(
            rows=tuple(rows),
            reference_name=reference_spec.name,
            reference_efficiencies=ref_efficiencies,
            weights=dict(self.weights),
            diagnostics=diagnostics,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _diagnostics(
        self,
        tgi: np.ndarray,
        flops_per_watt: np.ndarray,
        tgi_rank: np.ndarray,
        flops_rank: np.ndarray,
    ) -> FleetDiagnostics:
        notes: List[str] = []
        rho = r = pearson_ci = mean_ci = None
        try:
            rho = spearman(tgi_rank.tolist(), flops_rank.tolist())
        except MetricError as exc:
            notes.append(f"spearman degenerate: {exc}")
        try:
            r = pearson(tgi.tolist(), flops_per_watt.tolist())
        except MetricError as exc:
            notes.append(f"pearson degenerate: {exc}")
        try:
            pearson_ci = bootstrap_pearson_ci(
                tgi.tolist(),
                flops_per_watt.tolist(),
                confidence=self.confidence,
                resamples=self.bootstrap_resamples,
                rng=ensure_rng(self.bootstrap_seed),
            )
        except MetricError as exc:
            notes.append(f"pearson CI degenerate: {exc}")
        try:
            mean_ci = bootstrap_mean_ci(
                tgi.tolist(),
                confidence=self.confidence,
                resamples=self.bootstrap_resamples,
                rng=ensure_rng(self.bootstrap_seed),
            )
        except MetricError as exc:
            notes.append(f"TGI mean CI degenerate: {exc}")
        return FleetDiagnostics(
            spearman_rho=rho,
            pearson_r=r,
            pearson_ci=pearson_ci,
            tgi_mean_ci=mean_ci,
            notes=tuple(notes),
        )
