"""Struct-of-arrays packing of cluster fleets (the *system* axis).

The sim engine already went columnar along the *time* axis (interval
arrays feeding the sweep-line integrator).  This module does the same
along the *system* axis: a :class:`FleetColumns` holds one 1-D array per
subsystem parameter — clock, per-socket cores, DRAM bandwidth, storage
rate, NIC alpha/beta, the whole power envelope — with row ``i`` describing
fleet member ``i``.  One NumPy expression over these columns then scores
every system at once (:mod:`repro.fleet.evaluate`) instead of paying
per-system model objects, rank programs, and process-pool jobs.

Only *batchable* systems pack: homogeneous CPU-only nodes with the default
PSU (exactly what :func:`repro.cluster.generator.generate_cluster`
produces, and what the preset CPU machines are).  Accelerated systems
route to the full simulator via the campaign fallback in
:mod:`repro.fleet.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..cluster.cluster import ClusterSpec
from ..exceptions import FleetError

__all__ = ["FleetColumns", "is_batchable", "require_batchable"]


def is_batchable(spec: ClusterSpec) -> bool:
    """Whether the analytic batched path can score this system.

    The vectorized models cover homogeneous CPU-only nodes (the generator's
    whole output space).  Accelerators change both the HPL compute rate and
    the power stack, so accelerated systems take the simulation fallback.
    """
    return not spec.node.accelerators


def require_batchable(spec: ClusterSpec) -> ClusterSpec:
    """Raise :class:`~repro.exceptions.FleetError` unless batchable."""
    if not is_batchable(spec):
        raise FleetError(
            f"system {spec.name!r} carries accelerators; the batched analytic "
            "path covers CPU-only nodes — route it through the simulation "
            "fallback (FleetRankingPipeline does this automatically)"
        )
    return spec


@dataclass(frozen=True, eq=False)  # ndarray fields: identity equality only
class FleetColumns:
    """A fleet as struct-of-arrays: one row per system, one array per knob.

    All arrays are 1-D with length ``len(self)``; integer-valued columns are
    stored as float64 so they compose into NumPy expressions (and into the
    ``np.unique`` content keys of the memoizer) without dtype juggling.
    """

    names: Tuple[str, ...]
    num_nodes: np.ndarray
    sockets: np.ndarray
    cpu_cores: np.ndarray  # physical cores per socket
    clock_hz: np.ndarray
    flops_per_cycle: np.ndarray
    cpu_tdp_w: np.ndarray  # per socket
    cpu_idle_w: np.ndarray
    mem_sustained_bw: np.ndarray  # STREAM-sustainable bytes/s per socket
    mem_cores_to_saturate: np.ndarray
    mem_capacity_bytes: np.ndarray  # per socket
    mem_idle_w: np.ndarray  # all-DIMM idle watts per socket
    mem_active_w: np.ndarray
    storage_write_bw: np.ndarray
    storage_idle_w: np.ndarray
    storage_active_w: np.ndarray
    nic_bandwidth: np.ndarray
    nic_latency_s: np.ndarray
    nic_idle_w: np.ndarray
    nic_active_w: np.ndarray
    base_watts: np.ndarray
    psu_rated_w: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.names)
        for f in fields(self):
            if f.name == "names":
                continue
            arr = getattr(self, f.name)
            if arr.ndim != 1 or arr.shape[0] != n:
                raise FleetError(
                    f"column {f.name!r} must be 1-D with {n} rows, got shape {arr.shape}"
                )

    def __len__(self) -> int:
        return len(self.names)

    # -- derived columns ------------------------------------------------
    @property
    def node_cores(self) -> np.ndarray:
        """Physical cores per node (= ranks per node at full pack)."""
        return self.sockets * self.cpu_cores

    @property
    def total_cores(self) -> np.ndarray:
        """MPI ranks of a full-machine run."""
        return self.num_nodes * self.node_cores

    @property
    def node_memory_bytes(self) -> np.ndarray:
        """DRAM per node."""
        return self.sockets * self.mem_capacity_bytes

    @property
    def node_sustained_bw(self) -> np.ndarray:
        """STREAM-sustainable bytes/s per node (all sockets)."""
        return self.sockets * self.mem_sustained_bw

    # -- construction / slicing ----------------------------------------
    @classmethod
    def pack(cls, specs: Sequence[ClusterSpec]) -> "FleetColumns":
        """Pack resolved specs into columns (rejects non-batchable systems)."""
        if not specs:
            raise FleetError("cannot pack an empty fleet")
        for spec in specs:
            require_batchable(spec)
        nodes = [spec.node for spec in specs]

        def col(values: List[float]) -> np.ndarray:
            return np.asarray(values, dtype=float)

        # PSU sizing mirrors NodePowerModel's default: rated at
        # _PSU_SIZING_FACTOR x the node's nominal full-load DC draw.
        from ..power.node_power import _PSU_SIZING_FACTOR

        return cls(
            names=tuple(spec.name for spec in specs),
            num_nodes=col([spec.num_nodes for spec in specs]),
            sockets=col([n.sockets for n in nodes]),
            cpu_cores=col([n.cpu.cores for n in nodes]),
            clock_hz=col([n.cpu.base_clock_hz for n in nodes]),
            flops_per_cycle=col([n.cpu.flops_per_cycle for n in nodes]),
            cpu_tdp_w=col([n.cpu.tdp_watts for n in nodes]),
            cpu_idle_w=col([n.cpu.idle_watts for n in nodes]),
            mem_sustained_bw=col([n.memory.sustained_bandwidth for n in nodes]),
            mem_cores_to_saturate=col([n.memory.cores_to_saturate for n in nodes]),
            mem_capacity_bytes=col([n.memory.capacity_bytes for n in nodes]),
            mem_idle_w=col([n.memory.idle_watts for n in nodes]),
            mem_active_w=col([n.memory.active_watts for n in nodes]),
            storage_write_bw=col([n.storage.seq_write_bandwidth for n in nodes]),
            storage_idle_w=col([n.storage.idle_watts for n in nodes]),
            storage_active_w=col([n.storage.active_watts for n in nodes]),
            nic_bandwidth=col([n.nic.bandwidth for n in nodes]),
            nic_latency_s=col([n.nic.latency_s for n in nodes]),
            nic_idle_w=col([n.nic.idle_watts for n in nodes]),
            nic_active_w=col([n.nic.active_watts for n in nodes]),
            base_watts=col([n.base_watts for n in nodes]),
            psu_rated_w=col([_PSU_SIZING_FACTOR * n.nominal_max_watts for n in nodes]),
        )

    def take(self, start: int, stop: int) -> "FleetColumns":
        """The contiguous row slice ``[start, stop)`` as a new instance."""
        kwargs = {"names": self.names[start:stop]}
        for f in fields(self):
            if f.name != "names":
                kwargs[f.name] = getattr(self, f.name)[start:stop]
        return FleetColumns(**kwargs)

    def chunks(self, chunk_size: int) -> Iterator["FleetColumns"]:
        """Yield row chunks of at most ``chunk_size`` systems."""
        if chunk_size < 1:
            raise FleetError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            yield self.take(start, min(start + chunk_size, len(self)))
