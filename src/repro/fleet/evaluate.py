"""Cross-system batched evaluation of the full-machine benchmark suite.

Two paths produce identical numbers (within float associativity):

* :func:`evaluate_system` — the scalar **oracle**: one system at a time,
  through the very model objects the simulator compiles
  (:class:`~repro.perfmodels.hpl.HPLModel`,
  :class:`~repro.perfmodels.stream.StreamModel`,
  :class:`~repro.perfmodels.iozone.IOzoneModel`,
  :class:`~repro.power.node_power.NodePowerModel`);
* :func:`evaluate_fleet` with ``path="batched"`` — the same formulas
  vectorized over :class:`~repro.fleet.columns.FleetColumns`, one NumPy
  pass per benchmark for the whole fleet.

This mirrors the ``integration="reference"`` / ``engine="reference"``
pattern of the sim layer: the slow scalar path is the semantic definition;
the fast path is pinned to it by the hypothesis equivalence suite.

Why an *analytic* path is exact here: a full-machine fleet job packs every
node identically (ranks = total cores, breadth-first), runs rank-uniform
programs, and hits no barrier waits — so each benchmark's node utilization
is piecewise constant and the simulator's ground-truth energy integral
collapses to ``sum(wall_watts(phase) * duration) / makespan`` per node.
The batched path evaluates exactly that, skipping per-rank program
objects, the event sweep, and the metering noise (it reports *true* model
power; the campaign path reports *metered* power).

Content-keyed memoization: per benchmark, only the columns that enter its
score form the content key; systems sharing a key (grid sweeps, repeated
presets, duplicated era draws) are computed once and scattered back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..benchmarks.hpl import (
    _HPL_COMM_INTENSITY,
    _HPL_COMPUTE_INTENSITY,
    _HPL_MEMORY_PER_RANK,
    _HPL_NIC_UTIL,
)
from ..benchmarks.iozone import _IOZONE_INTENSITY, _IOZONE_MEMORY
from ..cluster.cluster import ClusterSpec
from ..exceptions import FleetError
from ..experiments.config import PAPER_CONFIG, ExperimentConfig
from ..perfmodels.hpl import HPLModel
from ..perfmodels.iozone import IOzoneModel
from ..perfmodels.stream import StreamModel
from ..power.components import NodeUtilization
from ..power.node_power import NodePowerModel
from ..power.psu import DEFAULT_EFFICIENCY_CURVE
from .columns import FleetColumns, require_batchable

__all__ = [
    "FLEET_BENCHMARKS",
    "FleetScores",
    "FleetEvaluation",
    "evaluate_system",
    "evaluate_fleet",
]

#: Suite members the fleet path scores, in suite order.
FLEET_BENCHMARKS: Tuple[str, ...] = ("HPL", "STREAM", "IOzone")

#: Evaluation paths (mirrors the sim layer's engine/integration switches).
_PATHS = ("batched", "reference")

# Constants mirrored from the scalar stack (single source where importable).
_CPU_AWAKE_FLOOR = 0.45  # NodePowerModel.cpu_awake_floor default
_TRIAD_BYTES_PER_ELEMENT = 3 * 8
_STREAM_ARRAY_ELEMENTS = 20_000_000
_HPL_BYTES_PER_ELEMENT = 8
_HPL_BLOCK_SIZE = 224  # HPLModel.block_size default
_HPL_DGEMM_EFFICIENCY = 0.85  # HPLModel.dgemm_efficiency default
_IOZONE_FS_EFFICIENCY = 0.92  # IOzoneModel.filesystem_efficiency default
_IOZONE_CACHE_BW = 2.0e9  # IOzoneModel.cache_bandwidth default

_PSU_LOADS = np.array([p[0] for p in DEFAULT_EFFICIENCY_CURVE], dtype=float)
_PSU_EFFS = np.array([p[1] for p in DEFAULT_EFFICIENCY_CURVE], dtype=float)


@dataclass(frozen=True, eq=False)
class FleetScores:
    """One benchmark's per-system results (arrays over the fleet)."""

    performance: np.ndarray
    time_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    efficiency: np.ndarray  # EE = performance / power (Eq. 2)


@dataclass(frozen=True, eq=False)
class FleetEvaluation:
    """Full-suite scores for a fleet, plus memoization accounting.

    ``memo_unique[b]`` is how many distinct content keys benchmark ``b``
    actually computed; ``len(self) - memo_unique[b]`` results were shared.
    """

    names: Tuple[str, ...]
    scores: Dict[str, FleetScores]
    memo_unique: Dict[str, int]
    path: str

    def __len__(self) -> int:
        return len(self.names)

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return tuple(self.scores)

    def efficiency_matrix(self) -> np.ndarray:
        """``(systems, benchmarks)`` EE matrix in suite order."""
        return np.column_stack([self.scores[b].efficiency for b in self.scores])

    def system(self, i: int) -> Dict[str, Dict[str, float]]:
        """All of system ``i``'s numbers as plain floats (reports, tests)."""
        return {
            b: {
                "performance": float(s.performance[i]),
                "time_s": float(s.time_s[i]),
                "power_w": float(s.power_w[i]),
                "energy_j": float(s.energy_j[i]),
                "efficiency": float(s.efficiency[i]),
            }
            for b, s in self.scores.items()
        }


# ----------------------------------------------------------------------
# Scalar oracle
# ----------------------------------------------------------------------

def _hpl_model(spec: ClusterSpec, config: ExperimentConfig, reference: bool) -> HPLModel:
    if reference:
        # build_suite(reference=True): capability sizing, default model knobs.
        return HPLModel(cluster=spec)
    return HPLModel(
        cluster=spec,
        comm_volume_factor=config.hpl_comm_volume_factor,
        contention_threshold=config.hpl_contention_threshold,
        contention_slope=config.hpl_contention_slope,
    )


def _pack_scores(performance: float, time_s: float, power_w: float) -> Dict[str, float]:
    return {
        "performance": performance,
        "time_s": time_s,
        "power_w": power_w,
        "energy_j": power_w * time_s,
        "efficiency": performance / power_w,
    }


def evaluate_system(
    spec: ClusterSpec,
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    reference: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Score one system's full-machine suite through the scalar models.

    This is the equivalence oracle for the batched path; it is also
    value-identical (to float associativity) to the *true* — unmetered —
    numbers of a full simulation job on the same spec, because a
    fully-packed uniform run has piecewise-constant utilization (see
    module docstring).

    ``reference=True`` selects the capability-sized HPL used for
    reference-system runs (``build_suite(reference=True)`` semantics).
    """
    require_batchable(spec)
    node = spec.node
    power = NodePowerModel(node=node)
    k = node.cores  # ranks per node at full pack
    ranks = spec.total_cores

    # --- HPL ----------------------------------------------------------
    model = _hpl_model(spec, config, reference)
    if reference:
        n = model.problem_size_from_memory(
            memory_fraction=config.hpl_reference_memory_fraction
        )
    else:
        n = config.hpl_problem_size
        if n < model.block_size:
            raise FleetError(
                f"hpl_problem_size {n} below block size {model.block_size}"
            )
    pred = model.predict(n, ranks, ranks_per_node=k)
    w_compute = power.wall_power(
        NodeUtilization(
            cpu_active_fraction=1.0,
            cpu_intensity=_HPL_COMPUTE_INTENSITY,
            memory=min(1.0, k * _HPL_MEMORY_PER_RANK),
        )
    )
    w_comm = 0.0
    if pred.comm_time_s > 0:
        w_comm = power.wall_power(
            NodeUtilization(
                cpu_active_fraction=1.0,
                cpu_intensity=_HPL_COMM_INTENSITY,
                nic=min(1.0, k * _HPL_NIC_UTIL),
            )
        )
    node_mean = (
        w_compute * pred.compute_time_s + w_comm * pred.comm_time_s
    ) / pred.total_time_s
    hpl = _pack_scores(
        pred.performance_flops, pred.total_time_s, spec.num_nodes * node_mean
    )

    # --- STREAM -------------------------------------------------------
    stream = StreamModel(cluster=spec)
    iterations = stream.iterations_for_time(
        config.stream_target_seconds, ranks, ranks_per_node=k
    )
    spred = stream.predict(ranks, iterations=iterations, ranks_per_node=k)
    per_rank_fraction = min(
        1.0, spred.per_rank_bandwidth / node.sustained_memory_bandwidth
    )
    w_stream = power.wall_power(
        NodeUtilization(
            cpu_active_fraction=1.0,
            cpu_intensity=config.stream_intensity,
            memory=min(1.0, k * per_rank_fraction),
        )
    )
    stream_scores = _pack_scores(
        spred.aggregate_bandwidth, spred.time_s, spec.num_nodes * w_stream
    )

    # --- IOzone (one writer per node, all nodes) ----------------------
    iozone = IOzoneModel(cluster=spec)
    file_bytes = iozone.file_size_for_time(config.iozone_target_seconds)
    ipred = iozone.predict(spec.num_nodes, file_bytes=file_bytes)
    w_iozone = power.wall_power(
        NodeUtilization(
            cpu_active_fraction=min(1.0, 1.0 / k),
            cpu_intensity=_IOZONE_INTENSITY,
            memory=_IOZONE_MEMORY,
            storage=1.0,
        )
    )
    iozone_scores = _pack_scores(
        ipred.aggregate_bandwidth, ipred.time_s, spec.num_nodes * w_iozone
    )

    return {"HPL": hpl, "STREAM": stream_scores, "IOzone": iozone_scores}


# ----------------------------------------------------------------------
# Batched path
# ----------------------------------------------------------------------

def _wall_watts(
    cols: FleetColumns,
    idx: np.ndarray,
    *,
    active,
    intensity,
    memory,
    storage,
    nic,
) -> np.ndarray:
    """Vectorized NodePowerModel.wall_power over systems ``idx``.

    Operation-for-operation the scalar component formulas, evaluated on
    spec columns; utilization operands may be scalars or per-system arrays.
    """
    dynamic_range = cols.cpu_tdp_w[idx] - cols.cpu_idle_w[idx]
    per_core_load = _CPU_AWAKE_FLOOR + (1.0 - _CPU_AWAKE_FLOOR) * intensity
    cpu = cols.sockets[idx] * (
        cols.cpu_idle_w[idx] + dynamic_range * active * per_core_load
    )
    mem = cols.sockets[idx] * (
        cols.mem_idle_w[idx]
        + (cols.mem_active_w[idx] - cols.mem_idle_w[idx]) * memory
    )
    sto = cols.storage_idle_w[idx] + (
        cols.storage_active_w[idx] - cols.storage_idle_w[idx]
    ) * storage
    net = cols.nic_idle_w[idx] + (
        cols.nic_active_w[idx] - cols.nic_idle_w[idx]
    ) * nic
    dc = cols.base_watts[idx] + cpu + mem + sto + net
    load = np.minimum(dc / cols.psu_rated_w[idx], 1.0)
    eff = np.interp(load, _PSU_LOADS, _PSU_EFFS)
    return np.where(dc == 0.0, 0.0, dc / eff)


def _memoized(
    key_columns: Sequence[np.ndarray],
    compute: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]],
    n: int,
    memoize: bool,
) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], int]:
    """Run ``compute`` once per distinct content key, scatter to all rows.

    ``key_columns`` are the spec columns a benchmark's score depends on;
    ``compute(idx)`` evaluates representative rows ``idx`` and returns
    ``(performance, time_s, power_w)`` arrays aligned with ``idx``.
    """
    everyone = np.arange(n)
    if not memoize:
        return compute(everyone), n
    key = np.column_stack(key_columns)
    _, representatives, inverse = np.unique(
        key, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)  # numpy 2.x returns the keyed shape
    if representatives.size == n:
        return compute(everyone), n
    perf, time_s, power = compute(representatives)
    return (perf[inverse], time_s[inverse], power[inverse]), int(representatives.size)


def _power_key(cols: FleetColumns) -> List[np.ndarray]:
    """Columns every benchmark's power depends on."""
    return [
        cols.sockets,
        cols.cpu_tdp_w,
        cols.cpu_idle_w,
        cols.mem_idle_w,
        cols.mem_active_w,
        cols.storage_idle_w,
        cols.storage_active_w,
        cols.nic_idle_w,
        cols.nic_active_w,
        cols.base_watts,
        cols.psu_rated_w,
    ]


def _hpl_batched(
    cols: FleetColumns,
    config: ExperimentConfig,
    reference: bool,
    memoize: bool,
):
    n_systems = len(cols)
    key = _power_key(cols) + [
        cols.num_nodes,
        cols.cpu_cores,
        cols.clock_hz,
        cols.flops_per_cycle,
        cols.nic_bandwidth,
        cols.nic_latency_s,
    ]
    if reference:
        key.append(cols.mem_capacity_bytes)
        dgemm = _HPL_DGEMM_EFFICIENCY
        threshold, slope, volume_factor = (
            HPLModel.contention_threshold,
            HPLModel.contention_slope,
            HPLModel.comm_volume_factor,
        )
    else:
        if config.hpl_problem_size < _HPL_BLOCK_SIZE:
            raise FleetError(
                f"hpl_problem_size {config.hpl_problem_size} below block "
                f"size {_HPL_BLOCK_SIZE}"
            )
        dgemm = _HPL_DGEMM_EFFICIENCY
        threshold = config.hpl_contention_threshold
        slope = config.hpl_contention_slope
        volume_factor = config.hpl_comm_volume_factor

    def compute(idx: np.ndarray):
        k = cols.node_cores[idx]
        ranks = cols.total_cores[idx]
        if reference:
            total_bytes = (
                config.hpl_reference_memory_fraction
                * cols.num_nodes[idx]
                * cols.node_memory_bytes[idx]
            )
            n = np.floor(np.sqrt(total_bytes / _HPL_BYTES_PER_ELEMENT))
            n = n - np.mod(n, _HPL_BLOCK_SIZE)
            if np.any(n < _HPL_BLOCK_SIZE):
                raise FleetError("memory too small for a single HPL block")
        else:
            n = np.full(idx.size, float(config.hpl_problem_size))
        flops = (2.0 / 3.0) * n**3 + 2.0 * n**2
        core_peak = cols.clock_hz[idx] * cols.flops_per_cycle[idx]
        excess = np.maximum(0.0, k - threshold)
        slowdown = 1.0 + slope * excess / k
        compute_rate = ranks * core_peak * dgemm / slowdown
        compute_t = flops / compute_rate

        multi = ranks > 1
        safe_ranks = np.where(multi, ranks, 2.0)  # keep log2/sqrt well-defined
        log_p = np.log2(safe_ranks)
        volume_bytes = (
            volume_factor * _HPL_BYTES_PER_ELEMENT * n**2 * log_p
            / np.sqrt(safe_ranks)
        )
        comm_volume_t = np.where(multi, volume_bytes / cols.nic_bandwidth[idx], 0.0)
        steps = np.maximum(1.0, np.floor(n / _HPL_BLOCK_SIZE))
        comm_latency_t = np.where(
            multi, 3.0 * steps * log_p * cols.nic_latency_s[idx], 0.0
        )
        comm_t = comm_volume_t + comm_latency_t
        total_t = compute_t + comm_t
        perf = flops / total_t

        w_compute = _wall_watts(
            cols,
            idx,
            active=1.0,
            intensity=_HPL_COMPUTE_INTENSITY,
            memory=np.minimum(1.0, k * _HPL_MEMORY_PER_RANK),
            storage=0.0,
            nic=0.0,
        )
        w_comm = _wall_watts(
            cols,
            idx,
            active=1.0,
            intensity=_HPL_COMM_INTENSITY,
            memory=0.0,
            storage=0.0,
            nic=np.minimum(1.0, k * _HPL_NIC_UTIL),
        )
        node_mean = (w_compute * compute_t + w_comm * comm_t) / total_t
        return perf, total_t, cols.num_nodes[idx] * node_mean

    return _memoized(key, compute, n_systems, memoize)


def _stream_batched(cols: FleetColumns, config: ExperimentConfig, memoize: bool):
    n_systems = len(cols)
    key = _power_key(cols) + [
        cols.num_nodes,
        cols.cpu_cores,
        cols.mem_sustained_bw,
        cols.mem_cores_to_saturate,
    ]

    def compute(idx: np.ndarray):
        k = cols.node_cores[idx]
        ranks = cols.total_cores[idx]
        per_core = cols.mem_sustained_bw[idx] / cols.mem_cores_to_saturate[idx]
        sockets = cols.sockets[idx]
        # Round-robin over sockets: `extra` sockets carry base+1 ranks.
        base = np.floor(k / sockets)
        extra = k - base * sockets
        socket_cap = cols.mem_sustained_bw[idx]
        node_bw = extra * np.minimum((base + 1.0) * per_core, socket_cap) + (
            sockets - extra
        ) * np.minimum(base * per_core, socket_cap)
        per_rank_bw = node_bw / k
        one_iter_s = (1 * _STREAM_ARRAY_ELEMENTS * _TRIAD_BYTES_PER_ELEMENT) / per_rank_bw
        iterations = np.maximum(
            1.0, np.round(config.stream_target_seconds / one_iter_s)
        )
        bytes_per_rank = iterations * _STREAM_ARRAY_ELEMENTS * _TRIAD_BYTES_PER_ELEMENT
        time_s = bytes_per_rank / per_rank_bw
        perf = per_rank_bw * ranks

        node_sustained = cols.node_sustained_bw[idx]
        per_rank_fraction = np.minimum(1.0, per_rank_bw / node_sustained)
        w = _wall_watts(
            cols,
            idx,
            active=1.0,
            intensity=config.stream_intensity,
            memory=np.minimum(1.0, k * per_rank_fraction),
            storage=0.0,
            nic=0.0,
        )
        return perf, time_s, cols.num_nodes[idx] * w

    return _memoized(key, compute, n_systems, memoize)


def _iozone_batched(cols: FleetColumns, config: ExperimentConfig, memoize: bool):
    n_systems = len(cols)
    key = _power_key(cols) + [
        cols.num_nodes,
        cols.cpu_cores,
        cols.mem_capacity_bytes,
        cols.storage_write_bw,
    ]

    def compute(idx: np.ndarray):
        window = 0.25 * cols.node_memory_bytes[idx]
        device_rate = cols.storage_write_bw[idx] * _IOZONE_FS_EFFICIENCY
        window_time = window / _IOZONE_CACHE_BW
        target = config.iozone_target_seconds
        file_bytes = np.where(
            target <= window_time,
            np.maximum(1.0, target * _IOZONE_CACHE_BW),
            window + (target - window_time) * device_rate,
        )
        capped_window = np.minimum(window, file_bytes)
        device_bytes = file_bytes - capped_window
        time_s = capped_window / _IOZONE_CACHE_BW + device_bytes / device_rate
        per_node = np.minimum(file_bytes / time_s, _IOZONE_CACHE_BW)
        perf = per_node * cols.num_nodes[idx]

        w = _wall_watts(
            cols,
            idx,
            active=np.minimum(1.0, 1.0 / cols.node_cores[idx]),
            intensity=_IOZONE_INTENSITY,
            memory=_IOZONE_MEMORY,
            storage=1.0,
            nic=0.0,
        )
        return perf, time_s, cols.num_nodes[idx] * w

    return _memoized(key, compute, n_systems, memoize)


def evaluate_fleet(
    fleet,
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    path: str = "batched",
    reference: bool = False,
    memoize: bool = True,
) -> FleetEvaluation:
    """Score every system's full-machine suite in one pass.

    Parameters
    ----------
    fleet:
        A sequence of :class:`~repro.cluster.cluster.ClusterSpec` or an
        already-packed :class:`~repro.fleet.columns.FleetColumns`.
    path:
        ``"batched"`` (vectorized over the system axis) or ``"reference"``
        (the scalar oracle applied per system — slow, definitional).
    reference:
        Capability-sized HPL (reference-system semantics) for *every*
        member; used when scoring reference machines.
    memoize:
        Content-keyed sub-result sharing: systems with identical
        benchmark-relevant spec columns compute once.
    """
    if path not in _PATHS:
        raise FleetError(f"path must be one of {_PATHS}, got {path!r}")

    if isinstance(fleet, FleetColumns):
        cols: Optional[FleetColumns] = fleet
        specs: Optional[Sequence[ClusterSpec]] = None
    else:
        specs = list(fleet)
        if not specs:
            raise FleetError("cannot evaluate an empty fleet")
        cols = None

    if path == "reference":
        if specs is None:
            raise FleetError(
                "the reference path scores ClusterSpec sequences, not "
                "pre-packed columns"
            )
        rows = [evaluate_system(spec, config, reference=reference) for spec in specs]
        scores = {
            b: FleetScores(
                **{
                    field: np.array([row[b][field] for row in rows], dtype=float)
                    for field in ("performance", "time_s", "power_w", "energy_j", "efficiency")
                }
            )
            for b in FLEET_BENCHMARKS
        }
        return FleetEvaluation(
            names=tuple(spec.name for spec in specs),
            scores=scores,
            memo_unique={b: len(rows) for b in FLEET_BENCHMARKS},
            path=path,
        )

    if cols is None:
        cols = FleetColumns.pack(specs)
    results = {
        "HPL": _hpl_batched(cols, config, reference, memoize),
        "STREAM": _stream_batched(cols, config, memoize),
        "IOzone": _iozone_batched(cols, config, memoize),
    }
    scores = {}
    memo_unique = {}
    for b, ((perf, time_s, power), unique) in results.items():
        energy = power * time_s
        scores[b] = FleetScores(
            performance=perf,
            time_s=time_s,
            power_w=power,
            energy_j=energy,
            efficiency=perf / power,
        )
        memo_unique[b] = unique
    return FleetEvaluation(
        names=cols.names, scores=scores, memo_unique=memo_unique, path=path
    )
