"""Content-addressed on-disk result cache.

A campaign job is addressed by the SHA-256 of its canonical JSON
serialization (frozen dataclasses -> sorted-key JSON, tuples -> lists).
The cache stores one JSON file per key under a two-level fan-out
(``<dir>/<key[:2]>/<key>.json``) together with the code version that
produced the payload; entries written by a different code version are
*invalidated* on read (counted and deleted), so the effective address is
``(job, code version)`` while stale entries remain observable in the
accounting instead of silently shadowing fresh results.

The cache never deserializes payloads into live objects — it deals in the
same JSON-compatible dicts :mod:`repro.serialization` produces — so a hit
is a file read plus a version check, nothing more.

One cache directory may be shared by many processes (pool workers of one
campaign, or several campaigns/hosts on a shared filesystem): writers
stage entries under unique per-writer temp names and publish with an
atomic rename, so readers never observe half a file and concurrent
writers of the same key never clobber each other's staging file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from .. import telemetry as tele
from ..exceptions import ReproError

__all__ = ["canonical_json", "cache_key", "CacheStats", "ResultCache", "CACHE_ENTRY_VERSION"]

#: Schema version of on-disk cache entries.
CACHE_ENTRY_VERSION = 1


def _jsonable(obj):
    """Recursively convert dataclasses/tuples into JSON-compatible values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise ReproError(
        f"cannot canonically serialize {type(obj).__name__!r} for cache keying"
    )


def canonical_json(obj) -> str:
    """Stable JSON text for hashing: sorted keys, no whitespace drift."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def cache_key(obj) -> str:
    """SHA-256 hex digest of an object's canonical serialization."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Cumulative accounting over the lifetime of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses + self.invalidations

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 when nothing was looked up)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly snapshot for manifests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Filesystem-backed cache of campaign job payloads.

    Parameters
    ----------
    directory:
        Root directory; created on first write.
    code_version:
        Version stamp written into every entry and checked on read.
        Defaults to the library version — bump it (or pass a custom stamp
        covering e.g. a model calibration hash) to invalidate en masse.
    """

    def __init__(self, directory: Union[str, Path], *, code_version: Optional[str] = None):
        from .. import __version__

        self.directory = Path(directory)
        self.code_version = code_version or __version__
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where an entry for ``key`` lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.json"

    def _read_entry(self, key: str) -> Optional[Dict]:
        """The on-disk entry for ``key`` if present *and* valid, else ``None``.

        Pure read: no stats mutation, no deletion.  This is the single
        validation predicate — ``get`` layers accounting and stale-entry
        cleanup on top of it, and ``__contains__``/``__len__`` use it
        directly so membership always agrees with what ``get`` would
        actually serve.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("entry_version") != CACHE_ENTRY_VERSION
            or entry.get("code_version") != self.code_version
            or entry.get("key") != key
            or "payload" not in entry
        ):
            return None
        return entry

    def get(self, key: str) -> Optional[Dict]:
        """The cached payload for ``key``, or ``None`` (miss/invalidated)."""
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            tele.count("tgi_cache_lookups_total", result="miss")
            return None
        entry = self._read_entry(key)
        if entry is None:
            # Stale or corrupt: drop it so the rerun's put() replaces it.
            self.stats.invalidations += 1
            tele.count("tgi_cache_lookups_total", result="invalidated")
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        tele.count("tgi_cache_lookups_total", result="hit")
        return entry["payload"]

    def put(self, key: str, payload: Dict) -> Path:
        """Store a payload under ``key``; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "entry_version": CACHE_ENTRY_VERSION,
            "key": key,
            "code_version": self.code_version,
            "payload": payload,
        }
        # Unique per-writer staging name: a shared name (the old
        # ``path.with_suffix(".tmp")``) let one writer's replace() yank the
        # file out from under another writer of the same key mid-write.
        # The ``.tmp`` suffix keeps stragglers out of the ``*/*.json`` scan.
        tmp = path.parent / f"{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        try:
            tmp.write_text(json.dumps(entry, sort_keys=True))
            tmp.replace(path)  # atomic publish: readers never see half a file
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.stats.puts += 1
        tele.count("tgi_cache_puts_total")
        return path

    @property
    def cache_stats(self) -> Dict[str, float]:
        """The accounting snapshot (same shape campaign manifests embed)."""
        return self.stats.as_dict()

    def __contains__(self, key: str) -> bool:
        """Whether ``get(key)`` would hit (validated, stats untouched)."""
        return self._read_entry(key) is not None

    def __len__(self) -> int:
        """Number of entries ``get`` would serve (stale/corrupt excluded)."""
        if not self.directory.exists():
            return 0
        return sum(
            1
            for path in self.directory.glob("*/*.json")
            if self._read_entry(path.stem) is not None
        )
